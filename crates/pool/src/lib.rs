//! # phloem-pool
//!
//! Work-stealing host-execution fleet: the one scheduling layer every
//! fleet-shaped consumer in the workspace routes through — the PGO
//! candidate search, `fuzzdiff`'s plan × cut × ablation grids, and the
//! figure harnesses' training sweeps.
//!
//! ## Why not static chunking
//!
//! The previous scheme split the task list into `len.div_ceil(workers)`
//! contiguous chunks, one scoped thread each. Candidate costs are
//! wildly uneven (a 4-stage pipeline over the big training graph can
//! cost 50x a 1-stage one over the small graph), so whichever chunk
//! drew the expensive candidates head-of-line-blocked its worker while
//! the rest of the host idled. This pool keeps every worker busy:
//!
//! * **per-worker deques, seeded contiguously** — worker `w` starts
//!   with the same contiguous index block static chunking gave it, so
//!   the common case preserves the old cache locality;
//! * **a global injector** — overflow/late work shared by everyone;
//! * **steal-half** — a worker that runs dry takes half of the richest
//!   neighbour's remaining block (from the back, preserving the
//!   victim's locality at the front), amortizing steal traffic;
//! * **park/unpark** — a worker that finds nothing while tasks are
//!   still running parks on the fleet's [`CancelWaker`] instead of
//!   spinning. Parking is epoch-guarded: the worker samples the waker's
//!   notification epoch *before* its work scan and parks only while the
//!   epoch is unchanged, so an unpark between scan and park can never be
//!   lost; new stealable work, fleet completion, cancellation, and
//!   external unpark hooks (the native backend's channels) all notify
//!   explicitly, and a coarse timeout backstop exists purely as a
//!   diagnostic of last resort ([`FleetStats::timeout_wakeups`] counts
//!   it and is asserted zero by the unit tests);
//! * **panic isolation** — each task runs under `catch_unwind`; a
//!   panicking task yields `Err(TaskPanic)` in its own result slot and
//!   cannot take a worker (or the whole fleet) down;
//! * **optional core pinning** — `PHLOEM_PIN=1` pins worker `w` to core
//!   `w % cores` (Linux `sched_setaffinity`; a no-op elsewhere).
//!
//! ## Determinism contract
//!
//! Tasks carry their index and results land in a pre-sized partition
//! (`Vec` of once-set slots), so **output order and content are
//! independent of interleaving**: scheduling decides only *when* and
//! *where* a task runs, never what it computes or where its result
//! lands. A fleet of pure tasks therefore produces byte-identical
//! results at every worker count — the contract `tests/pool_determinism.rs`
//! pins for the search, fuzzdiff, and figure-sweep consumers. Simulated
//! cycles cannot change: the pool schedules whole simulations onto host
//! threads and never reaches into the simulated clock.
//!
//! Mutexes guard the deques, but tasks here are coarse (whole
//! simulations, milliseconds to seconds); the lock cost is noise, and
//! the result partition itself is written without any lock.

mod cancel;
mod pin;

pub use cancel::{CancelToken, CancelWaker, WakerRegistration};
pub use pin::pin_to_core;

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Duration;

/// Shared worker-count default for every pool consumer: the
/// `PHLOEM_WORKERS` env override when set, otherwise the host's
/// available parallelism, clamped ≥ 1.
///
/// `PHLOEM_WORKERS` accepts an integer **≥ 1** (there is no "auto"
/// sentinel — unset the variable to get the host default). Any other
/// value — `0`, negative, or non-numeric — is *rejected with a warning*
/// naming the variable, not silently ignored: a silent fall-through made
/// `PHLOEM_WORKERS=0` behave like full parallelism, the opposite of
/// what the caller plausibly meant.
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var("PHLOEM_WORKERS") {
        match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => {
                // Warn once per process, not once per fleet.
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "[phloem-pool] rejecting PHLOEM_WORKERS={v:?}: expected an integer >= 1 \
                         (worker threads per fleet); using the host's available parallelism"
                    );
                });
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// True when `PHLOEM_PIN=1`: fleets pin worker `w` to core `w % cores`
/// and timing-sensitive benches pin their measuring thread.
pub fn pinning_requested() -> bool {
    std::env::var("PHLOEM_PIN").as_deref() == Ok("1")
}

/// A task that panicked: the fleet records it in the task's own result
/// slot instead of unwinding the worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskPanic {
    /// Index of the panicking task.
    pub index: usize,
    /// The panic payload, when it was a string (the common case).
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// Host-side scheduling counters for one fleet run. None of these can
/// affect task results; they exist for the steal-fairness and
/// park/unpark unit tests and for bench diagnostics.
#[derive(Clone, Debug, Default)]
pub struct FleetStats {
    /// Worker threads the fleet actually ran with (clamped to the task
    /// count; 1 means the fleet ran inline on the caller's thread).
    pub workers: usize,
    /// Successful steal-half operations.
    pub steals: u64,
    /// Tasks moved by those steals.
    pub stolen_tasks: u64,
    /// Times a worker parked because it found no runnable task while
    /// other tasks were still in flight.
    pub parks: u64,
    /// Tasks executed per worker (indexed by worker id).
    pub per_worker_tasks: Vec<u64>,
    /// Tasks skipped because the fleet's [`CancelToken`] fired before
    /// they were dequeued (always 0 for uncancellable fleets).
    pub skipped: u64,
    /// Park wakeups delivered by the coarse timeout backstop rather than
    /// an explicit notification. The epoch-guarded park protocol makes
    /// every legitimate wake explicit (work, completion, cancel), so
    /// this is structurally zero; a nonzero value means some wake path
    /// forgot to call [`CancelWaker::notify`].
    pub timeout_wakeups: u64,
}

/// Pool configuration. `Default` reads the shared env knobs.
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Worker threads per fleet (clamped to the task count at run time).
    pub workers: usize,
    /// Pin worker `w` to core `w % cores` (Linux only).
    pub pin: bool,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: default_workers(),
            pin: pinning_requested(),
        }
    }
}

/// The work-stealing fleet executor. Construction is free: worker
/// threads are scoped to each [`Pool::run`]/[`Pool::map`] call, so
/// borrowed task closures need no `'static` bound and a dropped pool
/// leaks nothing.
#[derive(Clone, Debug, Default)]
pub struct Pool {
    cfg: PoolConfig,
}

impl Pool {
    /// A pool with an explicit worker count.
    pub fn new(workers: usize) -> Pool {
        Pool {
            cfg: PoolConfig {
                workers: workers.max(1),
                ..PoolConfig::default()
            },
        }
    }

    /// A pool configured from the environment (`PHLOEM_WORKERS`,
    /// `PHLOEM_PIN`), falling back to the host's available parallelism.
    pub fn from_env() -> Pool {
        Pool::default()
    }

    /// The configured worker count (before per-fleet clamping).
    pub fn workers(&self) -> usize {
        self.cfg.workers.max(1)
    }

    /// Runs `n` indexed tasks and returns their results in index order,
    /// one slot per task; a panicking task yields `Err(TaskPanic)` in
    /// its slot. Deterministic by construction: slot `i` always holds
    /// the result of task `i`, whatever the interleaving.
    pub fn run<R, F>(&self, n: usize, f: F) -> Vec<Result<R, TaskPanic>>
    where
        R: Send + Sync,
        F: Fn(usize) -> R + Sync,
    {
        self.run_stats(n, f).0
    }

    /// [`Pool::run`] over a slice: task `i` receives `(i, &items[i])`.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<Result<R, TaskPanic>>
    where
        T: Sync,
        R: Send + Sync,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.run(items.len(), |i| f(i, &items[i]))
    }

    /// [`Pool::run`], also returning the fleet's scheduling counters.
    pub fn run_stats<R, F>(&self, n: usize, f: F) -> (Vec<Result<R, TaskPanic>>, FleetStats)
    where
        R: Send + Sync,
        F: Fn(usize) -> R + Sync,
    {
        let (slots, stats) = self.run_inner(n, None, f);
        let results = slots
            .into_iter()
            .map(|s| s.expect("every fleet task ran exactly once"))
            .collect();
        (results, stats)
    }

    /// [`Pool::run_stats`] under a [`CancelToken`]: once the token fires
    /// (explicit cancel or expired deadline), still-queued tasks are
    /// *skipped* — their slots come back `None` — while tasks already
    /// executing finish normally (the task body is expected to observe
    /// the same token cooperatively, as the simulator's watchdog does).
    /// Parked workers are woken by the cancel itself, not by a timeout,
    /// so drain latency is bounded by the running tasks' own response
    /// to the token — never by queue depth.
    pub fn run_cancellable<R, F>(
        &self,
        n: usize,
        cancel: &CancelToken,
        f: F,
    ) -> (Vec<Option<Result<R, TaskPanic>>>, FleetStats)
    where
        R: Send + Sync,
        F: Fn(usize) -> R + Sync,
    {
        self.run_inner(n, Some(cancel), f)
    }

    /// [`Pool::run_cancellable`] over a slice: task `i` receives
    /// `(i, &items[i])`.
    pub fn map_cancellable<T, R, F>(
        &self,
        items: &[T],
        cancel: &CancelToken,
        f: F,
    ) -> (Vec<Option<Result<R, TaskPanic>>>, FleetStats)
    where
        T: Sync,
        R: Send + Sync,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.run_inner(items.len(), Some(cancel), |i| f(i, &items[i]))
    }

    fn run_inner<R, F>(
        &self,
        n: usize,
        cancel: Option<&CancelToken>,
        f: F,
    ) -> (Vec<Option<Result<R, TaskPanic>>>, FleetStats)
    where
        R: Send + Sync,
        F: Fn(usize) -> R + Sync,
    {
        let workers = self.workers().min(n.max(1));
        let mut stats = FleetStats {
            workers,
            per_worker_tasks: vec![0; workers],
            ..FleetStats::default()
        };
        if n == 0 {
            return (Vec::new(), stats);
        }
        // Fleets take the shared quiesce lock non-exclusively, so a
        // `quiesced` timing section can exclude every in-process fleet.
        //
        // A *nested* fleet — one launched from inside another fleet's
        // task, e.g. the native backend spinning up its stage workers
        // inside a service request — must NOT re-acquire the lock: the
        // outer fleet already holds it for the whole scope of the task,
        // and a second read acquisition on this thread can deadlock
        // against a queued `quiesced` writer (reader → writer → reader
        // cycle). The outer hold already keeps the process non-quiesced
        // for exactly as long as the nested fleet can live (scoped
        // threads), so skipping the lock loses nothing.
        let nested = IN_FLEET.with(|flag| flag.get());
        let _fleet = (!nested).then(|| quiesce_lock().read().unwrap_or_else(|e| e.into_inner()));
        let slots: Vec<OnceLock<Result<R, TaskPanic>>> = (0..n).map(|_| OnceLock::new()).collect();
        if workers == 1 {
            // Inline serial path: same panic isolation and skip
            // semantics, no threads. Tasks run on the caller's thread,
            // so mark it in-fleet for the duration (restoring the prior
            // state) — a nested fleet inside a task must see the flag.
            let _scope = FleetScope::enter();
            for (i, slot) in slots.iter().enumerate() {
                if cancel.is_some_and(|t| t.poll_expired()) {
                    stats.skipped += (n - i) as u64;
                    break;
                }
                let r = run_guarded(i, &f);
                let _ = slot.set(r);
                stats.per_worker_tasks[0] += 1;
            }
        } else {
            let shared = Shared::new(workers, n, cancel.cloned());
            // Cancelling the token must notify the fleet's park condvar
            // directly: parked workers observe a drain request the
            // moment it happens, not on the next timeout expiry.
            let _reg = cancel.map(|t| t.register_waker(Arc::clone(&shared.idle)));
            let pin = self.cfg.pin;
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let shared = &shared;
                    let slots = &slots;
                    let f = &f;
                    scope.spawn(move || {
                        if pin {
                            let cores = std::thread::available_parallelism()
                                .map(|c| c.get())
                                .unwrap_or(1);
                            pin_to_core(w % cores);
                        }
                        // Worker threads are in-fleet for their whole
                        // life: a task that launches a nested fleet must
                        // not re-take the quiesce lock (see run_inner).
                        let _scope = FleetScope::enter();
                        worker_loop(w, shared, slots, f);
                    });
                }
            });
            stats.steals = shared.steals.load(Ordering::Relaxed);
            stats.stolen_tasks = shared.stolen_tasks.load(Ordering::Relaxed);
            stats.parks = shared.parks.load(Ordering::Relaxed);
            stats.skipped = shared.skipped.load(Ordering::Relaxed);
            stats.timeout_wakeups = shared.timeout_wakeups.load(Ordering::Relaxed);
            for (w, c) in shared.per_worker_tasks.iter().enumerate() {
                stats.per_worker_tasks[w] = c.load(Ordering::Relaxed);
            }
        }
        let results = slots.into_iter().map(|s| s.into_inner()).collect();
        (results, stats)
    }
}

/// Runs `f(i)` under panic isolation.
fn run_guarded<R, F>(i: usize, f: &F) -> Result<R, TaskPanic>
where
    F: Fn(usize) -> R + Sync,
{
    catch_unwind(AssertUnwindSafe(|| f(i))).map_err(|payload| {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        TaskPanic { index: i, message }
    })
}

/// Fleet-shared scheduling state.
struct Shared {
    /// Per-worker deques of task indices. Workers pop their own from
    /// the front; thieves take from the back.
    deques: Vec<Mutex<VecDeque<usize>>>,
    /// Global injector: overflow work shared by all workers (drained
    /// after the local deque, before stealing).
    injector: Mutex<VecDeque<usize>>,
    /// Tasks not yet *completed*. Workers may park while this is
    /// nonzero; the worker completing the last task wakes everyone.
    remaining: AtomicUsize,
    /// Park/unpark: idle workers wait here; notified on new stealable
    /// work, on fleet completion, and — when the fleet runs under a
    /// [`CancelToken`] — by the cancel itself (the waker is registered
    /// with the token for the fleet's lifetime).
    idle: Arc<CancelWaker>,
    /// The fleet's cancellation token, if any. Checked before each
    /// dequeued task runs; a fired token turns the task into a skip.
    cancel: Option<CancelToken>,
    steals: AtomicU64,
    stolen_tasks: AtomicU64,
    parks: AtomicU64,
    skipped: AtomicU64,
    timeout_wakeups: AtomicU64,
    per_worker_tasks: Vec<AtomicU64>,
}

impl Shared {
    /// Seeds worker `w` with the contiguous index block static chunking
    /// would have given it (locality), leaving the injector empty.
    fn new(workers: usize, n: usize, cancel: Option<CancelToken>) -> Shared {
        let chunk = n.div_ceil(workers);
        let deques = (0..workers)
            .map(|w| {
                let lo = (w * chunk).min(n);
                let hi = ((w + 1) * chunk).min(n);
                Mutex::new((lo..hi).collect::<VecDeque<usize>>())
            })
            .collect();
        Shared {
            deques,
            injector: Mutex::new(VecDeque::new()),
            remaining: AtomicUsize::new(n),
            idle: Arc::new(CancelWaker::default()),
            cancel,
            steals: AtomicU64::new(0),
            stolen_tasks: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            timeout_wakeups: AtomicU64::new(0),
            per_worker_tasks: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn lock_deque(&self, w: usize) -> std::sync::MutexGuard<'_, VecDeque<usize>> {
        self.deques[w].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// True once the fleet's token has fired (authoritative deadline
    /// poll: one clock read per dequeued task, which is noise next to
    /// whole-simulation task bodies).
    fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(|t| t.poll_expired())
    }

    /// Marks one task complete; wakes all parked workers when it was
    /// the last so they can observe termination and exit.
    fn complete_one(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.idle.notify();
        }
    }

    /// Steal-half from the richest victim's back. Returns the next task
    /// to run; surplus goes into `w`'s own deque and parked workers are
    /// notified (the surplus is itself stealable).
    fn steal(&self, w: usize) -> Option<usize> {
        let workers = self.deques.len();
        // Richest-victim scan keeps steals rare and fair: one steal
        // rebalances half of the worst backlog instead of one task.
        let mut victim = None;
        for off in 1..workers {
            let v = (w + off) % workers;
            let len = self.lock_deque(v).len();
            if len > 0 && victim.map(|(_, best)| len > best).unwrap_or(true) {
                victim = Some((v, len));
            }
        }
        let (v, _) = victim?;
        let mut taken: VecDeque<usize> = {
            let mut vd = self.lock_deque(v);
            let keep = vd.len() - vd.len().div_ceil(2);
            vd.split_off(keep)
        };
        if taken.is_empty() {
            return None; // the victim was drained while we scanned
        }
        self.steals.fetch_add(1, Ordering::Relaxed);
        self.stolen_tasks
            .fetch_add(taken.len() as u64, Ordering::Relaxed);
        let first = taken.pop_front();
        if !taken.is_empty() {
            self.lock_deque(w).extend(taken);
            // New stealable work: wake parked workers to share it.
            self.idle.notify();
        }
        first
    }
}

thread_local! {
    /// True while the current thread is executing inside a fleet —
    /// either as a scoped worker thread or as the caller running the
    /// inline (workers == 1) path. Nested fleets consult this to skip
    /// re-acquiring the quiesce lock (see [`Pool::run_inner`]).
    static IN_FLEET: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// RAII marker setting [`IN_FLEET`] for the current thread, restoring
/// the previous value on drop (inline fleets can themselves be nested).
struct FleetScope {
    prev: bool,
}

impl FleetScope {
    fn enter() -> FleetScope {
        FleetScope {
            prev: IN_FLEET.with(|flag| flag.replace(true)),
        }
    }
}

impl Drop for FleetScope {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_FLEET.with(|flag| flag.set(prev));
    }
}

/// Coarse backstop for epoch-guarded parks: with every wake path
/// explicit this should never expire; it exists so an unforeseen bug
/// degrades to a half-second hiccup (and a nonzero
/// [`FleetStats::timeout_wakeups`]) instead of a hang.
const PARK_BACKSTOP: Duration = Duration::from_millis(500);

/// One worker's scheduling loop: own deque front → injector → steal-half
/// → epoch-guarded park while tasks remain in flight. The park samples
/// the waker epoch *before* the work scan, so any wake-worthy event
/// after the sample (new stealable work, completion, cancel) bumps the
/// epoch and the park returns immediately — no lost wakeups, and no
/// 1 ms timeout treadmill while a long task holds the fleet open.
fn worker_loop<R, F>(w: usize, shared: &Shared, slots: &[OnceLock<Result<R, TaskPanic>>], f: &F)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    loop {
        // Sampled before the scan: the park below only sleeps while the
        // epoch is still this value.
        let seen = shared.idle.epoch();
        let task = {
            let own = self_pop(shared, w);
            match own {
                Some(i) => Some(i),
                None => injector_pop(shared).or_else(|| shared.steal(w)),
            }
        };
        match task {
            Some(i) => {
                // A fired token turns every still-queued task into a
                // skip: the slot stays unset (`None` to the caller) and
                // the task is completed without running, so drain
                // latency never depends on queue depth.
                if shared.cancelled() {
                    shared.skipped.fetch_add(1, Ordering::Relaxed);
                    shared.complete_one();
                    continue;
                }
                let r = run_guarded(i, f);
                let _ = slots[i].set(r);
                shared.per_worker_tasks[w].fetch_add(1, Ordering::Relaxed);
                shared.complete_one();
            }
            None => {
                if shared.remaining.load(Ordering::Acquire) == 0 {
                    return;
                }
                // Tasks are still in flight elsewhere: park until an
                // explicit notification (new stealable work, fleet
                // completion, cancellation) bumps the epoch past the
                // pre-scan sample. An event that raced the scan already
                // bumped it, so the wait returns without sleeping. The
                // coarse backstop should never fire; count it when it
                // does so the unit tests can assert it stays zero.
                shared.parks.fetch_add(1, Ordering::Relaxed);
                if !shared.idle.wait_if_unchanged(seen, PARK_BACKSTOP) {
                    shared.timeout_wakeups.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

fn self_pop(shared: &Shared, w: usize) -> Option<usize> {
    shared.lock_deque(w).pop_front()
}

fn injector_pop(shared: &Shared) -> Option<usize> {
    shared
        .injector
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .pop_front()
}

// ---------------------------------------------------------------------
// Quiescing: timing-sensitive measurements vs. in-process fleets.
// ---------------------------------------------------------------------

fn quiesce_lock() -> &'static RwLock<()> {
    static LOCK: OnceLock<RwLock<()>> = OnceLock::new();
    LOCK.get_or_init(|| RwLock::new(()))
}

/// Runs `f` with every in-process fleet excluded: fleets hold the
/// shared lock non-exclusively for their whole run, and this takes it
/// exclusively, so the section starts only after running fleets drain
/// and no new fleet starts until it ends. Used by timing-sensitive
/// measurements (the simspeed regression gate) so a concurrent fleet
/// in the same process cannot masquerade as a throughput regression.
///
/// Launching a fleet *inside* the section deadlocks by construction —
/// quiesced sections must stay fleet-free (they are measuring exactly
/// the absence of fleet load).
pub fn quiesced<R>(f: impl FnOnce() -> R) -> R {
    let _guard = quiesce_lock().write().unwrap_or_else(|e| e.into_inner());
    f()
}
