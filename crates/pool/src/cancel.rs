//! Cooperative cancellation: wall-clock deadlines and explicit cancels
//! shared between host fleets and long-running simulations.
//!
//! A [`CancelToken`] is a cheap clonable handle (`Arc` inside) carrying
//! three pieces of state:
//!
//! * a **latched cancel flag** plus the reason it was set;
//! * an optional **deadline**, stored as milliseconds on a process-wide
//!   monotonic epoch so the hot-path check is one atomic load (and the
//!   authoritative check one `Instant::now()`). Deadlines can be armed
//!   after creation — a draining service arms a bounded grace window on
//!   tokens that started with no deadline at all;
//! * a **waker registry**: condvars that must be notified the moment
//!   the token cancels, so parked pool workers observe a drain request
//!   immediately instead of sleeping out a timeout.
//!
//! Tokens form optional **parent chains** ([`CancelToken::child`]): a
//! per-request token linked to a service-wide drain token is cancelled
//! by its own deadline *or* by the parent's cancel, whichever comes
//! first. Waker registration walks the chain, so a parent's cancel
//! wakes everything parked under any descendant.
//!
//! Cancellation is strictly **cooperative and host-side**: nothing here
//! ever touches simulated state. The simulator polls the token at its
//! existing watchdog window boundaries and converts a fired token into
//! a structured `Trap::Cancelled`; a token that never fires is
//! observationally free (`tests/cancel_neutral.rs` in the workspace
//! pins bit-identical runs with and without an armed token).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Milliseconds since the process-wide monotonic epoch. The epoch is
/// lazily pinned on first use; all deadline math shares it.
fn now_ms() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_millis() as u64
}

/// Sentinel for "no deadline armed".
const NO_DEADLINE: u64 = u64::MAX;

/// A condvar a cancelled token must notify (see the module docs). The
/// pool parks idle workers on one of these per fleet, and blocking-aware
/// consumers (the native backend's channel runtime) use the same shape
/// as an explicit unpark hook.
///
/// The waker carries a monotonic **notification epoch**: every
/// [`CancelWaker::notify`] bumps it under the lock, and
/// [`CancelWaker::wait_if_unchanged`] parks only while the epoch still
/// matches the value the caller sampled *before* scanning for work.
/// That read-scan-park protocol makes lost wakeups structurally
/// impossible — an event between the scan and the park bumps the epoch
/// and the park returns immediately — so waiters need only a coarse
/// timeout backstop instead of a busy 1 ms treadmill.
#[derive(Default)]
pub struct CancelWaker {
    /// Guard for the condvar (the pool holds no data under it).
    pub lock: Mutex<()>,
    /// Notified on cancel and by the pool's own wake paths.
    pub cv: Condvar,
    /// Monotonic notification count; bumped under `lock` by `notify`.
    epoch: AtomicU64,
}

impl CancelWaker {
    /// Current notification epoch. Sample this *before* scanning for
    /// work, then pass it to [`CancelWaker::wait_if_unchanged`].
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Bumps the epoch and wakes every parked waiter. This is the
    /// explicit unpark hook: completion, new stealable work, channel
    /// activity, and token cancellation all route through it.
    pub fn notify(&self) {
        let _g = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        self.epoch.fetch_add(1, Ordering::Release);
        self.cv.notify_all();
    }

    /// Parks until the epoch moves past `seen` or `timeout` elapses.
    /// Returns `true` when woken by a notification (the epoch changed),
    /// `false` when the timeout backstop expired with the epoch still
    /// at `seen`. Returns immediately (true) if the epoch already moved
    /// — the caller's pre-scan sample closes the lost-wakeup window.
    pub fn wait_if_unchanged(&self, seen: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut g = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        while self.epoch.load(Ordering::Acquire) == seen {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (ng, _res) = self
                .cv
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            g = ng;
        }
        true
    }
}

struct Inner {
    cancelled: AtomicBool,
    /// Why the token cancelled; set exactly once, by the latch winner.
    reason: Mutex<String>,
    /// Deadline in [`now_ms`] units; [`NO_DEADLINE`] when unarmed.
    deadline_ms: AtomicU64,
    parent: Option<Arc<Inner>>,
    wakers: Mutex<Vec<Arc<CancelWaker>>>,
}

impl Inner {
    /// Latches the cancel flag (first writer wins the reason) and
    /// notifies every registered waker.
    fn latch(&self, reason: &str) {
        if !self.cancelled.swap(true, Ordering::AcqRel) {
            let mut r = self.reason.lock().unwrap_or_else(|e| e.into_inner());
            if r.is_empty() {
                *r = reason.to_string();
            }
        }
        let wakers = self.wakers.lock().unwrap_or_else(|e| e.into_inner());
        for w in wakers.iter() {
            w.notify();
        }
    }
}

/// Cooperative cancellation handle (see the module docs). Clones share
/// state; dropping a clone never cancels anything.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_set())
            .field(
                "deadline_armed",
                &(self.inner.deadline_ms.load(Ordering::Relaxed) != NO_DEADLINE),
            )
            .finish()
    }
}

impl CancelToken {
    /// A live token with no deadline and no parent.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                reason: Mutex::new(String::new()),
                deadline_ms: AtomicU64::new(NO_DEADLINE),
                parent: None,
                wakers: Mutex::new(Vec::new()),
            }),
        }
    }

    /// A token that expires `timeout` from now.
    pub fn with_deadline(timeout: Duration) -> CancelToken {
        let t = CancelToken::new();
        t.arm_deadline(timeout);
        t
    }

    /// A child linked to `self`: the child reports cancelled when its
    /// own flag/deadline fires *or* when any ancestor's does. Ancestor
    /// state is read-only from the child — cancelling a child never
    /// propagates upward.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                reason: Mutex::new(String::new()),
                deadline_ms: AtomicU64::new(NO_DEADLINE),
                parent: Some(Arc::clone(&self.inner)),
                wakers: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Arms (or tightens) the deadline to `timeout` from now. A wider
    /// deadline than the currently armed one is ignored — like the
    /// simulator's cycle budgets, deadlines only tighten.
    pub fn arm_deadline(&self, timeout: Duration) {
        let at = now_ms().saturating_add(timeout.as_millis().min(u64::MAX as u128) as u64);
        self.inner.deadline_ms.fetch_min(at, Ordering::AcqRel);
    }

    /// Explicitly cancels the token with a reason, waking every parked
    /// worker registered below it. Idempotent; the first reason wins.
    pub fn cancel(&self, reason: &str) {
        self.inner.latch(reason);
    }

    /// Cheap check: latched flags only (self and ancestors), no clock
    /// read. This is the per-round hot-path form; pair it with a
    /// throttled [`CancelToken::poll_expired`] for deadline coverage.
    pub fn is_set(&self) -> bool {
        let mut node = Some(&self.inner);
        while let Some(n) = node {
            if n.cancelled.load(Ordering::Acquire) {
                return true;
            }
            node = n.parent.as_ref();
        }
        false
    }

    /// Authoritative check: reads the clock, latches an expired
    /// deadline (on the owning node) and returns whether the token is
    /// cancelled. Costs one `Instant::now()`.
    pub fn poll_expired(&self) -> bool {
        let now = now_ms();
        let mut node = Some(&self.inner);
        while let Some(n) = node {
            if n.cancelled.load(Ordering::Acquire) {
                return true;
            }
            if now >= n.deadline_ms.load(Ordering::Acquire) {
                n.latch("deadline exceeded");
                return true;
            }
            node = n.parent.as_ref();
        }
        false
    }

    /// Why the token cancelled (empty if it has not). Walks to the
    /// first latched node so a child cancelled by its parent reports
    /// the parent's reason.
    pub fn reason(&self) -> String {
        let mut node = Some(&self.inner);
        while let Some(n) = node {
            if n.cancelled.load(Ordering::Acquire) {
                return n.reason.lock().unwrap_or_else(|e| e.into_inner()).clone();
            }
            node = n.parent.as_ref();
        }
        String::new()
    }

    /// Registers a waker on this token *and every ancestor*, so a
    /// cancel anywhere in the chain notifies it. Returns a guard that
    /// deregisters on drop (fleet lifetimes are scoped; a dangling
    /// waker would pin the condvar allocation for the token's life).
    pub fn register_waker(&self, waker: Arc<CancelWaker>) -> WakerRegistration {
        let mut nodes = Vec::new();
        let mut node = Some(&self.inner);
        while let Some(n) = node {
            n.wakers
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::clone(&waker));
            nodes.push(Arc::clone(n));
            node = n.parent.as_ref();
        }
        WakerRegistration { nodes, waker }
    }
}

/// Deregistration guard returned by [`CancelToken::register_waker`].
pub struct WakerRegistration {
    nodes: Vec<Arc<Inner>>,
    waker: Arc<CancelWaker>,
}

impl Drop for WakerRegistration {
    fn drop(&mut self) {
        for n in &self.nodes {
            let mut ws = n.wakers.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(i) = ws.iter().position(|w| Arc::ptr_eq(w, &self.waker)) {
                ws.swap_remove(i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_cancel_latches_with_first_reason() {
        let t = CancelToken::new();
        assert!(!t.is_set() && !t.poll_expired());
        t.cancel("drain");
        t.cancel("second");
        assert!(t.is_set());
        assert_eq!(t.reason(), "drain");
    }

    #[test]
    fn deadline_expires_and_latches() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        // The flag-only check does not read the clock...
        assert!(!t.is_set());
        // ...the authoritative poll does, and latches.
        assert!(t.poll_expired());
        assert!(t.is_set());
        assert_eq!(t.reason(), "deadline exceeded");
    }

    #[test]
    fn deadlines_only_tighten() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        t.arm_deadline(Duration::from_secs(3600)); // ignored: wider
        assert!(t.poll_expired());
    }

    #[test]
    fn parent_cancel_reaches_children_but_not_vice_versa() {
        let parent = CancelToken::new();
        let child = parent.child();
        child.cancel("child only");
        assert!(!parent.is_set(), "child cancel must not propagate up");
        let other = parent.child();
        parent.cancel("drain");
        assert!(other.is_set() && other.poll_expired());
        assert_eq!(other.reason(), "drain");
    }

    #[test]
    fn cancel_notifies_registered_wakers_through_the_chain() {
        let parent = CancelToken::new();
        let child = parent.child();
        let waker = Arc::new(CancelWaker::default());
        let _reg = child.register_waker(Arc::clone(&waker));
        let flag = Arc::new(AtomicBool::new(false));
        let (w2, f2, c2) = (Arc::clone(&waker), Arc::clone(&flag), child.clone());
        let h = std::thread::spawn(move || {
            let mut g = w2.lock.lock().unwrap();
            while !c2.is_set() {
                g = w2.cv.wait(g).unwrap();
            }
            f2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(20));
        parent.cancel("drain"); // cancel on the PARENT must wake it
        h.join().unwrap();
        assert!(flag.load(Ordering::SeqCst));
    }

    #[test]
    fn waker_epoch_wait_protocol_has_no_lost_wakeup() {
        let w = CancelWaker::default();
        // Notification between the epoch sample and the wait: the wait
        // must return immediately (true) instead of sleeping out the
        // timeout — this is exactly the lost-wakeup window the epoch
        // protocol closes.
        let seen = w.epoch();
        w.notify();
        let t0 = Instant::now();
        assert!(w.wait_if_unchanged(seen, Duration::from_secs(5)));
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "woke via epoch, not timeout"
        );
        // No notification at all: the backstop expires and reports it.
        let seen = w.epoch();
        assert!(!w.wait_if_unchanged(seen, Duration::from_millis(10)));
    }

    #[test]
    fn cancel_notification_bumps_the_waker_epoch() {
        let t = CancelToken::new();
        let waker = Arc::new(CancelWaker::default());
        let _reg = t.register_waker(Arc::clone(&waker));
        let seen = waker.epoch();
        t.cancel("drain");
        assert!(waker.epoch() > seen, "latch must route through notify()");
    }

    #[test]
    fn waker_registration_is_scoped() {
        let t = CancelToken::new();
        let waker = Arc::new(CancelWaker::default());
        {
            let _reg = t.register_waker(Arc::clone(&waker));
            assert_eq!(Arc::strong_count(&waker), 3); // local + guard + registry
        }
        assert_eq!(Arc::strong_count(&waker), 1, "deregistered on drop");
    }
}
