//! Replicated pipelines for the multicore experiments (Fig. 14):
//! BFS, CC, PageRank-Delta, and Radii on 4 cores x 4 SMT threads.
//!
//! Each core hosts one pipeline replica working on a slice of the input;
//! a *distribute* boundary routes per-edge work to the replica owning
//! the destination vertex (`ngh % R`), making the pipeline tail
//! destination-centric (Fig. 7). Payloads that must travel with a
//! neighbor are packed into one 64-bit word (`v << 32 | ngh`), so tuples
//! survive cross-replica queue interleaving. Update stages count one
//! `DONE` per producer replica before finishing.
//!
//! Structures follow Sec. VII-B: BFS/CC replicate the 4-stage pipeline
//! (with chained RAs for BFS) four times; the manual CC forwards stale
//! labels from the fetch stage; Radii's best pipeline is *2 stages
//! replicated eight times* (two replicas per core); the manual PRD
//! merges the middle stages to make room for a second level of stage
//! replication (two update threads per core).

use crate::runner::Measurement;
use phloem_ir::{
    ArrayDecl, ArrayId, BinOp, CtrlHandler, Expr, FunctionBuilder, HandlerEnd, Pipeline, QueueId,
    RaConfig, RaMode, StageProgram, Stmt, Trap, Value, VarId,
};
use phloem_workloads::Graph;
use pipette_sim::{CompiledPipeline, MachineConfig, Session};

const DONE: u32 = 0;

/// Replicated-system variants for Fig. 14.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepVariant {
    /// Phloem with `#pragma replicate` + `#pragma distribute`.
    Phloem,
    /// The hand-tuned replicated pipeline.
    Manual,
}

fn pack(hi: Expr, lo: Expr) -> Expr {
    Expr::bin(BinOp::Or, Expr::bin(BinOp::Shl, hi, Expr::i64(32)), lo)
}

fn unpack_lo(b: &mut FunctionBuilder, x: VarId, dst: VarId) {
    b.assign(
        dst,
        Expr::bin(BinOp::And, Expr::var(x), Expr::i64(0xFFFF_FFFF)),
    );
}

fn unpack_hi(b: &mut FunctionBuilder, x: VarId, dst: VarId) {
    b.assign(dst, Expr::bin(BinOp::Shr, Expr::var(x), Expr::i64(32)));
}

/// A DONE-counting handler breaking `levels` loops once `producers`
/// DONEs arrived.
fn counting_handler(queue: QueueId, cnt: VarId, producers: usize, levels: u32) -> CtrlHandler {
    CtrlHandler {
        queue,
        ctrl: Some(DONE),
        bind: None,
        body: vec![Stmt::Assign {
            var: cnt,
            expr: Expr::add(Expr::var(cnt), Expr::i64(1)),
        }],
        end: HandlerEnd::BreakWhen(cnt, producers as i64, levels),
    }
}

// ---------------------------------------------------------------------
// BFS
// ---------------------------------------------------------------------

/// Replicated BFS: per core `r`: fetch(slice) -> RA(nodes) -> RA(edges)
/// -> router -> ... every router distributes neighbors to the update
/// stage owning `ngh % R`. The manual version is structurally identical
/// (the hand version's per-vertex NEXT cannot cross the boundary and is
/// dropped by the tuner as well); its fetch enqueues `v`/`v+1` by hand.
pub fn bfs_replicated(replicas: usize, _variant: RepVariant) -> Pipeline {
    let arrays = vec![
        ArrayDecl::i32("fringe"),
        ArrayDecl::i32("nodes"),
        ArrayDecl::i32("edges"),
        ArrayDecl::i32("dist"),
        ArrayDecl::i32("next_fringe"),
        ArrayDecl::i32("fringe_len"),
        ArrayDecl::i32("out_len"),
    ];
    let nq = 4u16; // queues per replica: v, se, ngh(local), upd
    let q = |k: u16, r: usize| QueueId(k + nq * r as u16);
    let mut p = Pipeline::new(format!("bfs-rep{replicas}"));
    let upd_queues: Vec<QueueId> = (0..replicas).map(|r| q(3, r)).collect();

    for r in 0..replicas {
        // Fetch (slice of the fringe).
        let mut s0 = FunctionBuilder::new(format!("fetch@r{r}"));
        let _cd = s0.param_i64("cur_dist");
        for a in &arrays {
            s0.array(a.clone());
        }
        let (fringe, flen) = (ArrayId(0), ArrayId(5));
        let nl = s0.var_i64("nl");
        let lo = s0.var_i64("lo");
        let hi = s0.var_i64("hi");
        let i = s0.var_i64("i");
        let v = s0.var_i64("v");
        let l = s0.load(flen, Expr::i64(0));
        s0.assign(nl, l);
        s0.assign(
            lo,
            Expr::bin(
                BinOp::Div,
                Expr::mul(Expr::var(nl), Expr::i64(r as i64)),
                Expr::i64(replicas as i64),
            ),
        );
        s0.assign(
            hi,
            Expr::bin(
                BinOp::Div,
                Expr::mul(Expr::var(nl), Expr::i64(r as i64 + 1)),
                Expr::i64(replicas as i64),
            ),
        );
        s0.for_loop(i, Expr::var(lo), Expr::var(hi), |f| {
            let lv = f.load(fringe, Expr::var(i));
            f.assign(v, lv);
            f.enq(q(0, r), Expr::var(v));
            f.enq(q(0, r), Expr::add(Expr::var(v), Expr::i64(1)));
        });
        s0.enq_ctrl(q(0, r), DONE);
        p.add_stage(StageProgram::plain(s0.build()), r);

        // Chained RAs.
        p.add_ra(
            RaConfig {
                name: format!("nodes@r{r}"),
                mode: RaMode::Indirect,
                base: ArrayId(1),
                in_queue: q(0, r),
                out_queue: q(1, r),
                forward_ctrl: true,
                scan_end_ctrl: None,
            },
            &arrays,
            r,
        );
        p.add_ra(
            RaConfig {
                name: format!("edges@r{r}"),
                mode: RaMode::Scan,
                base: ArrayId(2),
                in_queue: q(1, r),
                out_queue: q(2, r),
                forward_ctrl: true,
                scan_end_ctrl: None,
            },
            &arrays,
            r,
        );

        // Router: distribute neighbors by destination.
        let mut s2 = FunctionBuilder::new(format!("router@r{r}"));
        let _ = s2.param_i64("cur_dist");
        for a in &arrays {
            s2.array(a.clone());
        }
        let x = s2.var_i64("x");
        s2.while_true(|f| {
            f.deq(x, q(2, r));
            f.enq_sel(upd_queues.clone(), Expr::var(x), Expr::var(x));
        });
        let done_bcast: Vec<Stmt> = upd_queues
            .iter()
            .map(|qq| Stmt::EnqCtrl {
                queue: *qq,
                ctrl: DONE,
            })
            .collect();
        p.add_stage(
            StageProgram {
                func: s2.build(),
                handlers: vec![CtrlHandler {
                    queue: q(2, r),
                    ctrl: Some(DONE),
                    bind: None,
                    body: done_bcast,
                    end: HandlerEnd::FinishStage,
                }],
            },
            r,
        );

        // Update (owns dist/next_fringe partition r).
        let mut s3 = FunctionBuilder::new(format!("update@r{r}"));
        let cd = s3.param_i64("cur_dist");
        let seg = s3.param_i64("seg");
        for a in &arrays {
            s3.array(a.clone());
        }
        let (dist, nf, olen) = (ArrayId(3), ArrayId(4), ArrayId(6));
        let ngh = s3.var_i64("ngh");
        let od = s3.var_i64("od");
        let len = s3.var_i64("len");
        let cnt = s3.var_i64("_dones");
        s3.while_true(|f| {
            f.deq(ngh, q(3, r));
            let lo2 = f.load(dist, Expr::var(ngh));
            f.assign(od, lo2);
            f.if_then(Expr::bin(BinOp::Gt, Expr::var(od), Expr::var(cd)), |f| {
                f.store(dist, Expr::var(ngh), Expr::var(cd));
                f.store(
                    nf,
                    Expr::add(
                        Expr::mul(Expr::i64(r as i64), Expr::var(seg)),
                        Expr::var(len),
                    ),
                    Expr::var(ngh),
                );
                f.assign(len, Expr::add(Expr::var(len), Expr::i64(1)));
            });
        });
        s3.store(olen, Expr::i64(r as i64), Expr::var(len));
        p.add_stage(
            StageProgram {
                func: s3.build(),
                handlers: vec![counting_handler(q(3, r), cnt, replicas, 1)],
            },
            r,
        );
    }
    p
}

/// Runs replicated BFS on `cores` cores; verifies distances.
///
/// Runtime failures surface as `Err(Trap)`; wrong distances still
/// panic (miscompile).
pub fn run_bfs_replicated(
    variant: RepVariant,
    g: &Graph,
    root: usize,
    cfg: &MachineConfig,
    input: &str,
) -> Result<Measurement, Trap> {
    let replicas = cfg.cores;
    let pipeline = bfs_replicated(replicas, variant);
    let (mem, arrays) = crate::bfs::build_mem(g, root, replicas);
    let n = g.num_vertices;
    let mut session = Session::new(cfg.clone(), mem);
    let mut len = 1i64;
    let mut cur_dist = 1i64;
    while len > 0 {
        session
            .mem_mut()
            .store(arrays.fringe_len, 0, Value::I64(len))
            .unwrap();
        session.run(
            &pipeline,
            &[
                ("cur_dist", Value::I64(cur_dist)),
                ("seg", Value::I64(n as i64)),
            ],
        )?;
        let mut next = Vec::new();
        for t in 0..replicas {
            let tlen = session
                .mem()
                .load(arrays.out_len, t as i64)
                .unwrap()
                .as_i64()
                .unwrap();
            for k in 0..tlen {
                next.push(
                    session
                        .mem()
                        .load(arrays.next_fringe, (t * n) as i64 + k)
                        .unwrap(),
                );
            }
        }
        len = next.len() as i64;
        for (k, v) in next.iter().enumerate() {
            session
                .mem_mut()
                .store(arrays.fringe, k as i64, *v)
                .unwrap();
        }
        cur_dist += 1;
    }
    let (mem, stats) = session.finish();
    assert_eq!(
        mem.i64_vec(arrays.dist),
        g.bfs_distances(root),
        "replicated BFS distances wrong"
    );
    Ok(Measurement {
        variant: format!("replicated-{variant:?}"),
        input: input.into(),
        cycles: stats.cycles,
        stats,
    })
}

// ---------------------------------------------------------------------
// CC (and, structurally, Radii)
// ---------------------------------------------------------------------

/// Replicated CC. `replicas_per_core = 1` gives the 3-stage x R layout;
/// Phloem's update re-reads `labels[v]` per edge (packed `v`), the
/// manual version packs the *stale* label itself, saving a load.
pub fn cc_replicated(replicas: usize, variant: RepVariant) -> Pipeline {
    let arrays = vec![
        ArrayDecl::i32("fringe"),
        ArrayDecl::i32("nodes"),
        ArrayDecl::i32("edges"),
        ArrayDecl::i32("labels"),
        ArrayDecl::i32("next_fringe"),
        ArrayDecl::i32("fringe_len"),
        ArrayDecl::i32("out_len"),
    ];
    let nq = 2u16; // per replica: v-stream, upd
    let q = |k: u16, r: usize| QueueId(k + nq * r as u16);
    let upd_queues: Vec<QueueId> = (0..replicas).map(|r| q(1, r)).collect();
    let mut p = Pipeline::new(format!("cc-rep{replicas}-{variant:?}"));

    for r in 0..replicas {
        // Fetch slice; manual also reads the (stale) label here.
        let mut s0 = FunctionBuilder::new(format!("fetch@r{r}"));
        let _seg = s0.param_i64("seg");
        for a in &arrays {
            s0.array(a.clone());
        }
        let (fringe, labels0, flen) = (ArrayId(0), ArrayId(3), ArrayId(5));
        let nl = s0.var_i64("nl");
        let lo = s0.var_i64("lo");
        let hi = s0.var_i64("hi");
        let i = s0.var_i64("i");
        let v = s0.var_i64("v");
        let lv = s0.var_i64("lv");
        let l = s0.load(flen, Expr::i64(0));
        s0.assign(nl, l);
        s0.assign(
            lo,
            Expr::bin(
                BinOp::Div,
                Expr::mul(Expr::var(nl), Expr::i64(r as i64)),
                Expr::i64(replicas as i64),
            ),
        );
        s0.assign(
            hi,
            Expr::bin(
                BinOp::Div,
                Expr::mul(Expr::var(nl), Expr::i64(r as i64 + 1)),
                Expr::i64(replicas as i64),
            ),
        );
        s0.for_loop(i, Expr::var(lo), Expr::var(hi), |f| {
            let lvv = f.load(fringe, Expr::var(i));
            f.assign(v, lvv);
            if variant == RepVariant::Manual {
                // Stale label read (safe for a monotone fixpoint), packed
                // with the vertex id: (lv << 32) | v.
                let llv = f.load(labels0, Expr::var(v));
                f.assign(lv, llv);
                f.enq(q(0, r), pack(Expr::var(lv), Expr::var(v)));
            } else {
                f.enq(q(0, r), Expr::var(v));
            }
        });
        s0.enq_ctrl(q(0, r), DONE);
        p.add_stage(StageProgram::plain(s0.build()), r);

        // Visit: enumerate neighbors, distribute packed (payload, ngh).
        let mut s1 = FunctionBuilder::new(format!("visit@r{r}"));
        let _ = s1.param_i64("seg");
        for a in &arrays {
            s1.array(a.clone());
        }
        let (nodes, edges) = (ArrayId(1), ArrayId(2));
        let pv = s1.var_i64("pv");
        let s_ = s1.var_i64("s");
        let e_ = s1.var_i64("e");
        let j = s1.var_i64("j");
        let ngh = s1.var_i64("ngh");
        s1.while_true(|f| {
            f.deq(pv, q(0, r));
            // In the manual variant, pv is the stale label but vertex-
            // keyed structure lookups still need v; the fetch stage packs
            // (lv<<32)|v for the manual version instead.
            let key = if variant == RepVariant::Manual {
                // pv = (lv << 32) | v; the node lookup uses the low half.
                let vv = f.var_i64("vv");
                f.assign(
                    vv,
                    Expr::bin(BinOp::And, Expr::var(pv), Expr::i64(0xFFFF_FFFF)),
                );
                vv
            } else {
                pv
            };
            let ls = f.load(nodes, Expr::var(key));
            f.assign(s_, ls);
            let le = f.load(nodes, Expr::add(Expr::var(key), Expr::i64(1)));
            f.assign(e_, le);
            f.for_loop(j, Expr::var(s_), Expr::var(e_), |f| {
                let ln = f.load(edges, Expr::var(j));
                f.assign(ngh, ln);
                let payload = if variant == RepVariant::Manual {
                    // Forward the stale label.
                    Expr::bin(BinOp::Shr, Expr::var(pv), Expr::i64(32))
                } else {
                    Expr::var(key)
                };
                f.enq_sel(
                    upd_queues.clone(),
                    Expr::var(ngh),
                    pack(payload, Expr::var(ngh)),
                );
            });
        });
        let done_bcast: Vec<Stmt> = upd_queues
            .iter()
            .map(|qq| Stmt::EnqCtrl {
                queue: *qq,
                ctrl: DONE,
            })
            .collect();
        p.add_stage(
            StageProgram {
                func: s1.build(),
                handlers: vec![CtrlHandler {
                    queue: q(0, r),
                    ctrl: Some(DONE),
                    bind: None,
                    body: done_bcast,
                    end: HandlerEnd::FinishStage,
                }],
            },
            r,
        );

        // Update: owns labels partition r.
        let mut s2 = FunctionBuilder::new(format!("update@r{r}"));
        let seg = s2.param_i64("seg");
        for a in &arrays {
            s2.array(a.clone());
        }
        let (labels, nf, olen) = (ArrayId(3), ArrayId(4), ArrayId(6));
        let x = s2.var_i64("x");
        let ngh2 = s2.var_i64("ngh");
        let pay = s2.var_i64("pay");
        let lv2 = s2.var_i64("lv");
        let ln2 = s2.var_i64("ln");
        let len = s2.var_i64("len");
        let cnt = s2.var_i64("_dones");
        s2.while_true(|f| {
            f.deq(x, q(1, r));
            unpack_lo(f, x, ngh2);
            unpack_hi(f, x, pay);
            if variant == RepVariant::Manual {
                f.assign(lv2, Expr::var(pay));
            } else {
                let llv = f.load(labels, Expr::var(pay));
                f.assign(lv2, llv);
            }
            let lln = f.load(labels, Expr::var(ngh2));
            f.assign(ln2, lln);
            f.if_then(Expr::bin(BinOp::Gt, Expr::var(ln2), Expr::var(lv2)), |f| {
                f.store(labels, Expr::var(ngh2), Expr::var(lv2));
                f.store(
                    nf,
                    Expr::add(
                        Expr::mul(Expr::i64(r as i64), Expr::var(seg)),
                        Expr::var(len),
                    ),
                    Expr::var(ngh2),
                );
                f.assign(len, Expr::add(Expr::var(len), Expr::i64(1)));
            });
        });
        s2.store(olen, Expr::i64(r as i64), Expr::var(len));
        p.add_stage(
            StageProgram {
                func: s2.build(),
                handlers: vec![counting_handler(q(1, r), cnt, replicas, 1)],
            },
            r,
        );
    }
    p
}

/// Runs replicated CC; verifies labels.
///
/// Runtime failures surface as `Err(Trap)`; wrong labels still panic
/// (miscompile).
pub fn run_cc_replicated(
    variant: RepVariant,
    g: &Graph,
    cfg: &MachineConfig,
    input: &str,
) -> Result<Measurement, Trap> {
    let replicas = cfg.cores;
    let pipeline = cc_replicated(replicas, variant);
    let (mem, arrays) = crate::cc::build_mem(g, replicas);
    let seg = crate::cc::segment(g);
    let mut session = Session::new(cfg.clone(), mem);
    let compiled = CompiledPipeline::new(&pipeline)?;
    let mut len = g.num_vertices as i64;
    let mut rounds = 0;
    while len > 0 {
        session
            .mem_mut()
            .store(arrays.fringe_len, 0, Value::I64(len))
            .unwrap();
        session.run_compiled(&pipeline, &compiled, &[("seg", Value::I64(seg as i64))])?;
        let mut next = Vec::new();
        for t in 0..replicas {
            let tlen = session
                .mem()
                .load(arrays.out_len, t as i64)
                .unwrap()
                .as_i64()
                .unwrap();
            for k in 0..tlen {
                next.push(
                    session
                        .mem()
                        .load(arrays.next_fringe, (t * seg) as i64 + k)
                        .unwrap(),
                );
            }
        }
        len = next.len() as i64;
        for (k, v) in next.iter().enumerate() {
            session
                .mem_mut()
                .store(arrays.fringe, k as i64, *v)
                .unwrap();
        }
        rounds += 1;
        if rounds >= 1_000_000 {
            return Err(Trap::Livelock {
                cycle: session.elapsed(),
                detail: format!("replicated CC did not converge after {rounds} rounds"),
            });
        }
    }
    let (mem, stats) = session.finish();
    assert_eq!(
        mem.i64_vec(arrays.labels),
        crate::cc::oracle(g),
        "replicated CC labels wrong ({variant:?})"
    );
    Ok(Measurement {
        variant: format!("replicated-{variant:?}"),
        input: input.into(),
        cycles: stats.cycles,
        stats,
    })
}

// ---------------------------------------------------------------------
// Radii: 2 stages x 2R replicas (Phloem) vs 3 stages x R (manual)
// ---------------------------------------------------------------------

/// Replicated Radii. The Phloem configuration is the paper's winner:
/// *2 stages (plus RAs), replicated eight times across four cores* —
/// here 2 compute stages x `2R` replicas, two replicas per core. The
/// manual configuration replicates a 3-stage pipeline once per core.
pub fn radii_replicated(cores: usize, variant: RepVariant) -> Pipeline {
    let arrays = vec![
        ArrayDecl::i32("fringe"),
        ArrayDecl::i32("nodes"),
        ArrayDecl::i32("edges"),
        ArrayDecl::i64("visited"),
        ArrayDecl::i64("nvisited"),
        ArrayDecl::i32("radii"),
        ArrayDecl::i32("next_fringe"),
        ArrayDecl::i32("fringe_len"),
        ArrayDecl::i32("out_len"),
    ];
    let (replicas, stages3) = match variant {
        RepVariant::Phloem => (cores * 2, false),
        RepVariant::Manual => (cores, true),
    };
    let nq = 3u16; // v-stream, (optional ngh-local), upd
    let q = |k: u16, r: usize| QueueId(k + nq * r as u16);
    let upd_queues: Vec<QueueId> = (0..replicas).map(|r| q(2, r)).collect();
    let mut p = Pipeline::new(format!("radii-rep-{variant:?}"));

    for r in 0..replicas {
        let core = if stages3 { r } else { r / 2 };
        // Stage 0: fetch slice (+ visit, when merged).
        let mut s0 = FunctionBuilder::new(format!("fetch@r{r}"));
        let _seg = s0.param_i64("seg");
        let _round = s0.param_i64("round");
        for a in &arrays {
            s0.array(a.clone());
        }
        let (fringe, nodes, edges, flen) = (ArrayId(0), ArrayId(1), ArrayId(2), ArrayId(7));
        let nl = s0.var_i64("nl");
        let lo = s0.var_i64("lo");
        let hi = s0.var_i64("hi");
        let i = s0.var_i64("i");
        let v = s0.var_i64("v");
        let l = s0.load(flen, Expr::i64(0));
        s0.assign(nl, l);
        s0.assign(
            lo,
            Expr::bin(
                BinOp::Div,
                Expr::mul(Expr::var(nl), Expr::i64(r as i64)),
                Expr::i64(replicas as i64),
            ),
        );
        s0.assign(
            hi,
            Expr::bin(
                BinOp::Div,
                Expr::mul(Expr::var(nl), Expr::i64(r as i64 + 1)),
                Expr::i64(replicas as i64),
            ),
        );
        if stages3 {
            // Manual: fetch sends v; a separate visit stage enumerates.
            s0.for_loop(i, Expr::var(lo), Expr::var(hi), |f| {
                let lv = f.load(fringe, Expr::var(i));
                f.assign(v, lv);
                f.enq(q(0, r), Expr::var(v));
            });
            s0.enq_ctrl(q(0, r), DONE);
            p.add_stage(StageProgram::plain(s0.build()), core);

            let mut s1 = FunctionBuilder::new(format!("visit@r{r}"));
            let _ = s1.param_i64("seg");
            let _ = s1.param_i64("round");
            for a in &arrays {
                s1.array(a.clone());
            }
            let v1 = s1.var_i64("v");
            let s_ = s1.var_i64("s");
            let e_ = s1.var_i64("e");
            let j = s1.var_i64("j");
            let ngh = s1.var_i64("ngh");
            s1.while_true(|f| {
                f.deq(v1, q(0, r));
                let ls = f.load(nodes, Expr::var(v1));
                f.assign(s_, ls);
                let le = f.load(nodes, Expr::add(Expr::var(v1), Expr::i64(1)));
                f.assign(e_, le);
                f.for_loop(j, Expr::var(s_), Expr::var(e_), |f| {
                    let ln = f.load(edges, Expr::var(j));
                    f.assign(ngh, ln);
                    f.enq_sel(
                        upd_queues.clone(),
                        Expr::var(ngh),
                        pack(Expr::var(v1), Expr::var(ngh)),
                    );
                });
            });
            let done_bcast: Vec<Stmt> = upd_queues
                .iter()
                .map(|qq| Stmt::EnqCtrl {
                    queue: *qq,
                    ctrl: DONE,
                })
                .collect();
            p.add_stage(
                StageProgram {
                    func: s1.build(),
                    handlers: vec![CtrlHandler {
                        queue: q(0, r),
                        ctrl: Some(DONE),
                        bind: None,
                        body: done_bcast,
                        end: HandlerEnd::FinishStage,
                    }],
                },
                core,
            );
        } else {
            // Phloem best config: fetch+visit merged into one stage.
            let s_ = s0.var_i64("s");
            let e_ = s0.var_i64("e");
            let j = s0.var_i64("j");
            let ngh = s0.var_i64("ngh");
            s0.for_loop(i, Expr::var(lo), Expr::var(hi), |f| {
                let lv = f.load(fringe, Expr::var(i));
                f.assign(v, lv);
                let ls = f.load(nodes, Expr::var(v));
                f.assign(s_, ls);
                let le = f.load(nodes, Expr::add(Expr::var(v), Expr::i64(1)));
                f.assign(e_, le);
                f.for_loop(j, Expr::var(s_), Expr::var(e_), |f| {
                    let ln = f.load(edges, Expr::var(j));
                    f.assign(ngh, ln);
                    f.enq_sel(
                        upd_queues.clone(),
                        Expr::var(ngh),
                        pack(Expr::var(v), Expr::var(ngh)),
                    );
                });
            });
            for qq in &upd_queues {
                s0.enq_ctrl(*qq, DONE);
            }
            p.add_stage(StageProgram::plain(s0.build()), core);
        }

        // Update.
        let mut s2 = FunctionBuilder::new(format!("update@r{r}"));
        let seg = s2.param_i64("seg");
        let round = s2.param_i64("round");
        for a in &arrays {
            s2.array(a.clone());
        }
        let (visited, nvisited, radii, nf, olen) =
            (ArrayId(3), ArrayId(4), ArrayId(5), ArrayId(6), ArrayId(8));
        let x = s2.var_i64("x");
        let ngh2 = s2.var_i64("ngh");
        let v2 = s2.var_i64("v");
        let mv = s2.var_i64("mv");
        let mn = s2.var_i64("mn");
        let un = s2.var_i64("un");
        let rr = s2.var_i64("rr");
        let len = s2.var_i64("len");
        let cnt = s2.var_i64("_dones");
        s2.while_true(|f| {
            f.deq(x, q(2, r));
            unpack_lo(f, x, ngh2);
            unpack_hi(f, x, v2);
            let lmv = f.load(visited, Expr::var(v2));
            f.assign(mv, lmv);
            let lmn = f.load(nvisited, Expr::var(ngh2));
            f.assign(mn, lmn);
            f.assign(un, Expr::bin(BinOp::Or, Expr::var(mn), Expr::var(mv)));
            f.if_then(Expr::ne(Expr::var(un), Expr::var(mn)), |f| {
                f.store(nvisited, Expr::var(ngh2), Expr::var(un));
                let lr = f.load(radii, Expr::var(ngh2));
                f.assign(rr, lr);
                f.if_then(Expr::ne(Expr::var(rr), Expr::var(round)), |f| {
                    f.store(radii, Expr::var(ngh2), Expr::var(round));
                    f.store(
                        nf,
                        Expr::add(
                            Expr::mul(Expr::i64(r as i64), Expr::var(seg)),
                            Expr::var(len),
                        ),
                        Expr::var(ngh2),
                    );
                    f.assign(len, Expr::add(Expr::var(len), Expr::i64(1)));
                });
            });
        });
        s2.store(olen, Expr::i64(r as i64), Expr::var(len));
        p.add_stage(
            StageProgram {
                func: s2.build(),
                handlers: vec![counting_handler(q(2, r), cnt, replicas, 1)],
            },
            core,
        );
    }
    p
}

/// Runs replicated Radii; verifies radii against the oracle.
///
/// Runtime failures surface as `Err(Trap)`; radii mismatches still
/// panic (miscompile).
pub fn run_radii_replicated(
    variant: RepVariant,
    g: &Graph,
    cfg: &MachineConfig,
    input: &str,
) -> Result<Measurement, Trap> {
    let pipeline = radii_replicated(cfg.cores, variant);
    let replicas = match variant {
        RepVariant::Phloem => cfg.cores * 2,
        RepVariant::Manual => cfg.cores,
    };
    let (mem, arrays) = crate::radii::build_mem(g, replicas);
    let seg = crate::radii::segment(g);
    let mut session = Session::new(cfg.clone(), mem);
    let mut len = crate::radii::sources(g).len() as i64;
    let mut round = 1i64;
    while len > 0 {
        session
            .mem_mut()
            .store(arrays.fringe_len, 0, Value::I64(len))
            .unwrap();
        session.run(
            &pipeline,
            &[
                ("round", Value::I64(round)),
                ("seg", Value::I64(seg as i64)),
            ],
        )?;
        let mut next = Vec::new();
        for t in 0..replicas {
            let tlen = session
                .mem()
                .load(arrays.out_len, t as i64)
                .unwrap()
                .as_i64()
                .unwrap();
            for k in 0..tlen {
                next.push(
                    session
                        .mem()
                        .load(arrays.next_fringe, (t * seg) as i64 + k)
                        .unwrap(),
                );
            }
        }
        len = next.len() as i64;
        for (k, v) in next.iter().enumerate() {
            session
                .mem_mut()
                .store(arrays.fringe, k as i64, *v)
                .unwrap();
        }
        let nv = session.mem().values(arrays.nvisited).to_vec();
        session.mem_mut().set_values(arrays.visited, nv);
        round += 1;
        if round >= 1_000_000 {
            return Err(Trap::Livelock {
                cycle: session.elapsed(),
                detail: format!("replicated radii did not converge after {round} rounds"),
            });
        }
    }
    let (mem, stats) = session.finish();
    assert_eq!(
        mem.i64_vec(arrays.radii),
        crate::radii::oracle(g),
        "replicated radii wrong ({variant:?})"
    );
    Ok(Measurement {
        variant: format!("replicated-{variant:?}"),
        input: input.into(),
        cycles: stats.cycles,
        stats,
    })
}

// ---------------------------------------------------------------------
// PageRank-Delta
// ---------------------------------------------------------------------

/// Replicated PRD scatter phase. The Phloem version replicates 3 stages
/// per core (fetch, visit, update); the manual version merges the middle
/// stages and uses the freed thread for a *second level* of update
/// replication (two update threads per core, selected by `ngh % 2R`).
pub fn prd_scatter_replicated(cores: usize, variant: RepVariant) -> Pipeline {
    let arrays = vec![
        ArrayDecl::i32("active"),
        ArrayDecl::i32("nodes"),
        ArrayDecl::i32("edges"),
        ArrayDecl::f64("delta"),
        ArrayDecl::f64("invdeg"),
        ArrayDecl::f64("acc"),
        ArrayDecl::f64("rank"),
        ArrayDecl::i32("fringe_len"),
        ArrayDecl::i32("out_len"),
    ];
    let updates = match variant {
        RepVariant::Phloem => cores,
        RepVariant::Manual => cores * 2,
    };
    let nq = 3u16;
    let q = |k: u16, r: usize| QueueId(k + nq * r as u16);
    let upd_queues: Vec<QueueId> = (0..updates).map(|u| q(2, u)).collect();
    let mut p = Pipeline::new(format!("prd-rep-{variant:?}"));

    for r in 0..cores {
        // Fetch slice of the active list.
        let mut s0 = FunctionBuilder::new(format!("fetch@r{r}"));
        for a in &arrays {
            s0.array(a.clone());
        }
        let (active, flen) = (ArrayId(0), ArrayId(7));
        let nl = s0.var_i64("nl");
        let lo = s0.var_i64("lo");
        let hi = s0.var_i64("hi");
        let i = s0.var_i64("i");
        let l = s0.load(flen, Expr::i64(0));
        s0.assign(nl, l);
        s0.assign(
            lo,
            Expr::bin(
                BinOp::Div,
                Expr::mul(Expr::var(nl), Expr::i64(r as i64)),
                Expr::i64(cores as i64),
            ),
        );
        s0.assign(
            hi,
            Expr::bin(
                BinOp::Div,
                Expr::mul(Expr::var(nl), Expr::i64(r as i64 + 1)),
                Expr::i64(cores as i64),
            ),
        );
        s0.for_loop(i, Expr::var(lo), Expr::var(hi), |f| {
            let lv = f.load(active, Expr::var(i));
            f.enq(q(0, r), lv);
        });
        s0.enq_ctrl(q(0, r), DONE);
        p.add_stage(StageProgram::plain(s0.build()), r);

        // Visit: enumerate neighbors, distribute packed (v, ngh).
        let mut s1 = FunctionBuilder::new(format!("visit@r{r}"));
        for a in &arrays {
            s1.array(a.clone());
        }
        let (nodes, edges) = (ArrayId(1), ArrayId(2));
        let v1 = s1.var_i64("v");
        let s_ = s1.var_i64("s");
        let e_ = s1.var_i64("e");
        let j = s1.var_i64("j");
        let ngh = s1.var_i64("ngh");
        s1.while_true(|f| {
            f.deq(v1, q(0, r));
            let ls = f.load(nodes, Expr::var(v1));
            f.assign(s_, ls);
            let le = f.load(nodes, Expr::add(Expr::var(v1), Expr::i64(1)));
            f.assign(e_, le);
            f.for_loop(j, Expr::var(s_), Expr::var(e_), |f| {
                let ln = f.load(edges, Expr::var(j));
                f.assign(ngh, ln);
                f.enq_sel(
                    upd_queues.clone(),
                    Expr::var(ngh),
                    pack(Expr::var(v1), Expr::var(ngh)),
                );
            });
        });
        let done_bcast: Vec<Stmt> = upd_queues
            .iter()
            .map(|qq| Stmt::EnqCtrl {
                queue: *qq,
                ctrl: DONE,
            })
            .collect();
        p.add_stage(
            StageProgram {
                func: s1.build(),
                handlers: vec![CtrlHandler {
                    queue: q(0, r),
                    ctrl: Some(DONE),
                    bind: None,
                    body: done_bcast,
                    end: HandlerEnd::FinishStage,
                }],
            },
            r,
        );
    }

    // Update stages (one per core for Phloem; two per core manual).
    for u in 0..updates {
        let core = match variant {
            RepVariant::Phloem => u,
            RepVariant::Manual => u / 2,
        };
        let mut s2 = FunctionBuilder::new(format!("update@u{u}"));
        for a in &arrays {
            s2.array(a.clone());
        }
        let (delta, invdeg, acc) = (ArrayId(3), ArrayId(4), ArrayId(5));
        let x = s2.var_i64("x");
        let ngh2 = s2.var_i64("ngh");
        let v2 = s2.var_i64("v");
        let dv = s2.var_f64("dv");
        let iv = s2.var_f64("iv");
        let a2 = s2.var_f64("a");
        let cnt = s2.var_i64("_dones");
        s2.while_true(|f| {
            f.deq(x, q(2, u));
            unpack_lo(f, x, ngh2);
            unpack_hi(f, x, v2);
            let ld = f.load(delta, Expr::var(v2));
            f.assign(dv, ld);
            let li = f.load(invdeg, Expr::var(v2));
            f.assign(iv, li);
            let la = f.load(acc, Expr::var(ngh2));
            f.assign(a2, la);
            f.store(
                acc,
                Expr::var(ngh2),
                Expr::add(Expr::var(a2), Expr::mul(Expr::var(dv), Expr::var(iv))),
            );
        });
        p.add_stage(
            StageProgram {
                func: s2.build(),
                handlers: vec![counting_handler(q(2, u), cnt, cores, 1)],
            },
            core,
        );
    }
    p
}

/// Runs replicated PRD (scatter replicated; apply data-parallel across
/// all threads); verifies ranks with a tolerance (cross-replica float
/// accumulation order differs).
///
/// Runtime failures surface as `Err(Trap)`; rank divergence still
/// panics (miscompile).
pub fn run_prd_replicated(
    variant: RepVariant,
    g: &Graph,
    cfg: &MachineConfig,
    input: &str,
) -> Result<Measurement, Trap> {
    let threads = cfg.cores * cfg.smt_threads;
    let scatter = prd_scatter_replicated(cfg.cores, variant);
    let apply = crate::runner::data_parallel_pipeline(
        (0..threads)
            .map(|t| crate::prd::dp_apply(t, threads, g.num_vertices))
            .collect(),
        cfg.smt_threads,
    );
    let (mem, arrays) = crate::prd::build_mem(g, threads);
    let n = g.num_vertices;
    let mut session = Session::new(cfg.clone(), mem);
    let mut len = n as i64;
    for _ in 0..crate::prd::ITERATIONS {
        if len == 0 {
            break;
        }
        session
            .mem_mut()
            .store(arrays.fringe_len, 0, Value::I64(len))
            .unwrap();
        session.run(&scatter, &[])?;
        session.run(&apply, &[("n", Value::I64(n as i64))])?;
        let mut next = Vec::new();
        for t in 0..threads {
            let tlen = session
                .mem()
                .load(arrays.out_len, t as i64)
                .unwrap()
                .as_i64()
                .unwrap();
            let lo = (n as i64) * t as i64 / threads as i64;
            for k in 0..tlen {
                next.push(session.mem().load(arrays.active, lo + k).unwrap());
            }
        }
        len = next.len() as i64;
        for (k, v) in next.iter().enumerate() {
            session
                .mem_mut()
                .store(arrays.active, k as i64, *v)
                .unwrap();
        }
    }
    let (mem, stats) = session.finish();
    let ranks = mem.f64_vec(arrays.rank);
    let want = crate::prd::oracle(g);
    for (i, (a, b)) in ranks.iter().zip(&want).enumerate() {
        assert!(
            (a - b).abs() <= 1e-9 + 1e-6 * b.abs(),
            "prd-rep {variant:?}: rank[{i}] {a} vs {b}"
        );
    }
    Ok(Measurement {
        variant: format!("replicated-{variant:?}"),
        input: input.into(),
        cycles: stats.cycles,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use phloem_workloads::graph;

    #[test]
    fn replicated_bfs_is_correct_on_4_cores() {
        let g = graph::mesh(14, 2);
        let cfg = MachineConfig::paper_multicore(4);
        let m = run_bfs_replicated(RepVariant::Phloem, &g, 0, &cfg, "mesh").expect("bfs-rep");
        assert!(m.cycles > 0);
    }

    #[test]
    fn replicated_cc_both_variants_correct() {
        let g = graph::collaboration(40, 9);
        let cfg = MachineConfig::paper_multicore(4);
        for v in [RepVariant::Phloem, RepVariant::Manual] {
            let m = run_cc_replicated(v, &g, &cfg, "collab").expect("cc-rep");
            assert!(m.cycles > 0, "{v:?}");
        }
    }

    #[test]
    fn replicated_radii_both_variants_correct() {
        let g = graph::mesh(10, 4);
        let cfg = MachineConfig::paper_multicore(4);
        for v in [RepVariant::Phloem, RepVariant::Manual] {
            let m = run_radii_replicated(v, &g, &cfg, "mesh").expect("radii-rep");
            assert!(m.cycles > 0, "{v:?}");
        }
    }

    #[test]
    fn replicated_prd_both_variants_correct() {
        let g = graph::power_law(150, 3, 6);
        let cfg = MachineConfig::paper_multicore(4);
        for v in [RepVariant::Phloem, RepVariant::Manual] {
            let m = run_prd_replicated(v, &g, &cfg, "pl").expect("prd-rep");
            assert!(m.cycles > 0, "{v:?}");
        }
    }
}
