//! Packaged single-invocation pipelines for fault-injection testing.
//!
//! Each [`FaultTarget`] bundles a benchsuite pipeline with a populated
//! input memory and parameter bindings so a harness (`fuzzdiff --faults`)
//! can run one bounded kernel invocation under an injected
//! [`pipette_sim::FaultPlan`] and compare outcomes across the
//! scheduler × engine grid.
//!
//! The set deliberately spans the simulator's structural space: manual
//! pipelines with inter-stage queues and chained RAs (BFS, CC, SpMM),
//! Phloem-compiled pipelines with control-value links (BFS static,
//! Radii), and a TACO phase. BFS-style targets get a dense fringe
//! (every vertex) so the queues carry real traffic for squeeze and
//! stall faults to bite on.

use crate::runner::Variant;
use crate::{bfs, cc, radii, spmm, taco};
use phloem_ir::{MemState, Pipeline, Value};
use phloem_workloads::{graph, matrix};
use pipette_sim::MachineConfig;

/// One fault-injection target: a pipeline plus everything needed to run
/// it once.
pub struct FaultTarget {
    /// Display name, e.g. `bfs/manual`.
    pub name: &'static str,
    /// The pipeline to run.
    pub pipeline: Pipeline,
    /// Input memory for one invocation.
    pub mem: MemState,
    /// Parameter bindings for the invocation.
    pub params: Vec<(&'static str, Value)>,
}

/// Fills the BFS/graph fringe with every vertex so one invocation
/// drives maximal queue traffic.
fn densify_fringe(
    mem: &mut MemState,
    fringe: phloem_ir::ArrayId,
    len: phloem_ir::ArrayId,
    n: usize,
) {
    for i in 0..n {
        mem.store(fringe, i as i64, Value::I64(i as i64)).unwrap();
    }
    mem.store(len, 0, Value::I64(n as i64)).unwrap();
}

/// Builds the standard fault-target set for a machine configuration.
///
/// # Panics
/// Panics if a Phloem compilation fails — the targets are fixed known
/// kernels, so that indicates a compiler regression, not a fault.
pub fn targets(cfg: &MachineConfig) -> Vec<FaultTarget> {
    let g = graph::power_law(300, 3, 5);
    let n = g.num_vertices;
    let mut out = Vec::new();

    // BFS, hand-optimized: fetch stage + chained INDIRECT/SCAN RAs.
    {
        let (mut mem, arrays) = bfs::build_mem(&g, 0, 1);
        densify_fringe(&mut mem, arrays.fringe, arrays.fringe_len, n);
        out.push(FaultTarget {
            name: "bfs/manual",
            pipeline: bfs::manual_pipeline(),
            mem,
            params: vec![("cur_dist", Value::I64(1))],
        });
    }

    // BFS, Phloem static 4-stage: queue + control-value links.
    {
        let (mut mem, arrays) = bfs::build_mem(&g, 0, 1);
        densify_fringe(&mut mem, arrays.fringe, arrays.fringe_len, n);
        out.push(FaultTarget {
            name: "bfs/static4",
            pipeline: bfs::pipeline_for(&Variant::phloem(), n, cfg).expect("BFS static pipeline"),
            mem,
            params: Vec::new(),
        });
    }

    // CC, hand-optimized: build_mem already starts with a full fringe.
    {
        let (mem, _arrays) = cc::build_mem(&g, 1);
        out.push(FaultTarget {
            name: "cc/manual",
            pipeline: cc::manual_pipeline(),
            mem,
            params: Vec::new(),
        });
    }

    // Radii, Phloem static: multi-source fringe, bitfield updates.
    {
        let (mem, _arrays) = radii::build_mem(&g, 1);
        out.push(FaultTarget {
            name: "radii/static4",
            pipeline: radii::pipeline_for(&Variant::phloem(), radii::segment(&g), cfg)
                .expect("Radii static pipeline"),
            mem,
            params: vec![("round", Value::I64(1))],
        });
    }

    // SpMM, hand-optimized: two-sided merge over CSR rows.
    {
        let a = matrix::random_square(80, 6.0, 11);
        let bt = matrix::random_square(80, 6.0, 12);
        let (mem, _arrays) = spmm::build_mem(&a, &bt, 1);
        out.push(FaultTarget {
            name: "spmm/manual",
            pipeline: spmm::manual_pipeline(),
            mem,
            params: vec![("n", Value::I64(a.rows as i64))],
        });
    }

    // TACO SpMV, Phloem-compiled main phase.
    {
        let a = matrix::random_square(120, 5.0, 13);
        let k = taco::TacoApp::Spmv.kernel();
        let (mem, _out_id) = taco::build_mem(taco::TacoApp::Spmv, &k, &a);
        let pipeline = taco::pipelines_for(taco::TacoApp::Spmv, &Variant::phloem(), cfg)
            .expect("TACO SpMV pipelines")
            .pop()
            .expect("TACO SpMV has at least one phase");
        out.push(FaultTarget {
            name: "taco/spmv",
            pipeline,
            mem,
            params: taco::params(taco::TacoApp::Spmv, &a),
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipette_sim::Session;

    #[test]
    fn all_targets_run_clean() {
        let cfg = MachineConfig::paper_1core();
        for t in targets(&cfg) {
            let mut session = Session::new(cfg.clone(), t.mem.clone());
            session
                .run(&t.pipeline, &t.params)
                .unwrap_or_else(|e| panic!("{} trapped unfaulted: {e}", t.name));
        }
    }
}
