//! Shared benchmark-runner infrastructure: variants, measurements, and
//! helpers used by every application module and the figure harnesses.

use phloem_compiler::PassConfig;
use phloem_ir::{Function, Pipeline, StageProgram};
use pipette_sim::RunStats;
use serde::{Deserialize, Serialize};

/// Which program variant to run (the four bars of Fig. 9).
#[derive(Clone, Debug, PartialEq)]
pub enum Variant {
    /// The original serial code on one thread.
    Serial,
    /// A competitive data-parallel implementation on `usize` threads.
    DataParallel(usize),
    /// Phloem-generated pipeline with the given passes; `stages` caps the
    /// compute-stage count (cost-model cuts) unless `cuts` pins them.
    Phloem {
        /// Pass ablation switches.
        passes: PassConfig,
        /// Requested stage count for the static cost model.
        stages: usize,
        /// Explicit cut loads (PGO mode); empty = static mode.
        cuts: Vec<phloem_ir::LoadId>,
    },
    /// The hand-optimized Pipette pipeline.
    Manual,
}

impl Variant {
    /// Default Phloem variant: all passes, 4-stage static compilation.
    pub fn phloem() -> Variant {
        Variant::Phloem {
            passes: PassConfig::all(),
            stages: 4,
            cuts: Vec::new(),
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            Variant::Serial => "serial".into(),
            Variant::DataParallel(t) => format!("data-parallel({t})"),
            Variant::Phloem { passes, cuts, .. } => {
                if cuts.is_empty() {
                    format!("phloem[{}]", passes.label())
                } else {
                    format!("phloem[{};{} cuts]", passes.label(), cuts.len())
                }
            }
            Variant::Manual => "manual".into(),
        }
    }
}

/// One measured run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Measurement {
    /// Variant label.
    pub variant: String,
    /// Input name.
    pub input: String,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Full statistics (cycle breakdown, energy, cache counters).
    pub stats: RunStats,
}

impl Measurement {
    /// Speedup of this measurement relative to a baseline cycle count.
    pub fn speedup_over(&self, baseline_cycles: u64) -> f64 {
        baseline_cycles as f64 / self.cycles.max(1) as f64
    }
}

/// Runs `f` with the given execution backend ambient: every session the
/// closure constructs (all of the suite's `run()` entry points build
/// theirs internally) executes on that backend. With
/// [`pipette_sim::ExecBackend::Native`] the measured "cycles" are
/// wall-clock nanoseconds; final memory — and therefore every oracle
/// check inside the apps — is identical for correct pipelines.
pub fn with_backend<R>(backend: pipette_sim::ExecBackend, f: impl FnOnce() -> R) -> R {
    let _scope = pipette_sim::BackendScope::enter(backend);
    f()
}

/// Runs a measurement closure, converting both structured traps and
/// panics into a printable failure string.
///
/// Figure harnesses use this to record a failed variant as an annotated
/// entry (and fall back to the serial baseline) instead of aborting the
/// whole sweep.
pub fn run_guarded(
    label: &str,
    f: impl FnOnce() -> Result<Measurement, phloem_ir::Trap>,
) -> Result<Measurement, String> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(Ok(m)) => Ok(m),
        Ok(Err(trap)) => Err(format!("{label}: {trap}")),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "unknown panic".into());
            Err(format!("{label}: panicked: {msg}"))
        }
    }
}

/// Geometric mean of an iterator of positive values.
pub fn gmean(vals: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in vals {
        sum += v.max(1e-12).ln();
        n += 1;
    }
    if n == 0 {
        return 1.0;
    }
    (sum / n as f64).exp()
}

/// Wraps a serial function as a one-stage pipeline.
pub fn serial_pipeline(func: Function) -> Pipeline {
    let mut p = Pipeline::new(format!("{}-serial", func.name));
    p.add_stage(StageProgram::plain(func), 0);
    p
}

/// Places `funcs` as independent data-parallel stages, `smt` per core.
pub fn data_parallel_pipeline(funcs: Vec<Function>, smt: usize) -> Pipeline {
    let mut p = Pipeline::new("data-parallel");
    for (i, f) in funcs.into_iter().enumerate() {
        p.add_stage(StageProgram::plain(f), i / smt);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_basics() {
        assert!((gmean([2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(gmean(Vec::<f64>::new()), 1.0);
    }

    #[test]
    fn labels_are_distinct() {
        assert_ne!(Variant::Serial.label(), Variant::Manual.label());
        assert!(Variant::phloem().label().contains("phloem"));
    }
}
