//! PageRank-Delta (from Ligra): only vertices whose rank changed by more
//! than a threshold propagate their delta. Structured as two program
//! phases per iteration (the paper notes Phloem decouples such phases
//! individually and synchronizes between them):
//!
//! * **scatter**: each active vertex spreads `delta[v] / deg(v)` to its
//!   neighbors' accumulators — the irregular phase Phloem pipelines;
//! * **apply**: a streaming pass that folds accumulators into ranks and
//!   builds the next active set.
//!
//! Ranks are `f64`; the data-parallel variant uses atomic float adds, so
//! its accumulation order differs and results are compared with a
//! tolerance.

use crate::runner::{data_parallel_pipeline, serial_pipeline, Measurement, Variant};
use phloem_compiler::{compile_static, CompileOptions};
use phloem_ir::{
    ArrayDecl, ArrayId, BinOp, CtrlHandler, Expr, Function, FunctionBuilder, HandlerEnd, MemState,
    Pipeline, QueueId, RaConfig, RaMode, StageProgram, Trap, UnOp, Value,
};
use phloem_workloads::Graph;
use pipette_sim::{MachineConfig, Session, TraceSink};

const DONE: u32 = 0;
const NEXT: u32 = 1;
const DAMPING: f64 = 0.85;
const EPS: f64 = 1e-4;

/// Number of PRD iterations simulated (the paper samples iterations on
/// large inputs to bound simulation time; we do the same).
pub const ITERATIONS: usize = 6;

/// Array ids shared by all PRD variants (order matters).
#[derive(Clone, Copy, Debug)]
pub struct PrdArrays {
    /// Active vertex list.
    pub active: ArrayId,
    /// CSR offsets.
    pub nodes: ArrayId,
    /// CSR edges.
    pub edges: ArrayId,
    /// Per-vertex deltas.
    pub delta: ArrayId,
    /// Precomputed 1/degree.
    pub invdeg: ArrayId,
    /// Neighbor accumulators.
    pub acc: ArrayId,
    /// Ranks.
    pub rank: ArrayId,
    /// Active count.
    pub fringe_len: ArrayId,
    /// Per-thread next-active counts.
    pub out_len: ArrayId,
}

/// Allocates PRD memory: everything active with uniform initial delta.
pub fn build_mem(g: &Graph, threads: usize) -> (MemState, PrdArrays) {
    let n = g.num_vertices;
    let mut mem = MemState::new();
    let active = mem.alloc_i64(ArrayDecl::i32("active"), (0..n as i64).collect::<Vec<_>>());
    let nodes = mem.alloc_i64(ArrayDecl::i32("nodes"), g.offsets.iter().copied());
    let edges = mem.alloc_i64(ArrayDecl::i32("edges"), g.edges.iter().copied());
    let delta = mem.alloc_f64(ArrayDecl::f64("delta"), vec![1.0 / n as f64; n]);
    let invdeg = mem.alloc_f64(
        ArrayDecl::f64("invdeg"),
        (0..n).map(|v| 1.0 / g.degree(v).max(1) as f64),
    );
    let acc = mem.alloc_f64(ArrayDecl::f64("acc"), vec![0.0; n]);
    let rank = mem.alloc_f64(ArrayDecl::f64("rank"), vec![0.0; n]);
    let fringe_len = mem.alloc_i64(ArrayDecl::i32("fringe_len"), [n as i64]);
    let out_len = mem.alloc(ArrayDecl::i32("out_len"), threads.max(1));
    (
        mem,
        PrdArrays {
            active,
            nodes,
            edges,
            delta,
            invdeg,
            acc,
            rank,
            fringe_len,
            out_len,
        },
    )
}

/// Phase A (scatter) serial kernel.
pub fn scatter_kernel() -> Function {
    let mut b = FunctionBuilder::new("prd-scatter");
    let active = b.array_i32("active");
    let nodes = b.array_i32("nodes");
    let edges = b.array_i32("edges");
    let delta = b.array_f64("delta");
    let invdeg = b.array_f64("invdeg");
    let acc = b.array_f64("acc");
    let _rank = b.array_f64("rank");
    let flen = b.array_i32("fringe_len");
    let _olen = b.array_i32("out_len");
    let nl = b.var_i64("nl");
    let i = b.var_i64("i");
    let v = b.var_i64("v");
    let dv = b.var_f64("dv");
    let iv = b.var_f64("iv");
    let c = b.var_f64("c");
    let s = b.var_i64("s");
    let e = b.var_i64("e");
    let j = b.var_i64("j");
    let ngh = b.var_i64("ngh");
    let a = b.var_f64("a");
    let l = b.load(flen, Expr::i64(0));
    b.assign(nl, l);
    b.for_loop(i, Expr::i64(0), Expr::var(nl), |f| {
        let lv = f.load(active, Expr::var(i));
        f.assign(v, lv);
        let ld = f.load(delta, Expr::var(v));
        f.assign(dv, ld);
        let li = f.load(invdeg, Expr::var(v));
        f.assign(iv, li);
        f.assign(c, Expr::mul(Expr::var(dv), Expr::var(iv)));
        let ls = f.load(nodes, Expr::var(v));
        f.assign(s, ls);
        let le = f.load(nodes, Expr::add(Expr::var(v), Expr::i64(1)));
        f.assign(e, le);
        f.for_loop(j, Expr::var(s), Expr::var(e), |f| {
            let ln = f.load(edges, Expr::var(j));
            f.assign(ngh, ln);
            let la = f.load(acc, Expr::var(ngh));
            f.assign(a, la);
            f.store(acc, Expr::var(ngh), Expr::add(Expr::var(a), Expr::var(c)));
        });
    });
    b.build()
}

/// Phase B (apply) serial kernel: fold accumulators, rebuild active set.
pub fn apply_kernel() -> Function {
    let mut b = FunctionBuilder::new("prd-apply");
    let n = b.param_i64("n");
    let active = b.array_i32("active");
    let _nodes = b.array_i32("nodes");
    let _edges = b.array_i32("edges");
    let delta = b.array_f64("delta");
    let _invdeg = b.array_f64("invdeg");
    let acc = b.array_f64("acc");
    let rank = b.array_f64("rank");
    let _flen = b.array_i32("fringe_len");
    let olen = b.array_i32("out_len");
    let v = b.var_i64("v");
    let a = b.var_f64("a");
    let nd = b.var_f64("nd");
    let r = b.var_f64("r");
    let mag = b.var_f64("mag");
    let len = b.var_i64("len");
    b.for_loop(v, Expr::i64(0), Expr::var(n), |f| {
        let la = f.load(acc, Expr::var(v));
        f.assign(a, la);
        f.assign(nd, Expr::mul(Expr::var(a), Expr::f64(DAMPING)));
        f.store(acc, Expr::var(v), Expr::f64(0.0));
        f.assign(
            mag,
            Expr::bin(
                BinOp::Max,
                Expr::var(nd),
                Expr::un(UnOp::Neg, Expr::var(nd)),
            ),
        );
        f.if_then(Expr::bin(BinOp::Gt, Expr::var(mag), Expr::f64(EPS)), |f| {
            let lr = f.load(rank, Expr::var(v));
            f.assign(r, lr);
            f.store(rank, Expr::var(v), Expr::add(Expr::var(r), Expr::var(nd)));
            f.store(delta, Expr::var(v), Expr::var(nd));
            f.store(active, Expr::var(len), Expr::var(v));
            f.assign(len, Expr::add(Expr::var(len), Expr::i64(1)));
        });
    });
    b.store(olen, Expr::i64(0), Expr::var(len));
    b.build()
}

/// Data-parallel scatter: active list partitioned, atomic adds into acc.
pub fn dp_scatter(tid: usize, threads: usize) -> Function {
    let mut b = FunctionBuilder::new(format!("prd-scatter{tid}"));
    let active = b.array_i32("active");
    let nodes = b.array_i32("nodes");
    let edges = b.array_i32("edges");
    let delta = b.array_f64("delta");
    let invdeg = b.array_f64("invdeg");
    let acc = b.array_f64("acc");
    let _rank = b.array_f64("rank");
    let flen = b.array_i32("fringe_len");
    let _olen = b.array_i32("out_len");
    let nl = b.var_i64("nl");
    let lo = b.var_i64("lo");
    let hi = b.var_i64("hi");
    let i = b.var_i64("i");
    let v = b.var_i64("v");
    let dv = b.var_f64("dv");
    let iv = b.var_f64("iv");
    let c = b.var_f64("c");
    let s = b.var_i64("s");
    let e = b.var_i64("e");
    let j = b.var_i64("j");
    let ngh = b.var_i64("ngh");
    let l = b.load(flen, Expr::i64(0));
    b.assign(nl, l);
    let t = tid as i64;
    let nt = threads as i64;
    b.assign(
        lo,
        Expr::bin(
            BinOp::Div,
            Expr::mul(Expr::var(nl), Expr::i64(t)),
            Expr::i64(nt),
        ),
    );
    b.assign(
        hi,
        Expr::bin(
            BinOp::Div,
            Expr::mul(Expr::var(nl), Expr::i64(t + 1)),
            Expr::i64(nt),
        ),
    );
    b.for_loop(i, Expr::var(lo), Expr::var(hi), |f| {
        let lv = f.load(active, Expr::var(i));
        f.assign(v, lv);
        let ld = f.load(delta, Expr::var(v));
        f.assign(dv, ld);
        let li = f.load(invdeg, Expr::var(v));
        f.assign(iv, li);
        f.assign(c, Expr::mul(Expr::var(dv), Expr::var(iv)));
        let ls = f.load(nodes, Expr::var(v));
        f.assign(s, ls);
        let le = f.load(nodes, Expr::add(Expr::var(v), Expr::i64(1)));
        f.assign(e, le);
        f.for_loop(j, Expr::var(s), Expr::var(e), |f| {
            let ln = f.load(edges, Expr::var(j));
            f.assign(ngh, ln);
            f.atomic_rmw(BinOp::Add, acc, Expr::var(ngh), Expr::var(c), None);
        });
    });
    b.build()
}

/// Data-parallel apply: vertex ranges, private active segments.
pub fn dp_apply(tid: usize, threads: usize, n: usize) -> Function {
    let mut b = FunctionBuilder::new(format!("prd-apply{tid}"));
    let active = b.array_i32("active");
    let _nodes = b.array_i32("nodes");
    let _edges = b.array_i32("edges");
    let delta = b.array_f64("delta");
    let _invdeg = b.array_f64("invdeg");
    let acc = b.array_f64("acc");
    let rank = b.array_f64("rank");
    let _flen = b.array_i32("fringe_len");
    let olen = b.array_i32("out_len");
    let v = b.var_i64("v");
    let a = b.var_f64("a");
    let nd = b.var_f64("nd");
    let r = b.var_f64("r");
    let mag = b.var_f64("mag");
    let len = b.var_i64("len");
    let t = tid as i64;
    let nt = threads as i64;
    let lo = (n as i64) * t / nt;
    let hi = (n as i64) * (t + 1) / nt;
    b.for_loop(v, Expr::i64(lo), Expr::i64(hi), |f| {
        let la = f.load(acc, Expr::var(v));
        f.assign(a, la);
        f.assign(nd, Expr::mul(Expr::var(a), Expr::f64(DAMPING)));
        f.store(acc, Expr::var(v), Expr::f64(0.0));
        f.assign(
            mag,
            Expr::bin(
                BinOp::Max,
                Expr::var(nd),
                Expr::un(UnOp::Neg, Expr::var(nd)),
            ),
        );
        f.if_then(Expr::bin(BinOp::Gt, Expr::var(mag), Expr::f64(EPS)), |f| {
            let lr = f.load(rank, Expr::var(v));
            f.assign(r, lr);
            f.store(rank, Expr::var(v), Expr::add(Expr::var(r), Expr::var(nd)));
            f.store(delta, Expr::var(v), Expr::var(nd));
            f.store(
                active,
                Expr::add(Expr::i64(lo), Expr::var(len)),
                Expr::var(v),
            );
            f.assign(len, Expr::add(Expr::var(len), Expr::i64(1)));
        });
    });
    b.store(olen, Expr::i64(t), Expr::var(len));
    b.build()
}

/// Hand-optimized scatter pipeline (single-core): fetch computes the
/// per-vertex contribution, chained RAs stream `nodes`/`edges` with a
/// per-vertex `NEXT`, and the accumulate stage applies it. (The *merged*
/// middle stage appears only in the replicated configuration, Fig. 14.)
pub fn manual_scatter() -> Pipeline {
    let arrays = vec![
        ArrayDecl::i32("active"),
        ArrayDecl::i32("nodes"),
        ArrayDecl::i32("edges"),
        ArrayDecl::f64("delta"),
        ArrayDecl::f64("invdeg"),
        ArrayDecl::f64("acc"),
        ArrayDecl::f64("rank"),
        ArrayDecl::i32("fringe_len"),
        ArrayDecl::i32("out_len"),
    ];
    let qv = QueueId(0);
    let qc = QueueId(1);
    let qse = QueueId(2);
    let qn = QueueId(3);
    let mut p = Pipeline::new("prd-manual");

    // Stage 0: fetch active vertex + contribution; feed the nodes RA.
    let mut s0 = FunctionBuilder::new("fetch");
    for a in &arrays {
        s0.array(a.clone());
    }
    let (active, delta, invdeg, flen) = (ArrayId(0), ArrayId(3), ArrayId(4), ArrayId(7));
    let nl = s0.var_i64("nl");
    let i = s0.var_i64("i");
    let v = s0.var_i64("v");
    let dv = s0.var_f64("dv");
    let iv = s0.var_f64("iv");
    let l = s0.load(flen, Expr::i64(0));
    s0.assign(nl, l);
    s0.for_loop(i, Expr::i64(0), Expr::var(nl), |f| {
        let lv = f.load(active, Expr::var(i));
        f.assign(v, lv);
        let ld = f.load(delta, Expr::var(v));
        f.assign(dv, ld);
        let li = f.load(invdeg, Expr::var(v));
        f.assign(iv, li);
        f.enq(qc, Expr::mul(Expr::var(dv), Expr::var(iv)));
        f.enq(qv, Expr::var(v));
        f.enq(qv, Expr::add(Expr::var(v), Expr::i64(1)));
    });
    s0.enq_ctrl(qv, DONE);
    s0.enq_ctrl(qc, DONE);
    p.add_stage(StageProgram::plain(s0.build()), 0);

    // Chained RAs over nodes and edges, with a per-vertex NEXT.
    p.add_ra(
        RaConfig {
            name: "nodes".into(),
            mode: RaMode::Indirect,
            base: ArrayId(1),
            in_queue: qv,
            out_queue: qse,
            forward_ctrl: true,
            scan_end_ctrl: None,
        },
        &arrays,
        0,
    );
    p.add_ra(
        RaConfig {
            name: "edges".into(),
            mode: RaMode::Scan,
            base: ArrayId(2),
            in_queue: qse,
            out_queue: qn,
            forward_ctrl: true,
            scan_end_ctrl: Some(NEXT),
        },
        &arrays,
        0,
    );

    // Stage 2: accumulate.
    let mut s2 = FunctionBuilder::new("accumulate");
    for a in &arrays {
        s2.array(a.clone());
    }
    let acc = ArrayId(5);
    let c2 = s2.var_f64("c");
    let ngh = s2.var_i64("ngh");
    let a2 = s2.var_f64("a");
    s2.while_true(|f| {
        f.deq(c2, qc);
        f.while_true(|f| {
            f.deq(ngh, qn);
            let la = f.load(acc, Expr::var(ngh));
            f.assign(a2, la);
            f.store(acc, Expr::var(ngh), Expr::add(Expr::var(a2), Expr::var(c2)));
        });
    });
    let h2 = vec![
        CtrlHandler {
            queue: qn,
            ctrl: Some(NEXT),
            bind: None,
            body: vec![],
            end: HandlerEnd::BreakLoops(1),
        },
        CtrlHandler {
            queue: qc,
            ctrl: Some(DONE),
            bind: None,
            body: vec![],
            end: HandlerEnd::BreakLoops(1),
        },
    ];
    p.add_stage(
        StageProgram {
            func: s2.build(),
            handlers: h2,
        },
        0,
    );
    p
}

fn phloem_opts(cfg: &MachineConfig, passes: phloem_compiler::PassConfig) -> CompileOptions {
    CompileOptions {
        passes,
        smt_threads: cfg.smt_threads,
        max_queues: cfg.max_queues,
        max_ras: cfg.ras_per_core,
        start_core: 0,
    }
}

/// Builds (scatter, apply) pipelines for a variant.
///
/// # Errors
/// Propagates Phloem compile errors.
pub fn pipelines_for(
    variant: &Variant,
    n: usize,
    cfg: &MachineConfig,
) -> Result<(Pipeline, Pipeline), phloem_compiler::CompileError> {
    let scatter = match variant {
        Variant::Serial => serial_pipeline(scatter_kernel()),
        Variant::DataParallel(t) => data_parallel_pipeline(
            (0..*t).map(|k| dp_scatter(k, *t)).collect(),
            cfg.smt_threads,
        ),
        Variant::Phloem {
            passes,
            stages,
            cuts,
        } => {
            let opts = phloem_opts(cfg, *passes);
            if cuts.is_empty() {
                compile_static(&scatter_kernel(), *stages, &opts)?
            } else {
                phloem_compiler::decouple_with_cuts(&scatter_kernel(), cuts, &opts)?
            }
        }
        Variant::Manual => manual_scatter(),
    };
    let apply = match variant {
        Variant::DataParallel(t) => data_parallel_pipeline(
            (0..*t).map(|k| dp_apply(k, *t, n)).collect(),
            cfg.smt_threads,
        ),
        Variant::Phloem { passes, .. } => {
            compile_static(&apply_kernel(), 2, &phloem_opts(cfg, *passes))?
        }
        // The apply phase is regular; serial and manual share it.
        _ => serial_pipeline(apply_kernel()),
    };
    Ok((scatter, apply))
}

/// Runs PRD for [`ITERATIONS`] iterations; returns final ranks too.
///
/// Runtime failures (watchdog traps, injected faults) surface as
/// `Err(Trap)`.
pub fn run_with_ranks(
    variant: &Variant,
    g: &Graph,
    cfg: &MachineConfig,
    input: &str,
) -> Result<(Measurement, Vec<f64>), Trap> {
    run_opt_traced(variant, g, cfg, input, None).0
}

/// Like [`run`], with a [`TraceSink`] observing every pipeline
/// invocation (both the scatter and apply phases); the sink is returned
/// even when the run traps.
pub fn run_traced(
    variant: &Variant,
    g: &Graph,
    cfg: &MachineConfig,
    input: &str,
    sink: Box<dyn TraceSink>,
) -> (Result<Measurement, Trap>, Box<dyn TraceSink>) {
    let (r, s) = run_opt_traced(variant, g, cfg, input, Some(sink));
    (r.map(|(m, _)| m), s.expect("sink was installed"))
}

#[allow(clippy::type_complexity)]
fn run_opt_traced(
    variant: &Variant,
    g: &Graph,
    cfg: &MachineConfig,
    input: &str,
    sink: Option<Box<dyn TraceSink>>,
) -> (
    Result<(Measurement, Vec<f64>), Trap>,
    Option<Box<dyn TraceSink>>,
) {
    let threads = match variant {
        Variant::DataParallel(t) => *t,
        _ => 1,
    };
    let n = g.num_vertices;
    let (scatter, apply) = pipelines_for(variant, n, cfg).expect("PRD pipelines");
    let (mem, arrays) = build_mem(g, threads);
    let mut session = Session::new(cfg.clone(), mem);
    if let Some(s) = sink {
        session.set_trace(s);
    }
    let driven = (|session: &mut Session| -> Result<(), Trap> {
        let mut len = n as i64;
        for _ in 0..ITERATIONS {
            if len == 0 {
                break;
            }
            session
                .mem_mut()
                .store(arrays.fringe_len, 0, Value::I64(len))
                .unwrap();
            session.run(&scatter, &[])?;
            session.run(&apply, &[("n", Value::I64(n as i64))])?;
            // Gather per-thread active segments into a dense prefix.
            let mut next = Vec::new();
            for t in 0..threads {
                let tlen = session
                    .mem()
                    .load(arrays.out_len, t as i64)
                    .unwrap()
                    .as_i64()
                    .unwrap();
                let lo = (n as i64) * t as i64 / threads as i64;
                for k in 0..tlen {
                    next.push(session.mem().load(arrays.active, lo + k).unwrap());
                }
            }
            len = next.len() as i64;
            for (k, v) in next.iter().enumerate() {
                session
                    .mem_mut()
                    .store(arrays.active, k as i64, *v)
                    .unwrap();
            }
        }
        Ok(())
    })(&mut session);
    let sink = session.take_trace();
    if let Err(e) = driven {
        return (Err(e), sink);
    }
    let (mem, stats) = session.finish();
    let ranks = mem.f64_vec(arrays.rank);
    (
        Ok((
            Measurement {
                variant: variant.label(),
                input: input.into(),
                cycles: stats.cycles,
                stats,
            },
            ranks,
        )),
        sink,
    )
}

/// Runs PRD and checks ranks against the serial reference (tolerance for
/// reordered float accumulation in the data-parallel variant).
///
/// Runtime failures surface as `Err(Trap)`; a rank divergence still
/// panics, as it means the variant miscompiled.
pub fn run(
    variant: &Variant,
    g: &Graph,
    cfg: &MachineConfig,
    input: &str,
) -> Result<Measurement, Trap> {
    let (m, ranks) = run_with_ranks(variant, g, cfg, input)?;
    let reference = oracle(g);
    for (i, (a, b)) in ranks.iter().zip(&reference).enumerate() {
        assert!(
            (a - b).abs() <= 1e-9 + 1e-6 * b.abs(),
            "{}: rank[{i}] = {a} vs {b}",
            variant.label()
        );
    }
    Ok(m)
}

/// Host oracle mirroring the serial schedule exactly.
pub fn oracle(g: &Graph) -> Vec<f64> {
    let n = g.num_vertices;
    let mut delta = vec![1.0 / n as f64; n];
    let mut acc = vec![0.0; n];
    let mut rank = vec![0.0; n];
    let mut active: Vec<usize> = (0..n).collect();
    for _ in 0..ITERATIONS {
        if active.is_empty() {
            break;
        }
        for &v in &active {
            let c = delta[v] * (1.0 / g.degree(v).max(1) as f64);
            for &w in g.neighbors(v) {
                acc[w as usize] += c;
            }
        }
        let mut next = Vec::new();
        for v in 0..n {
            let nd = acc[v] * DAMPING;
            acc[v] = 0.0;
            if nd.max(-nd) > EPS {
                rank[v] += nd;
                delta[v] = nd;
                next.push(v);
            }
        }
        active = next;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use phloem_workloads::graph;

    #[test]
    fn all_variants_agree() {
        let g = graph::power_law(250, 3, 8);
        let cfg = MachineConfig::paper_1core();
        for v in [
            Variant::Serial,
            Variant::DataParallel(4),
            Variant::phloem(),
            Variant::Manual,
        ] {
            let m = run(&v, &g, &cfg, "pl").expect("PRD run");
            assert!(m.cycles > 0, "{}", v.label());
        }
    }
}
