//! # phloem-benchsuite
//!
//! The Phloem (HPCA 2023) evaluation applications, each in the four
//! variants of Fig. 9: serial, data-parallel, Phloem-compiled, and
//! manually pipelined.

#![warn(missing_docs)]

pub mod bfs;
pub mod cc;
pub mod fault_targets;
pub mod fig14;
pub mod prd;
pub mod radii;
pub mod runner;
pub mod spmm;
pub mod taco;

pub use runner::{gmean, run_guarded, with_backend, Measurement, Variant};
