//! Connected Components via label propagation (derived from Ligra's CC,
//! as in the paper): every vertex starts with its own id as label; each
//! round propagates the minimum label across edges until no label
//! changes. The update stage both reads and writes `labels`, so Phloem's
//! race rule co-stages all label accesses (Fig. 4).
//!
//! The manual pipeline encodes the hand-tuner's application-specific
//! insight that label propagation tolerates *stale* reads (it is a
//! monotone fixpoint): the fetch stage forwards `labels[v]` through a
//! queue instead of the update stage re-loading it. Phloem cannot derive
//! this from serial semantics — which is why the paper's manual CC stays
//! ahead of Phloem's.

use crate::runner::{data_parallel_pipeline, serial_pipeline, Measurement, Variant};
use phloem_compiler::{compile_static, CompileOptions};
use phloem_ir::{
    ArrayDecl, ArrayId, BinOp, CtrlHandler, Expr, Function, FunctionBuilder, HandlerEnd, MemState,
    Pipeline, QueueId, RaConfig, RaMode, StageProgram, Trap, Value,
};
use phloem_workloads::Graph;
use pipette_sim::{CompiledPipeline, MachineConfig, Session, TraceSink};

const DONE: u32 = 0;
const NEXT: u32 = 1;

/// Array ids shared by all CC variants.
#[derive(Clone, Copy, Debug)]
pub struct CcArrays {
    /// Current fringe.
    pub fringe: ArrayId,
    /// CSR offsets.
    pub nodes: ArrayId,
    /// CSR edges.
    pub edges: ArrayId,
    /// Component labels.
    pub labels: ArrayId,
    /// Next fringe.
    pub next_fringe: ArrayId,
    /// Fringe length.
    pub fringe_len: ArrayId,
    /// Per-thread output lengths.
    pub out_len: ArrayId,
}

/// Per-thread next-fringe capacity: a vertex may be pushed once per
/// in-edge within one round.
pub fn segment(g: &Graph) -> usize {
    g.num_edges().max(g.num_vertices).max(4)
}

/// Allocates CC memory: every vertex starts in the fringe with label = id.
pub fn build_mem(g: &Graph, threads: usize) -> (MemState, CcArrays) {
    let n = g.num_vertices;
    let seg = segment(g);
    let mut mem = MemState::new();
    // The fringe itself can also grow up to `seg` entries in one round.
    let mut fringe0: Vec<i64> = (0..n as i64).collect();
    fringe0.resize(seg, 0);
    let fringe = mem.alloc_i64(ArrayDecl::i32("fringe"), fringe0);
    let nodes = mem.alloc_i64(ArrayDecl::i32("nodes"), g.offsets.iter().copied());
    let edges = mem.alloc_i64(ArrayDecl::i32("edges"), g.edges.iter().copied());
    let labels = mem.alloc_i64(ArrayDecl::i32("labels"), (0..n as i64).collect::<Vec<_>>());
    let next_fringe = mem.alloc(ArrayDecl::i32("next_fringe"), seg * threads.max(1));
    let fringe_len = mem.alloc_i64(ArrayDecl::i32("fringe_len"), [n as i64]);
    let out_len = mem.alloc(ArrayDecl::i32("out_len"), threads.max(1));
    (
        mem,
        CcArrays {
            fringe,
            nodes,
            edges,
            labels,
            next_fringe,
            fringe_len,
            out_len,
        },
    )
}

/// Serial one-round CC kernel.
pub fn kernel() -> Function {
    let mut b = FunctionBuilder::new("cc");
    let fringe = b.array_i32("fringe");
    let nodes = b.array_i32("nodes");
    let edges = b.array_i32("edges");
    let labels = b.array_i32("labels");
    let nf = b.array_i32("next_fringe");
    let flen = b.array_i32("fringe_len");
    let olen = b.array_i32("out_len");
    let nl = b.var_i64("nl");
    let i = b.var_i64("i");
    let v = b.var_i64("v");
    let lv = b.var_i64("lv");
    let s = b.var_i64("s");
    let e = b.var_i64("e");
    let j = b.var_i64("j");
    let ngh = b.var_i64("ngh");
    let ln = b.var_i64("ln");
    let len = b.var_i64("len");
    let l = b.load(flen, Expr::i64(0));
    b.assign(nl, l);
    b.for_loop(i, Expr::i64(0), Expr::var(nl), |f| {
        let lvv = f.load(fringe, Expr::var(i));
        f.assign(v, lvv);
        let ls = f.load(nodes, Expr::var(v));
        f.assign(s, ls);
        let le = f.load(nodes, Expr::add(Expr::var(v), Expr::i64(1)));
        f.assign(e, le);
        let llv = f.load(labels, Expr::var(v));
        f.assign(lv, llv);
        f.for_loop(j, Expr::var(s), Expr::var(e), |f| {
            let lngh = f.load(edges, Expr::var(j));
            f.assign(ngh, lngh);
            let lln = f.load(labels, Expr::var(ngh));
            f.assign(ln, lln);
            f.if_then(Expr::bin(BinOp::Gt, Expr::var(ln), Expr::var(lv)), |f| {
                f.store(labels, Expr::var(ngh), Expr::var(lv));
                f.store(nf, Expr::var(len), Expr::var(ngh));
                f.assign(len, Expr::add(Expr::var(len), Expr::i64(1)));
            });
        });
    });
    b.store(olen, Expr::i64(0), Expr::var(len));
    b.build()
}

/// Data-parallel per-thread kernel: atomic-min on labels.
pub fn dp_kernel(tid: usize, threads: usize, segment: usize) -> Function {
    let mut b = FunctionBuilder::new(format!("cc-dp{tid}"));
    let fringe = b.array_i32("fringe");
    let nodes = b.array_i32("nodes");
    let edges = b.array_i32("edges");
    let labels = b.array_i32("labels");
    let nf = b.array_i32("next_fringe");
    let flen = b.array_i32("fringe_len");
    let olen = b.array_i32("out_len");
    let nl = b.var_i64("nl");
    let lo = b.var_i64("lo");
    let hi = b.var_i64("hi");
    let i = b.var_i64("i");
    let v = b.var_i64("v");
    let lv = b.var_i64("lv");
    let s = b.var_i64("s");
    let e = b.var_i64("e");
    let j = b.var_i64("j");
    let ngh = b.var_i64("ngh");
    let old = b.var_i64("old");
    let len = b.var_i64("len");
    let l = b.load(flen, Expr::i64(0));
    b.assign(nl, l);
    let t = tid as i64;
    let nt = threads as i64;
    b.assign(
        lo,
        Expr::bin(
            BinOp::Div,
            Expr::mul(Expr::var(nl), Expr::i64(t)),
            Expr::i64(nt),
        ),
    );
    b.assign(
        hi,
        Expr::bin(
            BinOp::Div,
            Expr::mul(Expr::var(nl), Expr::i64(t + 1)),
            Expr::i64(nt),
        ),
    );
    b.for_loop(i, Expr::var(lo), Expr::var(hi), |f| {
        let lvv = f.load(fringe, Expr::var(i));
        f.assign(v, lvv);
        let llv = f.load(labels, Expr::var(v));
        f.assign(lv, llv);
        let ls = f.load(nodes, Expr::var(v));
        f.assign(s, ls);
        let le = f.load(nodes, Expr::add(Expr::var(v), Expr::i64(1)));
        f.assign(e, le);
        f.for_loop(j, Expr::var(s), Expr::var(e), |f| {
            let lngh = f.load(edges, Expr::var(j));
            f.assign(ngh, lngh);
            f.atomic_rmw(BinOp::Min, labels, Expr::var(ngh), Expr::var(lv), Some(old));
            f.if_then(Expr::bin(BinOp::Gt, Expr::var(old), Expr::var(lv)), |f| {
                f.store(
                    nf,
                    Expr::add(Expr::i64(t * segment as i64), Expr::var(len)),
                    Expr::var(ngh),
                );
                f.assign(len, Expr::add(Expr::var(len), Expr::i64(1)));
            });
        });
    });
    b.store(olen, Expr::i64(t), Expr::var(len));
    b.build()
}

/// Hand-optimized pipeline: stale `labels[v]` forwarded from the fetch
/// stage (see module docs).
pub fn manual_pipeline() -> Pipeline {
    let arrays = vec![
        ArrayDecl::i32("fringe"),
        ArrayDecl::i32("nodes"),
        ArrayDecl::i32("edges"),
        ArrayDecl::i32("labels"),
        ArrayDecl::i32("next_fringe"),
        ArrayDecl::i32("fringe_len"),
        ArrayDecl::i32("out_len"),
    ];
    let qv = QueueId(0);
    let qse = QueueId(1);
    let qn = QueueId(2);
    let qlv = QueueId(3);
    let mut p = Pipeline::new("cc-manual");

    let mut s0 = FunctionBuilder::new("fetch");
    for a in &arrays {
        s0.array(a.clone());
    }
    let (fringe, labels, flen) = (ArrayId(0), ArrayId(3), ArrayId(5));
    let nl = s0.var_i64("nl");
    let i = s0.var_i64("i");
    let v = s0.var_i64("v");
    let lv = s0.var_i64("lv");
    let l = s0.load(flen, Expr::i64(0));
    s0.assign(nl, l);
    s0.for_loop(i, Expr::i64(0), Expr::var(nl), |f| {
        let lvv = f.load(fringe, Expr::var(i));
        f.assign(v, lvv);
        // Stale label read — safe for a monotone fixpoint.
        let llv = f.load(labels, Expr::var(v));
        f.assign(lv, llv);
        f.enq(qlv, Expr::var(lv));
        f.enq(qv, Expr::var(v));
        f.enq(qv, Expr::add(Expr::var(v), Expr::i64(1)));
    });
    s0.enq_ctrl(qv, DONE);
    s0.enq_ctrl(qlv, DONE);
    p.add_stage(StageProgram::plain(s0.build()), 0);

    p.add_ra(
        RaConfig {
            name: "nodes".into(),
            mode: RaMode::Indirect,
            base: ArrayId(1),
            in_queue: qv,
            out_queue: qse,
            forward_ctrl: true,
            scan_end_ctrl: None,
        },
        &arrays,
        0,
    );
    p.add_ra(
        RaConfig {
            name: "edges".into(),
            mode: RaMode::Scan,
            base: ArrayId(2),
            in_queue: qse,
            out_queue: qn,
            forward_ctrl: true,
            scan_end_ctrl: Some(NEXT),
        },
        &arrays,
        0,
    );

    let mut s3 = FunctionBuilder::new("update");
    for a in &arrays {
        s3.array(a.clone());
    }
    let (labels3, nf, olen) = (ArrayId(3), ArrayId(4), ArrayId(6));
    let lv3 = s3.var_i64("lv");
    let ngh = s3.var_i64("ngh");
    let ln = s3.var_i64("ln");
    let len = s3.var_i64("len");
    s3.while_true(|f| {
        f.deq(lv3, qlv);
        f.while_true(|f| {
            f.deq(ngh, qn);
            let lln = f.load(labels3, Expr::var(ngh));
            f.assign(ln, lln);
            f.if_then(Expr::bin(BinOp::Gt, Expr::var(ln), Expr::var(lv3)), |f| {
                f.store(labels3, Expr::var(ngh), Expr::var(lv3));
                f.store(nf, Expr::var(len), Expr::var(ngh));
                f.assign(len, Expr::add(Expr::var(len), Expr::i64(1)));
            });
        });
    });
    s3.store(olen, Expr::i64(0), Expr::var(len));
    let handlers = vec![
        CtrlHandler {
            queue: qn,
            ctrl: Some(NEXT),
            bind: None,
            body: vec![],
            end: HandlerEnd::BreakLoops(1),
        },
        CtrlHandler {
            queue: qlv,
            ctrl: Some(DONE),
            bind: None,
            body: vec![],
            end: HandlerEnd::BreakLoops(1),
        },
    ];
    p.add_stage(
        StageProgram {
            func: s3.build(),
            handlers,
        },
        0,
    );
    p
}

/// Host oracle: per-component minimum vertex id.
pub fn oracle(g: &Graph) -> Vec<i64> {
    let n = g.num_vertices;
    let mut labels: Vec<i64> = vec![-1; n];
    for start in 0..n {
        if labels[start] != -1 {
            continue;
        }
        let mut stack = vec![start];
        labels[start] = start as i64;
        while let Some(u) = stack.pop() {
            for &w in g.neighbors(u) {
                if labels[w as usize] == -1 {
                    labels[w as usize] = start as i64;
                    stack.push(w as usize);
                }
            }
        }
    }
    labels
}

/// Builds the pipeline for a variant.
///
/// # Errors
/// Propagates Phloem compile errors.
pub fn pipeline_for(
    variant: &Variant,
    seg: usize,
    cfg: &MachineConfig,
) -> Result<Pipeline, phloem_compiler::CompileError> {
    match variant {
        Variant::Serial => Ok(serial_pipeline(kernel())),
        Variant::DataParallel(t) => {
            let funcs = (0..*t).map(|k| dp_kernel(k, *t, seg)).collect();
            Ok(data_parallel_pipeline(funcs, cfg.smt_threads))
        }
        Variant::Phloem {
            passes,
            stages,
            cuts,
        } => {
            let opts = CompileOptions {
                passes: *passes,
                smt_threads: cfg.smt_threads,
                max_queues: cfg.max_queues,
                max_ras: cfg.ras_per_core,
                start_core: 0,
            };
            if cuts.is_empty() {
                compile_static(&kernel(), *stages, &opts)
            } else {
                phloem_compiler::decouple_with_cuts(&kernel(), cuts, &opts)
            }
        }
        Variant::Manual => Ok(manual_pipeline()),
    }
}

/// Runs CC to convergence and verifies labels against the oracle.
///
/// Runtime failures (watchdog traps, injected faults, convergence
/// stalls) surface as `Err(Trap)`; a label mismatch still panics, as it
/// means the variant miscompiled.
pub fn run(
    variant: &Variant,
    g: &Graph,
    cfg: &MachineConfig,
    input: &str,
) -> Result<Measurement, Trap> {
    run_opt_traced(variant, g, cfg, input, None).0
}

/// Like [`run`], with a [`TraceSink`] observing every pipeline
/// invocation; the sink is returned even when the run traps.
pub fn run_traced(
    variant: &Variant,
    g: &Graph,
    cfg: &MachineConfig,
    input: &str,
    sink: Box<dyn TraceSink>,
) -> (Result<Measurement, Trap>, Box<dyn TraceSink>) {
    let (r, s) = run_opt_traced(variant, g, cfg, input, Some(sink));
    (r, s.expect("sink was installed"))
}

fn run_opt_traced(
    variant: &Variant,
    g: &Graph,
    cfg: &MachineConfig,
    input: &str,
    sink: Option<Box<dyn TraceSink>>,
) -> (Result<Measurement, Trap>, Option<Box<dyn TraceSink>>) {
    let threads = match variant {
        Variant::DataParallel(t) => *t,
        _ => 1,
    };
    let pipeline = pipeline_for(variant, segment(g), cfg).expect("CC pipeline");
    let (mem, arrays) = build_mem(g, threads);
    let mut session = Session::new(cfg.clone(), mem);
    if let Some(s) = sink {
        session.set_trace(s);
    }
    let driven = (|session: &mut Session| -> Result<(), Trap> {
        let compiled = CompiledPipeline::new(&pipeline)?;
        let mut len = g.num_vertices as i64;
        let mut rounds = 0;
        while len > 0 {
            session
                .mem_mut()
                .store(arrays.fringe_len, 0, Value::I64(len))
                .unwrap();
            session.run_compiled(&pipeline, &compiled, &[])?;
            let seg = segment(g);
            let mut next = Vec::new();
            for t in 0..threads {
                let tlen = session
                    .mem()
                    .load(arrays.out_len, t as i64)
                    .unwrap()
                    .as_i64()
                    .unwrap();
                for k in 0..tlen {
                    next.push(
                        session
                            .mem()
                            .load(arrays.next_fringe, (t * seg) as i64 + k)
                            .unwrap(),
                    );
                }
            }
            len = next.len() as i64;
            for (k, v) in next.iter().enumerate() {
                session
                    .mem_mut()
                    .store(arrays.fringe, k as i64, *v)
                    .unwrap();
            }
            rounds += 1;
            if rounds >= 1_000_000 {
                return Err(Trap::Livelock {
                    cycle: session.elapsed(),
                    detail: format!(
                        "CC {} did not converge after {rounds} rounds",
                        variant.label()
                    ),
                });
            }
        }
        Ok(())
    })(&mut session);
    let sink = session.take_trace();
    if let Err(e) = driven {
        return (Err(e), sink);
    }
    let (mem, stats) = session.finish();
    assert_eq!(
        mem.i64_vec(arrays.labels),
        oracle(g),
        "CC labels wrong for {}",
        variant.label()
    );
    (
        Ok(Measurement {
            variant: variant.label(),
            input: input.into(),
            cycles: stats.cycles,
            stats,
        }),
        sink,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use phloem_workloads::graph;

    #[test]
    fn all_variants_agree() {
        let g = graph::collaboration(60, 5);
        let cfg = MachineConfig::paper_1core();
        for v in [
            Variant::Serial,
            Variant::DataParallel(4),
            Variant::phloem(),
            Variant::Manual,
        ] {
            let m = run(&v, &g, &cfg, "collab").expect("CC run");
            assert!(m.cycles > 0, "{}", v.label());
        }
    }

    #[test]
    fn phloem_pipeline_has_expected_shape() {
        let cfg = MachineConfig::paper_1core();
        let p = pipeline_for(&Variant::phloem(), 100, &cfg).unwrap();
        // fetch -> chained RAs -> update (labels co-staged by Fig. 4 rule).
        assert_eq!(
            p.total_stages(),
            4,
            "{}",
            phloem_ir::pretty::pipeline_to_string(&p)
        );
        assert_eq!(
            p.ra_stages(),
            2,
            "{}",
            phloem_ir::pretty::pipeline_to_string(&p)
        );
    }
}
