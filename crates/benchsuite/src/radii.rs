//! Radii estimation (from Ligra): simultaneous BFS from K sampled
//! sources using per-vertex visitation bitmasks; a vertex's radius
//! estimate is the last round in which its mask changed. As in Ligra,
//! the masks are double-buffered (`visited` is read-only within a round,
//! `nvisited` is updated), which makes the fixpoint order-independent;
//! a per-round `radii[ngh] != round` test dedups fringe pushes. The
//! update stage reads and writes `nvisited`/`radii`, so those accesses
//! co-stage (Fig. 4), while `visited[v]` is prefetchable upstream.

use crate::runner::{data_parallel_pipeline, serial_pipeline, Measurement, Variant};
use phloem_compiler::{compile_static, CompileOptions};
use phloem_ir::{
    ArrayDecl, ArrayId, BinOp, CtrlHandler, Expr, Function, FunctionBuilder, HandlerEnd, MemState,
    Pipeline, QueueId, RaConfig, RaMode, StageProgram, Trap, Value,
};
use phloem_workloads::Graph;
use pipette_sim::{CompiledPipeline, MachineConfig, Session, TraceSink};

const DONE: u32 = 0;
const NEXT: u32 = 1;

/// Number of simultaneously-sampled BFS sources (bits in the mask).
pub const SOURCES: usize = 32;

/// Array ids shared by all Radii variants.
#[derive(Clone, Copy, Debug)]
pub struct RadiiArrays {
    /// Current fringe.
    pub fringe: ArrayId,
    /// CSR offsets.
    pub nodes: ArrayId,
    /// CSR edges.
    pub edges: ArrayId,
    /// Visitation bitmasks (previous round; read-only in the kernel).
    pub visited: ArrayId,
    /// Visitation bitmasks being built this round.
    pub nvisited: ArrayId,
    /// Radius estimates.
    pub radii: ArrayId,
    /// Next fringe.
    pub next_fringe: ArrayId,
    /// Fringe length.
    pub fringe_len: ArrayId,
    /// Per-thread output lengths.
    pub out_len: ArrayId,
}

/// Per-thread next-fringe capacity.
pub fn segment(g: &Graph) -> usize {
    g.num_edges().max(g.num_vertices).max(4)
}

/// Picks `SOURCES` deterministic sample sources.
pub fn sources(g: &Graph) -> Vec<usize> {
    let n = g.num_vertices;
    (0..SOURCES.min(n)).map(|k| (k * 2654435761) % n).collect()
}

/// Allocates Radii memory.
pub fn build_mem(g: &Graph, threads: usize) -> (MemState, RadiiArrays) {
    let n = g.num_vertices;
    let seg = segment(g);
    let srcs = sources(g);
    let mut mem = MemState::new();
    let mut fringe0: Vec<i64> = srcs.iter().map(|&s| s as i64).collect();
    fringe0.resize(seg, 0);
    let fringe = mem.alloc_i64(ArrayDecl::i32("fringe"), fringe0);
    let nodes = mem.alloc_i64(ArrayDecl::i32("nodes"), g.offsets.iter().copied());
    let edges = mem.alloc_i64(ArrayDecl::i32("edges"), g.edges.iter().copied());
    let mut visited0 = vec![0i64; n];
    for (k, &s) in srcs.iter().enumerate() {
        visited0[s] |= 1 << k;
    }
    let visited = mem.alloc_i64(ArrayDecl::i64("visited"), visited0.clone());
    let nvisited = mem.alloc_i64(ArrayDecl::i64("nvisited"), visited0);
    let radii = mem.alloc(ArrayDecl::i32("radii"), n);
    let next_fringe = mem.alloc(ArrayDecl::i32("next_fringe"), seg * threads.max(1));
    let fringe_len = mem.alloc_i64(ArrayDecl::i32("fringe_len"), [srcs.len() as i64]);
    let out_len = mem.alloc(ArrayDecl::i32("out_len"), threads.max(1));
    (
        mem,
        RadiiArrays {
            fringe,
            nodes,
            edges,
            visited,
            nvisited,
            radii,
            next_fringe,
            fringe_len,
            out_len,
        },
    )
}

/// Serial one-round Radii kernel.
pub fn kernel() -> Function {
    let mut b = FunctionBuilder::new("radii");
    let round = b.param_i64("round");
    let fringe = b.array_i32("fringe");
    let nodes = b.array_i32("nodes");
    let edges = b.array_i32("edges");
    let visited = b.array_i64("visited");
    let nvisited = b.array_i64("nvisited");
    let radii = b.array_i32("radii");
    let nf = b.array_i32("next_fringe");
    let flen = b.array_i32("fringe_len");
    let olen = b.array_i32("out_len");
    let nl = b.var_i64("nl");
    let i = b.var_i64("i");
    let v = b.var_i64("v");
    let mv = b.var_i64("mv");
    let s = b.var_i64("s");
    let e = b.var_i64("e");
    let j = b.var_i64("j");
    let ngh = b.var_i64("ngh");
    let mn = b.var_i64("mn");
    let un = b.var_i64("un");
    let rr = b.var_i64("rr");
    let len = b.var_i64("len");
    let l = b.load(flen, Expr::i64(0));
    b.assign(nl, l);
    b.for_loop(i, Expr::i64(0), Expr::var(nl), |f| {
        let lvv = f.load(fringe, Expr::var(i));
        f.assign(v, lvv);
        let ls = f.load(nodes, Expr::var(v));
        f.assign(s, ls);
        let le = f.load(nodes, Expr::add(Expr::var(v), Expr::i64(1)));
        f.assign(e, le);
        let lmv = f.load(visited, Expr::var(v));
        f.assign(mv, lmv);
        f.for_loop(j, Expr::var(s), Expr::var(e), |f| {
            let lngh = f.load(edges, Expr::var(j));
            f.assign(ngh, lngh);
            let lmn = f.load(nvisited, Expr::var(ngh));
            f.assign(mn, lmn);
            f.assign(un, Expr::bin(BinOp::Or, Expr::var(mn), Expr::var(mv)));
            f.if_then(Expr::ne(Expr::var(un), Expr::var(mn)), |f| {
                f.store(nvisited, Expr::var(ngh), Expr::var(un));
                let lr = f.load(radii, Expr::var(ngh));
                f.assign(rr, lr);
                f.if_then(Expr::ne(Expr::var(rr), Expr::var(round)), |f| {
                    f.store(radii, Expr::var(ngh), Expr::var(round));
                    f.store(nf, Expr::var(len), Expr::var(ngh));
                    f.assign(len, Expr::add(Expr::var(len), Expr::i64(1)));
                });
            });
        });
    });
    b.store(olen, Expr::i64(0), Expr::var(len));
    b.build()
}

/// Data-parallel kernel: atomic-or on visited masks.
pub fn dp_kernel(tid: usize, threads: usize, segment: usize) -> Function {
    let mut b = FunctionBuilder::new(format!("radii-dp{tid}"));
    let round = b.param_i64("round");
    let fringe = b.array_i32("fringe");
    let nodes = b.array_i32("nodes");
    let edges = b.array_i32("edges");
    let visited = b.array_i64("visited");
    let nvisited = b.array_i64("nvisited");
    let radii = b.array_i32("radii");
    let nf = b.array_i32("next_fringe");
    let flen = b.array_i32("fringe_len");
    let olen = b.array_i32("out_len");
    let nl = b.var_i64("nl");
    let lo = b.var_i64("lo");
    let hi = b.var_i64("hi");
    let i = b.var_i64("i");
    let v = b.var_i64("v");
    let mv = b.var_i64("mv");
    let s = b.var_i64("s");
    let e = b.var_i64("e");
    let j = b.var_i64("j");
    let ngh = b.var_i64("ngh");
    let old = b.var_i64("old");
    let len = b.var_i64("len");
    let l = b.load(flen, Expr::i64(0));
    b.assign(nl, l);
    let t = tid as i64;
    let nt = threads as i64;
    b.assign(
        lo,
        Expr::bin(
            BinOp::Div,
            Expr::mul(Expr::var(nl), Expr::i64(t)),
            Expr::i64(nt),
        ),
    );
    b.assign(
        hi,
        Expr::bin(
            BinOp::Div,
            Expr::mul(Expr::var(nl), Expr::i64(t + 1)),
            Expr::i64(nt),
        ),
    );
    b.for_loop(i, Expr::var(lo), Expr::var(hi), |f| {
        let lvv = f.load(fringe, Expr::var(i));
        f.assign(v, lvv);
        let lmv = f.load(visited, Expr::var(v));
        f.assign(mv, lmv);
        let ls = f.load(nodes, Expr::var(v));
        f.assign(s, ls);
        let le = f.load(nodes, Expr::add(Expr::var(v), Expr::i64(1)));
        f.assign(e, le);
        f.for_loop(j, Expr::var(s), Expr::var(e), |f| {
            let lngh = f.load(edges, Expr::var(j));
            f.assign(ngh, lngh);
            f.atomic_rmw(
                BinOp::Or,
                nvisited,
                Expr::var(ngh),
                Expr::var(mv),
                Some(old),
            );
            f.if_then(
                Expr::ne(
                    Expr::bin(BinOp::Or, Expr::var(old), Expr::var(mv)),
                    Expr::var(old),
                ),
                |f| {
                    f.store(radii, Expr::var(ngh), Expr::var(round));
                    f.store(
                        nf,
                        Expr::add(Expr::i64(t * segment as i64), Expr::var(len)),
                        Expr::var(ngh),
                    );
                    f.assign(len, Expr::add(Expr::var(len), Expr::i64(1)));
                },
            );
        });
    });
    b.store(olen, Expr::i64(t), Expr::var(len));
    b.build()
}

/// Hand-optimized pipeline (stale `visited[v]` forwarded from fetch).
pub fn manual_pipeline() -> Pipeline {
    let arrays = vec![
        ArrayDecl::i32("fringe"),
        ArrayDecl::i32("nodes"),
        ArrayDecl::i32("edges"),
        ArrayDecl::i64("visited"),
        ArrayDecl::i64("nvisited"),
        ArrayDecl::i32("radii"),
        ArrayDecl::i32("next_fringe"),
        ArrayDecl::i32("fringe_len"),
        ArrayDecl::i32("out_len"),
    ];
    let qv = QueueId(0);
    let qse = QueueId(1);
    let qn = QueueId(2);
    let qmv = QueueId(3);
    let mut p = Pipeline::new("radii-manual");

    let mut s0 = FunctionBuilder::new("fetch");
    for a in &arrays {
        s0.array(a.clone());
    }
    let (fringe, visited, flen) = (ArrayId(0), ArrayId(3), ArrayId(7));
    let nl = s0.var_i64("nl");
    let i = s0.var_i64("i");
    let v = s0.var_i64("v");
    let mv = s0.var_i64("mv");
    let l = s0.load(flen, Expr::i64(0));
    s0.assign(nl, l);
    s0.for_loop(i, Expr::i64(0), Expr::var(nl), |f| {
        let lvv = f.load(fringe, Expr::var(i));
        f.assign(v, lvv);
        let lmv = f.load(visited, Expr::var(v));
        f.assign(mv, lmv);
        f.enq(qmv, Expr::var(mv));
        f.enq(qv, Expr::var(v));
        f.enq(qv, Expr::add(Expr::var(v), Expr::i64(1)));
    });
    s0.enq_ctrl(qv, DONE);
    s0.enq_ctrl(qmv, DONE);
    p.add_stage(StageProgram::plain(s0.build()), 0);

    p.add_ra(
        RaConfig {
            name: "nodes".into(),
            mode: RaMode::Indirect,
            base: ArrayId(1),
            in_queue: qv,
            out_queue: qse,
            forward_ctrl: true,
            scan_end_ctrl: None,
        },
        &arrays,
        0,
    );
    p.add_ra(
        RaConfig {
            name: "edges".into(),
            mode: RaMode::Scan,
            base: ArrayId(2),
            in_queue: qse,
            out_queue: qn,
            forward_ctrl: true,
            scan_end_ctrl: Some(NEXT),
        },
        &arrays,
        0,
    );

    let mut s3 = FunctionBuilder::new("update");
    let round = s3.param_i64("round");
    for a in &arrays {
        s3.array(a.clone());
    }
    let (nvisited3, radii, nf, olen) = (ArrayId(4), ArrayId(5), ArrayId(6), ArrayId(8));
    let mv3 = s3.var_i64("mv");
    let ngh = s3.var_i64("ngh");
    let mn = s3.var_i64("mn");
    let un = s3.var_i64("un");
    let rr = s3.var_i64("rr");
    let len = s3.var_i64("len");
    s3.while_true(|f| {
        f.deq(mv3, qmv);
        f.while_true(|f| {
            f.deq(ngh, qn);
            let lmn = f.load(nvisited3, Expr::var(ngh));
            f.assign(mn, lmn);
            f.assign(un, Expr::bin(BinOp::Or, Expr::var(mn), Expr::var(mv3)));
            f.if_then(Expr::ne(Expr::var(un), Expr::var(mn)), |f| {
                f.store(nvisited3, Expr::var(ngh), Expr::var(un));
                let lr = f.load(radii, Expr::var(ngh));
                f.assign(rr, lr);
                f.if_then(Expr::ne(Expr::var(rr), Expr::var(round)), |f| {
                    f.store(radii, Expr::var(ngh), Expr::var(round));
                    f.store(nf, Expr::var(len), Expr::var(ngh));
                    f.assign(len, Expr::add(Expr::var(len), Expr::i64(1)));
                });
            });
        });
    });
    s3.store(olen, Expr::i64(0), Expr::var(len));
    let handlers = vec![
        CtrlHandler {
            queue: qn,
            ctrl: Some(NEXT),
            bind: None,
            body: vec![],
            end: HandlerEnd::BreakLoops(1),
        },
        CtrlHandler {
            queue: qmv,
            ctrl: Some(DONE),
            bind: None,
            body: vec![],
            end: HandlerEnd::BreakLoops(1),
        },
    ];
    p.add_stage(
        StageProgram {
            func: s3.build(),
            handlers,
        },
        0,
    );
    p
}

/// Host oracle: radii by K simultaneous BFS (same mask algorithm).
pub fn oracle(g: &Graph) -> Vec<i64> {
    let n = g.num_vertices;
    let srcs = sources(g);
    let mut visited = vec![0u64; n];
    let mut radii = vec![0i64; n];
    let mut fringe: Vec<usize> = srcs.clone();
    for (k, &s) in srcs.iter().enumerate() {
        visited[s] |= 1 << k;
    }
    let mut nvisited = visited.clone();
    let mut round = 0;
    while !fringe.is_empty() {
        round += 1;
        let mut next = Vec::new();
        for &v in &fringe {
            let mv = visited[v];
            for &w in g.neighbors(v) {
                let w = w as usize;
                let un = nvisited[w] | mv;
                if un != nvisited[w] {
                    nvisited[w] = un;
                    if radii[w] != round {
                        radii[w] = round;
                        next.push(w);
                    }
                }
            }
        }
        visited.copy_from_slice(&nvisited);
        fringe = next;
    }
    radii
}

/// Builds the pipeline for a variant.
///
/// # Errors
/// Propagates Phloem compile errors.
pub fn pipeline_for(
    variant: &Variant,
    seg: usize,
    cfg: &MachineConfig,
) -> Result<Pipeline, phloem_compiler::CompileError> {
    match variant {
        Variant::Serial => Ok(serial_pipeline(kernel())),
        Variant::DataParallel(t) => {
            let funcs = (0..*t).map(|k| dp_kernel(k, *t, seg)).collect();
            Ok(data_parallel_pipeline(funcs, cfg.smt_threads))
        }
        Variant::Phloem {
            passes,
            stages,
            cuts,
        } => {
            let opts = CompileOptions {
                passes: *passes,
                smt_threads: cfg.smt_threads,
                max_queues: cfg.max_queues,
                max_ras: cfg.ras_per_core,
                start_core: 0,
            };
            if cuts.is_empty() {
                compile_static(&kernel(), *stages, &opts)
            } else {
                phloem_compiler::decouple_with_cuts(&kernel(), cuts, &opts)
            }
        }
        Variant::Manual => Ok(manual_pipeline()),
    }
}

/// Runs Radii to convergence; verifies against the oracle.
///
/// The serial oracle and the pipelined/data-parallel versions may push
/// duplicates in different orders, but the final `radii` array is the
/// same fixpoint, so we compare it directly.
///
/// Runtime failures (watchdog traps, injected faults, convergence
/// stalls) surface as `Err(Trap)`; a radii mismatch still panics, as it
/// means the variant miscompiled.
pub fn run(
    variant: &Variant,
    g: &Graph,
    cfg: &MachineConfig,
    input: &str,
) -> Result<Measurement, Trap> {
    run_opt_traced(variant, g, cfg, input, None).0
}

/// Like [`run`], with a [`TraceSink`] observing every pipeline
/// invocation; the sink is returned even when the run traps.
pub fn run_traced(
    variant: &Variant,
    g: &Graph,
    cfg: &MachineConfig,
    input: &str,
    sink: Box<dyn TraceSink>,
) -> (Result<Measurement, Trap>, Box<dyn TraceSink>) {
    let (r, s) = run_opt_traced(variant, g, cfg, input, Some(sink));
    (r, s.expect("sink was installed"))
}

fn run_opt_traced(
    variant: &Variant,
    g: &Graph,
    cfg: &MachineConfig,
    input: &str,
    sink: Option<Box<dyn TraceSink>>,
) -> (Result<Measurement, Trap>, Option<Box<dyn TraceSink>>) {
    let threads = match variant {
        Variant::DataParallel(t) => *t,
        _ => 1,
    };
    let pipeline = pipeline_for(variant, segment(g), cfg).expect("radii pipeline");
    let (mem, arrays) = build_mem(g, threads);
    let mut session = Session::new(cfg.clone(), mem);
    if let Some(s) = sink {
        session.set_trace(s);
    }
    let driven = (|session: &mut Session| -> Result<(), Trap> {
        let compiled = CompiledPipeline::new(&pipeline)?;
        let mut len = sources(g).len() as i64;
        let mut round = 1i64;
        while len > 0 {
            session
                .mem_mut()
                .store(arrays.fringe_len, 0, Value::I64(len))
                .unwrap();
            session.run_compiled(&pipeline, &compiled, &[("round", Value::I64(round))])?;
            let seg = segment(g);
            let mut next = Vec::new();
            for t in 0..threads {
                let tlen = session
                    .mem()
                    .load(arrays.out_len, t as i64)
                    .unwrap()
                    .as_i64()
                    .unwrap();
                for k in 0..tlen {
                    next.push(
                        session
                            .mem()
                            .load(arrays.next_fringe, (t * seg) as i64 + k)
                            .unwrap(),
                    );
                }
            }
            len = next.len() as i64;
            for (k, v) in next.iter().enumerate() {
                session
                    .mem_mut()
                    .store(arrays.fringe, k as i64, *v)
                    .unwrap();
            }
            // Double-buffer swap: visited <- nvisited (host work, free).
            let nv = session.mem().values(arrays.nvisited).to_vec();
            session.mem_mut().set_values(arrays.visited, nv);
            round += 1;
            if round >= 1_000_000 {
                return Err(Trap::Livelock {
                    cycle: session.elapsed(),
                    detail: format!(
                        "radii {} did not converge after {round} rounds",
                        variant.label()
                    ),
                });
            }
        }
        Ok(())
    })(&mut session);
    let sink = session.take_trace();
    if let Err(e) = driven {
        return (Err(e), sink);
    }
    let (mem, stats) = session.finish();
    assert_eq!(
        mem.i64_vec(arrays.radii),
        oracle(g),
        "radii wrong for {}",
        variant.label()
    );
    (
        Ok(Measurement {
            variant: variant.label(),
            input: input.into(),
            cycles: stats.cycles,
            stats,
        }),
        sink,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use phloem_workloads::graph;

    #[test]
    fn all_variants_agree() {
        let g = graph::mesh(12, 5);
        let cfg = MachineConfig::paper_1core();
        for v in [
            Variant::Serial,
            Variant::DataParallel(4),
            Variant::phloem(),
            Variant::Manual,
        ] {
            let m = run(&v, &g, &cfg, "mesh").expect("radii run");
            assert!(m.cycles > 0, "{}", v.label());
        }
    }
}
