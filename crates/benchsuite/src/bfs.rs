//! Breadth-First Search (Sec. II): the paper's running example.
//!
//! The kernel processes one fringe round; the host swaps fringes between
//! rounds (the paper's Phloem likewise synchronizes stages between
//! program phases). Variants:
//!
//! * **serial** — the Fig. 2 (left) loop nest;
//! * **data-parallel** — work-efficient PBFS-style: the fringe is
//!   partitioned across threads, distance updates use atomic-min, and
//!   each thread appends to a private next-fringe segment;
//! * **phloem** — compiled from the serial kernel;
//! * **manual** — the hand-optimized Pipette pipeline [34]: fetch fringe
//!   (enqueuing `v` and `v+1`), chained INDIRECT/SCAN RAs over
//!   `nodes`/`edges`, and an update stage. The hand version keeps a
//!   per-vertex `NEXT` control value that Phloem's inter-stage DCE
//!   removes — which is how Phloem ends up slightly ahead (Fig. 9).

use crate::runner::{data_parallel_pipeline, serial_pipeline, Measurement, Variant};
use phloem_compiler::{compile_static, decouple_with_cuts, CompileOptions};
use phloem_ir::{
    ArrayDecl, ArrayId, BinOp, CtrlHandler, Expr, Function, FunctionBuilder, HandlerEnd, MemState,
    Pipeline, QueueId, RaConfig, RaMode, StageProgram, Trap, Value,
};
use phloem_workloads::Graph;
use pipette_sim::{CompiledPipeline, MachineConfig, Session, TraceSink};

const DONE: u32 = 0;
const NEXT: u32 = 1;
const INF: i64 = i64::MAX;

/// Array order shared by all BFS variants (ids must match the kernel).
#[derive(Clone, Copy, Debug)]
pub struct BfsArrays {
    /// Current fringe.
    pub fringe: ArrayId,
    /// CSR offsets.
    pub nodes: ArrayId,
    /// CSR edges.
    pub edges: ArrayId,
    /// Distances.
    pub dist: ArrayId,
    /// Next fringe.
    pub next_fringe: ArrayId,
    /// `fringe_len[0]` = current fringe length.
    pub fringe_len: ArrayId,
    /// `out_len[t]` = next-fringe length (per thread for data-parallel).
    pub out_len: ArrayId,
}

/// Allocates BFS memory for a graph. `nf_segment` is the per-thread
/// next-fringe capacity (use `n` for single-producer variants).
pub fn build_mem(g: &Graph, root: usize, threads: usize) -> (MemState, BfsArrays) {
    let n = g.num_vertices;
    let mut mem = MemState::new();
    let mut fringe0 = vec![0i64; n.max(1)];
    fringe0[0] = root as i64;
    let fringe = mem.alloc_i64(ArrayDecl::i32("fringe"), fringe0);
    let nodes = mem.alloc_i64(ArrayDecl::i32("nodes"), g.offsets.iter().copied());
    let edges = mem.alloc_i64(ArrayDecl::i32("edges"), g.edges.iter().copied());
    let mut dist0 = vec![INF; n];
    dist0[root] = 0;
    let dist = mem.alloc_i64(ArrayDecl::i32("dist"), dist0);
    let next_fringe = mem.alloc(ArrayDecl::i32("next_fringe"), n.max(1) * threads.max(1));
    let fringe_len = mem.alloc_i64(ArrayDecl::i32("fringe_len"), [1i64]);
    let out_len = mem.alloc(ArrayDecl::i32("out_len"), threads.max(1));
    (
        mem,
        BfsArrays {
            fringe,
            nodes,
            edges,
            dist,
            next_fringe,
            fringe_len,
            out_len,
        },
    )
}

/// The serial one-round BFS kernel (Fig. 2 left, one fringe pass).
pub fn kernel() -> Function {
    let mut b = FunctionBuilder::new("bfs");
    let cd = b.param_i64("cur_dist");
    let fringe = b.array_i32("fringe");
    let nodes = b.array_i32("nodes");
    let edges = b.array_i32("edges");
    let dist = b.array_i32("dist");
    let nf = b.array_i32("next_fringe");
    let flen = b.array_i32("fringe_len");
    let olen = b.array_i32("out_len");
    let nl = b.var_i64("nl");
    let i = b.var_i64("i");
    let v = b.var_i64("v");
    let s = b.var_i64("s");
    let e = b.var_i64("e");
    let j = b.var_i64("j");
    let ngh = b.var_i64("ngh");
    let od = b.var_i64("od");
    let len = b.var_i64("len");
    let l = b.load(flen, Expr::i64(0));
    b.assign(nl, l);
    b.for_loop(i, Expr::i64(0), Expr::var(nl), |f| {
        let lv = f.load(fringe, Expr::var(i));
        f.assign(v, lv);
        let ls = f.load(nodes, Expr::var(v));
        f.assign(s, ls);
        let le = f.load(nodes, Expr::add(Expr::var(v), Expr::i64(1)));
        f.assign(e, le);
        f.for_loop(j, Expr::var(s), Expr::var(e), |f| {
            let ln = f.load(edges, Expr::var(j));
            f.assign(ngh, ln);
            let lo = f.load(dist, Expr::var(ngh));
            f.assign(od, lo);
            f.if_then(Expr::bin(BinOp::Gt, Expr::var(od), Expr::var(cd)), |f| {
                f.store(dist, Expr::var(ngh), Expr::var(cd));
                f.store(nf, Expr::var(len), Expr::var(ngh));
                f.assign(len, Expr::add(Expr::var(len), Expr::i64(1)));
            });
        });
    });
    b.store(olen, Expr::i64(0), Expr::var(len));
    b.build()
}

/// Data-parallel (PBFS-style) per-thread kernel: thread `tid` of
/// `threads` processes a slice of the fringe, updates distances with
/// atomic-min, and appends winners to its private next-fringe segment.
pub fn dp_kernel(tid: usize, threads: usize, segment: usize) -> Function {
    let mut b = FunctionBuilder::new(format!("bfs-dp{tid}"));
    let cd = b.param_i64("cur_dist");
    let fringe = b.array_i32("fringe");
    let nodes = b.array_i32("nodes");
    let edges = b.array_i32("edges");
    let dist = b.array_i32("dist");
    let nf = b.array_i32("next_fringe");
    let flen = b.array_i32("fringe_len");
    let olen = b.array_i32("out_len");
    let nl = b.var_i64("nl");
    let lo = b.var_i64("lo");
    let hi = b.var_i64("hi");
    let i = b.var_i64("i");
    let v = b.var_i64("v");
    let s = b.var_i64("s");
    let e = b.var_i64("e");
    let j = b.var_i64("j");
    let ngh = b.var_i64("ngh");
    let old = b.var_i64("old");
    let len = b.var_i64("len");
    let l = b.load(flen, Expr::i64(0));
    b.assign(nl, l);
    let t = tid as i64;
    let nt = threads as i64;
    b.assign(
        lo,
        Expr::bin(
            BinOp::Div,
            Expr::mul(Expr::var(nl), Expr::i64(t)),
            Expr::i64(nt),
        ),
    );
    b.assign(
        hi,
        Expr::bin(
            BinOp::Div,
            Expr::mul(Expr::var(nl), Expr::i64(t + 1)),
            Expr::i64(nt),
        ),
    );
    b.for_loop(i, Expr::var(lo), Expr::var(hi), |f| {
        let lv = f.load(fringe, Expr::var(i));
        f.assign(v, lv);
        let ls = f.load(nodes, Expr::var(v));
        f.assign(s, ls);
        let le = f.load(nodes, Expr::add(Expr::var(v), Expr::i64(1)));
        f.assign(e, le);
        f.for_loop(j, Expr::var(s), Expr::var(e), |f| {
            let ln = f.load(edges, Expr::var(j));
            f.assign(ngh, ln);
            f.atomic_rmw(BinOp::Min, dist, Expr::var(ngh), Expr::var(cd), Some(old));
            f.if_then(Expr::bin(BinOp::Gt, Expr::var(old), Expr::var(cd)), |f| {
                f.store(
                    nf,
                    Expr::add(Expr::i64(t * segment as i64), Expr::var(len)),
                    Expr::var(ngh),
                );
                f.assign(len, Expr::add(Expr::var(len), Expr::i64(1)));
            });
        });
    });
    b.store(olen, Expr::i64(t), Expr::var(len));
    b.build()
}

/// The hand-optimized Pipette pipeline (see module docs).
pub fn manual_pipeline() -> Pipeline {
    let arrays = vec![
        ArrayDecl::i32("fringe"),
        ArrayDecl::i32("nodes"),
        ArrayDecl::i32("edges"),
        ArrayDecl::i32("dist"),
        ArrayDecl::i32("next_fringe"),
        ArrayDecl::i32("fringe_len"),
        ArrayDecl::i32("out_len"),
    ];
    let qv = QueueId(0);
    let qse = QueueId(1);
    let qn = QueueId(2);
    let mut p = Pipeline::new("bfs-manual");

    // Stage 0: fetch fringe, enqueue v and v+1 for the nodes RA.
    let mut s0 = FunctionBuilder::new("fetch-fringe");
    let _cd0 = s0.param_i64("cur_dist");
    let fringe = s0.array_i32("fringe");
    for a in &arrays[1..] {
        s0.array(a.clone());
    }
    let flen = ArrayId(5);
    let nl = s0.var_i64("nl");
    let i = s0.var_i64("i");
    let v = s0.var_i64("v");
    let l = s0.load(flen, Expr::i64(0));
    s0.assign(nl, l);
    s0.for_loop(i, Expr::i64(0), Expr::var(nl), |f| {
        let lv = f.load(fringe, Expr::var(i));
        f.assign(v, lv);
        f.enq(qv, Expr::var(v));
        f.enq(qv, Expr::add(Expr::var(v), Expr::i64(1)));
    });
    s0.enq_ctrl(qv, DONE);
    p.add_stage(StageProgram::plain(s0.build()), 0);

    // Chained RAs: nodes (INDIRECT) then edges (SCAN), the latter
    // emitting a per-vertex NEXT the hand version kept.
    p.add_ra(
        RaConfig {
            name: "nodes".into(),
            mode: RaMode::Indirect,
            base: ArrayId(1),
            in_queue: qv,
            out_queue: qse,
            forward_ctrl: true,
            scan_end_ctrl: None,
        },
        &arrays,
        0,
    );
    p.add_ra(
        RaConfig {
            name: "edges".into(),
            mode: RaMode::Scan,
            base: ArrayId(2),
            in_queue: qse,
            out_queue: qn,
            forward_ctrl: true,
            scan_end_ctrl: Some(NEXT),
        },
        &arrays,
        0,
    );

    // Stage 3: update.
    let mut s3 = FunctionBuilder::new("update");
    let cd = s3.param_i64("cur_dist");
    for a in &arrays {
        s3.array(a.clone());
    }
    let dist = ArrayId(3);
    let nf = ArrayId(4);
    let olen = ArrayId(6);
    let ngh = s3.var_i64("ngh");
    let od = s3.var_i64("od");
    let len = s3.var_i64("len");
    s3.while_true(|f| {
        f.deq(ngh, qn);
        let lo = f.load(dist, Expr::var(ngh));
        f.assign(od, lo);
        f.if_then(Expr::bin(BinOp::Gt, Expr::var(od), Expr::var(cd)), |f| {
            f.store(dist, Expr::var(ngh), Expr::var(cd));
            f.store(nf, Expr::var(len), Expr::var(ngh));
            f.assign(len, Expr::add(Expr::var(len), Expr::i64(1)));
        });
    });
    s3.store(olen, Expr::i64(0), Expr::var(len));
    let update = s3.build();
    let handlers = vec![
        CtrlHandler {
            queue: qn,
            ctrl: Some(NEXT),
            bind: None,
            body: vec![],
            end: HandlerEnd::Resume,
        },
        CtrlHandler {
            queue: qn,
            ctrl: Some(DONE),
            bind: None,
            body: vec![],
            end: HandlerEnd::BreakLoops(1),
        },
    ];
    p.add_stage(
        StageProgram {
            func: update,
            handlers,
        },
        0,
    );
    p
}

/// Builds the pipeline for a variant (serial and manual included).
///
/// # Errors
/// Propagates compile errors from the Phloem variants.
pub fn pipeline_for(
    variant: &Variant,
    n_vertices: usize,
    cfg: &MachineConfig,
) -> Result<Pipeline, phloem_compiler::CompileError> {
    match variant {
        Variant::Serial => Ok(serial_pipeline(kernel())),
        Variant::DataParallel(t) => {
            let funcs = (0..*t).map(|k| dp_kernel(k, *t, n_vertices)).collect();
            Ok(data_parallel_pipeline(funcs, cfg.smt_threads))
        }
        Variant::Phloem {
            passes,
            stages,
            cuts,
        } => {
            let opts = CompileOptions {
                passes: *passes,
                smt_threads: cfg.smt_threads,
                max_queues: cfg.max_queues,
                max_ras: cfg.ras_per_core,
                start_core: 0,
            };
            if cuts.is_empty() {
                compile_static(&kernel(), *stages, &opts)
            } else {
                decouple_with_cuts(&kernel(), cuts, &opts)
            }
        }
        Variant::Manual => Ok(manual_pipeline()),
    }
}

/// Runs BFS to completion (all rounds) and verifies distances against
/// the host oracle.
///
/// Runtime failures (watchdog traps, fault-injected kills, convergence
/// stalls) surface as `Err(Trap)`; an oracle mismatch still panics, as
/// it means the variant miscompiled.
pub fn run(
    variant: &Variant,
    g: &Graph,
    root: usize,
    cfg: &MachineConfig,
    input: &str,
) -> Result<Measurement, Trap> {
    run_opt_traced(variant, g, root, cfg, input, None).0
}

/// Like [`run`], with a [`TraceSink`] observing every pipeline
/// invocation. The sink is returned even when the run traps, so callers
/// can inspect the partial trace of a failed run.
pub fn run_traced(
    variant: &Variant,
    g: &Graph,
    root: usize,
    cfg: &MachineConfig,
    input: &str,
    sink: Box<dyn TraceSink>,
) -> (Result<Measurement, Trap>, Box<dyn TraceSink>) {
    let (r, s) = run_opt_traced(variant, g, root, cfg, input, Some(sink));
    (r, s.expect("sink was installed"))
}

fn run_opt_traced(
    variant: &Variant,
    g: &Graph,
    root: usize,
    cfg: &MachineConfig,
    input: &str,
    sink: Option<Box<dyn TraceSink>>,
) -> (Result<Measurement, Trap>, Option<Box<dyn TraceSink>>) {
    let threads = match variant {
        Variant::DataParallel(t) => *t,
        _ => 1,
    };
    let pipeline = pipeline_for(variant, g.num_vertices, cfg).expect("BFS pipeline construction");
    let (mem, arrays) = build_mem(g, root, threads);
    let mut session = Session::new(cfg.clone(), mem);
    if let Some(s) = sink {
        session.set_trace(s);
    }
    let driven = (|session: &mut Session| -> Result<(), Trap> {
        // Lower stage programs once: the flat engine would otherwise
        // recompile the same pipeline every round.
        let compiled = CompiledPipeline::new(&pipeline)?;
        let mut len = 1i64;
        let mut cur_dist = 1i64;
        let mut rounds = 0;
        while len > 0 {
            session
                .mem_mut()
                .store(arrays.fringe_len, 0, Value::I64(len))
                .unwrap();
            session.run_compiled(&pipeline, &compiled, &[("cur_dist", Value::I64(cur_dist))])?;
            // Gather next fringe (host work, free — pointer swap in the paper).
            let n = g.num_vertices;
            let mut next = Vec::new();
            for t in 0..threads {
                let tlen = session.mem().load(arrays.out_len, t as i64).unwrap();
                let tlen = tlen.as_i64().unwrap();
                for k in 0..tlen {
                    let v = session
                        .mem()
                        .load(arrays.next_fringe, (t * n) as i64 + k)
                        .unwrap();
                    next.push(v);
                }
            }
            len = next.len() as i64;
            for (k, v) in next.iter().enumerate() {
                session
                    .mem_mut()
                    .store(arrays.fringe, k as i64, *v)
                    .unwrap();
            }
            cur_dist += 1;
            rounds += 1;
            if rounds >= 100_000 {
                return Err(Trap::Livelock {
                    cycle: session.elapsed(),
                    detail: format!(
                        "BFS {} did not converge after {rounds} rounds",
                        variant.label()
                    ),
                });
            }
        }
        Ok(())
    })(&mut session);
    let sink = session.take_trace();
    if let Err(e) = driven {
        return (Err(e), sink);
    }
    let (mem, stats) = session.finish();
    let got = mem.i64_vec(arrays.dist);
    let want = g.bfs_distances(root);
    assert_eq!(got, want, "BFS distances wrong for {}", variant.label());
    (
        Ok(Measurement {
            variant: variant.label(),
            input: input.into(),
            cycles: stats.cycles,
            stats,
        }),
        sink,
    )
}

/// Returns the kernel's load ids in program order (for explicit cuts):
/// `[fringe_len, fringe, nodes, nodes+1, edges, dist]`.
pub fn kernel_loads() -> Vec<phloem_ir::LoadId> {
    phloem_compiler::analyze(&kernel())
        .loads
        .iter()
        .map(|l| l.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phloem_workloads::graph;

    #[test]
    fn all_variants_agree_and_complete() {
        let g = graph::mesh(14, 3);
        let cfg = MachineConfig::paper_1core();
        for v in [
            Variant::Serial,
            Variant::DataParallel(4),
            Variant::phloem(),
            Variant::Manual,
        ] {
            let m = run(&v, &g, 0, &cfg, "mesh").expect("BFS run");
            assert!(m.cycles > 0, "{}", v.label());
        }
    }

    #[test]
    fn phloem_and_manual_beat_serial_on_irregular_graph() {
        let g = graph::power_law(3000, 4, 9);
        let cfg = MachineConfig::paper_1core();
        let serial = run(&Variant::Serial, &g, 0, &cfg, "pl").expect("serial");
        let phloem = run(&Variant::phloem(), &g, 0, &cfg, "pl").expect("phloem");
        let manual = run(&Variant::Manual, &g, 0, &cfg, "pl").expect("manual");
        assert!(
            phloem.cycles * 13 < serial.cycles * 10,
            "phloem {} vs serial {}",
            phloem.cycles,
            serial.cycles
        );
        assert!(
            manual.cycles * 13 < serial.cycles * 10,
            "manual {} vs serial {}",
            manual.cycles,
            serial.cycles
        );
    }
}
