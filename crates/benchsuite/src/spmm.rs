//! Sparse Matrix-Matrix multiplication with an inner-product
//! (output-stationary) dataflow: each output element is a dot product of
//! a row of A and a column of B (stored as rows of Bᵀ), computed by a
//! *merge-intersection* over the two sorted coordinate lists.
//!
//! This is the paper's negative result for Phloem: the merge loop's
//! loop-carried, data-dependent control keeps all of its loads in one
//! stage, so automatic decoupling only peels off the row-pointer
//! fetches. The *manual* pipeline uses the bespoke insight the paper
//! describes: index/value streams flow through four SCAN reference
//! accelerators with per-range `NEXT` control values, and "upon finding
//! the end of an input queue through a control value, the consumer skips
//! the remaining values in the other input queue up to its next control
//! value".

use crate::runner::{data_parallel_pipeline, serial_pipeline, Measurement, Variant};
use phloem_compiler::{compile_static, CompileOptions};
use phloem_ir::{
    ArrayDecl, ArrayId, BinOp, Expr, Function, FunctionBuilder, MemState, Pipeline, QueueId,
    RaConfig, RaMode, StageProgram, Trap, UnOp, Value,
};
use phloem_workloads::SparseMatrix;
use pipette_sim::{MachineConfig, Session, TraceSink};

const DONE: u32 = 0;
const NEXT: u32 = 1;

/// Array ids shared by all SpMM variants.
#[derive(Clone, Copy, Debug)]
pub struct SpmmArrays {
    /// A row pointers.
    pub arp: ArrayId,
    /// A column indices.
    pub aci: ArrayId,
    /// A values.
    pub avl: ArrayId,
    /// Bᵀ row pointers (= B column pointers).
    pub btp: ArrayId,
    /// Bᵀ column indices.
    pub btci: ArrayId,
    /// Bᵀ values.
    pub btvl: ArrayId,
    /// Per-thread output nonzero counts.
    pub out_cnt: ArrayId,
    /// Per-thread output value sums.
    pub out_sum: ArrayId,
}

/// Allocates SpMM memory for `C = A * B` (B passed as Bᵀ).
pub fn build_mem(a: &SparseMatrix, bt: &SparseMatrix, threads: usize) -> (MemState, SpmmArrays) {
    let mut mem = MemState::new();
    let arp = mem.alloc_i64(ArrayDecl::i32("arp"), a.row_ptr.iter().copied());
    let aci = mem.alloc_i64(ArrayDecl::i32("aci"), a.col_idx.iter().copied());
    let avl = mem.alloc_f64(ArrayDecl::f64("avl"), a.vals.iter().copied());
    let btp = mem.alloc_i64(ArrayDecl::i32("btp"), bt.row_ptr.iter().copied());
    let btci = mem.alloc_i64(ArrayDecl::i32("btci"), bt.col_idx.iter().copied());
    let btvl = mem.alloc_f64(ArrayDecl::f64("btvl"), bt.vals.iter().copied());
    let out_cnt = mem.alloc(ArrayDecl::i32("out_cnt"), threads.max(1));
    let out_sum = mem.alloc(ArrayDecl::f64("out_sum"), threads.max(1));
    (
        mem,
        SpmmArrays {
            arp,
            aci,
            avl,
            btp,
            btci,
            btvl,
            out_cnt,
            out_sum,
        },
    )
}

#[allow(clippy::too_many_arguments)]
fn emit_merge_body(
    b: &mut FunctionBuilder,
    aci: ArrayId,
    avl: ArrayId,
    btci: ArrayId,
    btvl: ArrayId,
    ka: phloem_ir::VarId,
    kb: phloem_ir::VarId,
    rae: phloem_ir::VarId,
    rbe: phloem_ir::VarId,
    accf: phloem_ir::VarId,
) {
    let ca = b.var_i64("ca");
    let cb = b.var_i64("cb");
    let va = b.var_f64("va");
    let vb = b.var_f64("vb");
    b.assign(accf, Expr::f64(0.0));
    let cond = Expr::bin(
        BinOp::And,
        Expr::lt(Expr::var(ka), Expr::var(rae)),
        Expr::lt(Expr::var(kb), Expr::var(rbe)),
    );
    b.while_loop(cond, |f| {
        let lca = f.load(aci, Expr::var(ka));
        f.assign(ca, lca);
        let lcb = f.load(btci, Expr::var(kb));
        f.assign(cb, lcb);
        f.if_else(
            Expr::eq(Expr::var(ca), Expr::var(cb)),
            |f| {
                let lva = f.load(avl, Expr::var(ka));
                f.assign(va, lva);
                let lvb = f.load(btvl, Expr::var(kb));
                f.assign(vb, lvb);
                f.assign(
                    accf,
                    Expr::add(Expr::var(accf), Expr::mul(Expr::var(va), Expr::var(vb))),
                );
                f.assign(ka, Expr::add(Expr::var(ka), Expr::i64(1)));
                f.assign(kb, Expr::add(Expr::var(kb), Expr::i64(1)));
            },
            |f| {
                f.if_else(
                    Expr::lt(Expr::var(ca), Expr::var(cb)),
                    |f| f.assign(ka, Expr::add(Expr::var(ka), Expr::i64(1))),
                    |f| f.assign(kb, Expr::add(Expr::var(kb), Expr::i64(1))),
                );
            },
        );
    });
}

/// Serial inner-product SpMM kernel over all (i, j) pairs.
pub fn kernel() -> Function {
    let mut b = FunctionBuilder::new("spmm");
    let n = b.param_i64("n");
    let arp = b.array_i32("arp");
    let aci = b.array_i32("aci");
    let avl = b.array_f64("avl");
    let btp = b.array_i32("btp");
    let btci = b.array_i32("btci");
    let btvl = b.array_f64("btvl");
    let out_cnt = b.array_i32("out_cnt");
    let out_sum = b.array_f64("out_sum");
    let i = b.var_i64("i");
    let j = b.var_i64("j");
    let ras = b.var_i64("ras");
    let rae = b.var_i64("rae");
    let rbs = b.var_i64("rbs");
    let rbe = b.var_i64("rbe");
    let ka = b.var_i64("ka");
    let kb = b.var_i64("kb");
    let accf = b.var_f64("accf");
    let cnt = b.var_i64("cnt");
    let sum = b.var_f64("sum");
    b.for_loop(i, Expr::i64(0), Expr::var(n), |f| {
        let l1 = f.load(arp, Expr::var(i));
        f.assign(ras, l1);
        let l2 = f.load(arp, Expr::add(Expr::var(i), Expr::i64(1)));
        f.assign(rae, l2);
        f.for_loop(j, Expr::i64(0), Expr::var(n), |f| {
            let l3 = f.load(btp, Expr::var(j));
            f.assign(rbs, l3);
            let l4 = f.load(btp, Expr::add(Expr::var(j), Expr::i64(1)));
            f.assign(rbe, l4);
            f.assign(ka, Expr::var(ras));
            f.assign(kb, Expr::var(rbs));
            emit_merge_body(f, aci, avl, btci, btvl, ka, kb, rae, rbe, accf);
            f.if_then(Expr::ne(Expr::var(accf), Expr::f64(0.0)), |f| {
                f.assign(cnt, Expr::add(Expr::var(cnt), Expr::i64(1)));
                f.assign(sum, Expr::add(Expr::var(sum), Expr::var(accf)));
            });
        });
    });
    b.store(out_cnt, Expr::i64(0), Expr::var(cnt));
    b.store(out_sum, Expr::i64(0), Expr::var(sum));
    b.build()
}

/// Data-parallel kernel: rows of A partitioned across threads.
pub fn dp_kernel(tid: usize, threads: usize) -> Function {
    let mut b = FunctionBuilder::new(format!("spmm-dp{tid}"));
    let n = b.param_i64("n");
    let arp = b.array_i32("arp");
    let aci = b.array_i32("aci");
    let avl = b.array_f64("avl");
    let btp = b.array_i32("btp");
    let btci = b.array_i32("btci");
    let btvl = b.array_f64("btvl");
    let out_cnt = b.array_i32("out_cnt");
    let out_sum = b.array_f64("out_sum");
    let lo = b.var_i64("lo");
    let hi = b.var_i64("hi");
    let i = b.var_i64("i");
    let j = b.var_i64("j");
    let ras = b.var_i64("ras");
    let rae = b.var_i64("rae");
    let rbs = b.var_i64("rbs");
    let rbe = b.var_i64("rbe");
    let ka = b.var_i64("ka");
    let kb = b.var_i64("kb");
    let accf = b.var_f64("accf");
    let cnt = b.var_i64("cnt");
    let sum = b.var_f64("sum");
    let t = tid as i64;
    let nt = threads as i64;
    b.assign(
        lo,
        Expr::bin(
            BinOp::Div,
            Expr::mul(Expr::var(n), Expr::i64(t)),
            Expr::i64(nt),
        ),
    );
    b.assign(
        hi,
        Expr::bin(
            BinOp::Div,
            Expr::mul(Expr::var(n), Expr::i64(t + 1)),
            Expr::i64(nt),
        ),
    );
    b.for_loop(i, Expr::var(lo), Expr::var(hi), |f| {
        let l1 = f.load(arp, Expr::var(i));
        f.assign(ras, l1);
        let l2 = f.load(arp, Expr::add(Expr::var(i), Expr::i64(1)));
        f.assign(rae, l2);
        f.for_loop(j, Expr::i64(0), Expr::var(n), |f| {
            let l3 = f.load(btp, Expr::var(j));
            f.assign(rbs, l3);
            let l4 = f.load(btp, Expr::add(Expr::var(j), Expr::i64(1)));
            f.assign(rbe, l4);
            f.assign(ka, Expr::var(ras));
            f.assign(kb, Expr::var(rbs));
            emit_merge_body(f, aci, avl, btci, btvl, ka, kb, rae, rbe, accf);
            f.if_then(Expr::ne(Expr::var(accf), Expr::f64(0.0)), |f| {
                f.assign(cnt, Expr::add(Expr::var(cnt), Expr::i64(1)));
                f.assign(sum, Expr::add(Expr::var(sum), Expr::var(accf)));
            });
        });
    });
    b.store(out_cnt, Expr::i64(t), Expr::var(cnt));
    b.store(out_sum, Expr::i64(t), Expr::var(sum));
    b.build()
}

fn arrays_decl() -> Vec<ArrayDecl> {
    vec![
        ArrayDecl::i32("arp"),
        ArrayDecl::i32("aci"),
        ArrayDecl::f64("avl"),
        ArrayDecl::i32("btp"),
        ArrayDecl::i32("btci"),
        ArrayDecl::f64("btvl"),
        ArrayDecl::i32("out_cnt"),
        ArrayDecl::f64("out_sum"),
    ]
}

/// The hand-optimized merge-skip pipeline (see module docs): one fetch
/// stage, four SCAN RAs (A/B index and value streams with per-range
/// `NEXT`s), and a merge stage that skips the other stream on stream end.
pub fn manual_pipeline() -> Pipeline {
    let arrays = arrays_decl();
    let q_ra = QueueId(0); // ranges -> aci scan
    let q_rav = QueueId(1); // ranges -> avl scan
    let q_rb = QueueId(2); // ranges -> btci scan
    let q_rbv = QueueId(3); // ranges -> btvl scan
    let q_ca = QueueId(4);
    let q_va = QueueId(5);
    let q_cb = QueueId(6);
    let q_vb = QueueId(7);
    let mut p = Pipeline::new("spmm-manual");

    // Stage 0: generate (i, j) pairs and feed all four scanners.
    let mut s0 = FunctionBuilder::new("pairs");
    let n = s0.param_i64("n");
    for a in &arrays {
        s0.array(a.clone());
    }
    let (arp, btp) = (ArrayId(0), ArrayId(3));
    let i = s0.var_i64("i");
    let j = s0.var_i64("j");
    let ras = s0.var_i64("ras");
    let rae = s0.var_i64("rae");
    let rbs = s0.var_i64("rbs");
    let rbe = s0.var_i64("rbe");
    s0.for_loop(i, Expr::i64(0), Expr::var(n), |f| {
        let l1 = f.load(arp, Expr::var(i));
        f.assign(ras, l1);
        let l2 = f.load(arp, Expr::add(Expr::var(i), Expr::i64(1)));
        f.assign(rae, l2);
        f.for_loop(j, Expr::i64(0), Expr::var(n), |f| {
            let l3 = f.load(btp, Expr::var(j));
            f.assign(rbs, l3);
            let l4 = f.load(btp, Expr::add(Expr::var(j), Expr::i64(1)));
            f.assign(rbe, l4);
            for (qs, qe) in [(q_ra, q_rav), (q_rb, q_rbv)] {
                let (s, e) = if qs == q_ra { (ras, rae) } else { (rbs, rbe) };
                f.enq(qs, Expr::var(s));
                f.enq(qs, Expr::var(e));
                f.enq(qe, Expr::var(s));
                f.enq(qe, Expr::var(e));
            }
        });
    });
    for q in [q_ra, q_rav, q_rb, q_rbv] {
        s0.enq_ctrl(q, DONE);
    }
    p.add_stage(StageProgram::plain(s0.build()), 0);

    for (name, base, qin, qout) in [
        ("aci", ArrayId(1), q_ra, q_ca),
        ("avl", ArrayId(2), q_rav, q_va),
        ("btci", ArrayId(4), q_rb, q_cb),
        ("btvl", ArrayId(5), q_rbv, q_vb),
    ] {
        p.add_ra(
            RaConfig {
                name: name.into(),
                mode: RaMode::Scan,
                base,
                in_queue: qin,
                out_queue: qout,
                forward_ctrl: true,
                scan_end_ctrl: Some(NEXT),
            },
            &arrays,
            0,
        );
    }

    // Merge stage with explicit control-value checks and skip logic.
    let mut s5 = FunctionBuilder::new("merge");
    let _n5 = s5.param_i64("n");
    for a in &arrays {
        s5.array(a.clone());
    }
    let (out_cnt, out_sum) = (ArrayId(6), ArrayId(7));
    let ca = s5.var_i64("ca");
    let cb = s5.var_i64("cb");
    let va = s5.var_f64("va");
    let vb = s5.var_f64("vb");
    let accf = s5.var_f64("accf");
    let cnt = s5.var_i64("cnt");
    let sum = s5.var_f64("sum");
    s5.while_true(|f| {
        // Heads of both streams for this (i, j) pair (or DONE).
        f.deq(ca, q_ca);
        // `&&` in the IR is not short-circuiting: nest the checks so
        // ctrl_tag is only taken on actual control values.
        f.if_then(Expr::is_ctrl(Expr::var(ca)), |f| {
            f.if_then(
                Expr::eq(
                    Expr::un(UnOp::CtrlTag, Expr::var(ca)),
                    Expr::i64(DONE as i64),
                ),
                |f| f.break_out(1),
            );
        });
        f.deq(cb, q_cb);
        f.assign(accf, Expr::f64(0.0));
        f.while_true(|f| {
            // A stream ended: skip the rest of the B stream.
            f.if_then(Expr::is_ctrl(Expr::var(ca)), |f| {
                f.deq(va, q_va); // consume A's value-stream NEXT
                f.while_loop(Expr::un(UnOp::Not, Expr::is_ctrl(Expr::var(cb))), |f| {
                    f.deq(vb, q_vb);
                    f.deq(cb, q_cb);
                });
                f.deq(vb, q_vb); // B's value-stream NEXT
                f.break_out(1);
            });
            // B stream ended: skip the rest of the A stream.
            f.if_then(Expr::is_ctrl(Expr::var(cb)), |f| {
                f.deq(vb, q_vb);
                f.while_loop(Expr::un(UnOp::Not, Expr::is_ctrl(Expr::var(ca))), |f| {
                    f.deq(va, q_va);
                    f.deq(ca, q_ca);
                });
                f.deq(va, q_va);
                f.break_out(1);
            });
            f.if_else(
                Expr::eq(Expr::var(ca), Expr::var(cb)),
                |f| {
                    f.deq(va, q_va);
                    f.deq(vb, q_vb);
                    f.assign(
                        accf,
                        Expr::add(Expr::var(accf), Expr::mul(Expr::var(va), Expr::var(vb))),
                    );
                    f.deq(ca, q_ca);
                    f.deq(cb, q_cb);
                },
                |f| {
                    f.if_else(
                        Expr::lt(Expr::var(ca), Expr::var(cb)),
                        |f| {
                            f.deq(va, q_va);
                            f.deq(ca, q_ca);
                        },
                        |f| {
                            f.deq(vb, q_vb);
                            f.deq(cb, q_cb);
                        },
                    );
                },
            );
        });
        f.if_then(Expr::ne(Expr::var(accf), Expr::f64(0.0)), |f| {
            f.assign(cnt, Expr::add(Expr::var(cnt), Expr::i64(1)));
            f.assign(sum, Expr::add(Expr::var(sum), Expr::var(accf)));
        });
    });
    s5.store(out_cnt, Expr::i64(0), Expr::var(cnt));
    s5.store(out_sum, Expr::i64(0), Expr::var(sum));
    p.add_stage(StageProgram::plain(s5.build()), 0);
    p
}

/// Host oracle: `(nonzero count, value sum)` in serial (i, j) order.
pub fn oracle(a: &SparseMatrix, bt: &SparseMatrix) -> (i64, f64) {
    let n = a.rows;
    let mut cnt = 0i64;
    let mut sum = 0.0f64;
    for i in 0..n {
        let ar: Vec<(i64, f64)> = a.row(i).collect();
        for j in 0..n {
            let br: Vec<(i64, f64)> = bt.row(j).collect();
            let (mut ka, mut kb) = (0usize, 0usize);
            let mut acc = 0.0f64;
            while ka < ar.len() && kb < br.len() {
                match ar[ka].0.cmp(&br[kb].0) {
                    std::cmp::Ordering::Equal => {
                        acc += ar[ka].1 * br[kb].1;
                        ka += 1;
                        kb += 1;
                    }
                    std::cmp::Ordering::Less => ka += 1,
                    std::cmp::Ordering::Greater => kb += 1,
                }
            }
            if acc != 0.0 {
                cnt += 1;
                sum += acc;
            }
        }
    }
    (cnt, sum)
}

/// Builds the pipeline for a variant.
///
/// # Errors
/// Propagates Phloem compile errors.
pub fn pipeline_for(
    variant: &Variant,
    cfg: &MachineConfig,
) -> Result<Pipeline, phloem_compiler::CompileError> {
    match variant {
        Variant::Serial => Ok(serial_pipeline(kernel())),
        Variant::DataParallel(t) => Ok(data_parallel_pipeline(
            (0..*t).map(|k| dp_kernel(k, *t)).collect(),
            cfg.smt_threads,
        )),
        Variant::Phloem {
            passes,
            stages,
            cuts,
        } => {
            let opts = CompileOptions {
                passes: *passes,
                smt_threads: cfg.smt_threads,
                max_queues: cfg.max_queues,
                max_ras: cfg.ras_per_core,
                start_core: 0,
            };
            if cuts.is_empty() {
                compile_static(&kernel(), *stages, &opts)
            } else {
                phloem_compiler::decouple_with_cuts(&kernel(), cuts, &opts)
            }
        }
        Variant::Manual => Ok(manual_pipeline()),
    }
}

/// Runs SpMM and verifies count/sum against the oracle.
///
/// Runtime failures (watchdog traps, injected faults) surface as
/// `Err(Trap)`; a count/sum mismatch still panics, as it means the
/// variant miscompiled.
pub fn run(
    variant: &Variant,
    a: &SparseMatrix,
    bt: &SparseMatrix,
    cfg: &MachineConfig,
    input: &str,
) -> Result<Measurement, Trap> {
    run_opt_traced(variant, a, bt, cfg, input, None).0
}

/// Like [`run`], with a [`TraceSink`] observing the pipeline
/// invocation; the sink is returned even when the run traps.
pub fn run_traced(
    variant: &Variant,
    a: &SparseMatrix,
    bt: &SparseMatrix,
    cfg: &MachineConfig,
    input: &str,
    sink: Box<dyn TraceSink>,
) -> (Result<Measurement, Trap>, Box<dyn TraceSink>) {
    let (r, s) = run_opt_traced(variant, a, bt, cfg, input, Some(sink));
    (r, s.expect("sink was installed"))
}

fn run_opt_traced(
    variant: &Variant,
    a: &SparseMatrix,
    bt: &SparseMatrix,
    cfg: &MachineConfig,
    input: &str,
    sink: Option<Box<dyn TraceSink>>,
) -> (Result<Measurement, Trap>, Option<Box<dyn TraceSink>>) {
    let threads = match variant {
        Variant::DataParallel(t) => *t,
        _ => 1,
    };
    let pipeline = pipeline_for(variant, cfg).expect("SpMM pipeline");
    let (mem, arrays) = build_mem(a, bt, threads);
    let mut session = Session::new(cfg.clone(), mem);
    if let Some(s) = sink {
        session.set_trace(s);
    }
    let driven = session.run(&pipeline, &[("n", Value::I64(a.rows as i64))]);
    let sink = session.take_trace();
    if let Err(e) = driven {
        return (Err(e), sink);
    }
    let (mem, stats) = session.finish();
    let cnt: i64 = mem.i64_vec(arrays.out_cnt).iter().sum();
    let sum: f64 = mem.f64_vec(arrays.out_sum).iter().sum();
    let (want_cnt, want_sum) = oracle(a, bt);
    assert_eq!(cnt, want_cnt, "SpMM count wrong for {}", variant.label());
    assert!(
        (sum - want_sum).abs() <= 1e-9 + 1e-9 * want_sum.abs(),
        "SpMM sum wrong for {}: {sum} vs {want_sum}",
        variant.label()
    );
    (
        Ok(Measurement {
            variant: variant.label(),
            input: input.into(),
            cycles: stats.cycles,
            stats,
        }),
        sink,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use phloem_workloads::matrix;

    #[test]
    fn all_variants_agree() {
        let a = matrix::random_square(40, 3.0, 1);
        let bt = matrix::random_square(40, 3.0, 2);
        let cfg = MachineConfig::paper_1core();
        for v in [
            Variant::Serial,
            Variant::DataParallel(4),
            Variant::phloem(),
            Variant::Manual,
        ] {
            let m = run(&v, &a, &bt, &cfg, "rnd").expect("SpMM run");
            assert!(m.cycles > 0, "{}", v.label());
        }
    }
}
