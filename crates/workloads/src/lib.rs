//! # phloem-workloads
//!
//! Deterministic synthetic inputs for the Phloem (HPCA 2023)
//! reproduction: CSR graphs matching the domains of the paper's
//! Table IV and sparse matrices matching Table V, plus host-side
//! reference oracles (BFS distances, SpMV) used to check compiled
//! pipelines.
//!
//! Real SuiteSparse/DIMACS instances are not redistributable inside this
//! repository, so each catalog entry records which paper input it stands
//! in for; the generators reproduce the property that matters for each
//! domain (degree distribution, diameter, bandedness, nnz/row).

#![warn(missing_docs)]

pub mod catalog;
pub mod graph;
pub mod matrix;

pub use catalog::{
    spmm_test_matrices, spmm_training_matrices, taco_test_matrices, test_graphs, training_graphs,
    GraphInput, MatrixInput, Scale,
};
pub use graph::Graph;
pub use matrix::{DenseMatrix, SparseMatrix};
