//! Input catalogs mirroring the paper's Tables IV and V.
//!
//! Each entry names the paper's input and the synthetic analogue we
//! substitute (scaled down so cycle-level simulation stays tractable;
//! all program variants of a benchmark run the same instance, so
//! speedup ratios remain comparable).

use crate::graph::{self, Graph};
use crate::matrix::{self, SparseMatrix};
use serde::{Deserialize, Serialize};

/// Scale of the generated inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Tiny instances for unit tests (seconds).
    Tiny,
    /// Default harness scale (~10-300K edges).
    Small,
    /// Larger runs for final numbers.
    Full,
}

impl Scale {
    fn factor(self) -> f64 {
        match self {
            Scale::Tiny => 0.25,
            Scale::Small => 1.0,
            Scale::Full => 3.0,
        }
    }
}

/// A named graph input.
#[derive(Clone, Debug)]
pub struct GraphInput {
    /// Short name used in result tables.
    pub name: &'static str,
    /// The paper's input this stands in for.
    pub paper_analogue: &'static str,
    /// Domain label from Table IV.
    pub domain: &'static str,
    /// The graph.
    pub graph: Graph,
}

fn scaled(base: usize, scale: Scale) -> usize {
    ((base as f64 * scale.factor()) as usize).max(16)
}

/// Training graphs (Table IV): a small internet graph and a small road
/// network.
pub fn training_graphs(scale: Scale) -> Vec<GraphInput> {
    vec![
        GraphInput {
            name: "internet-s",
            paper_analogue: "internet (126K/207K)",
            domain: "Training internet graph",
            graph: graph::power_law(scaled(4000, scale), 2, 0xA1),
        },
        GraphInput {
            name: "road-ny-s",
            paper_analogue: "USA-road-d-NY (264K/734K)",
            domain: "Training road network",
            graph: graph::road_network(scaled_side(9000, scale), 0xA2),
        },
    ]
}

fn scaled_side(target_vertices: usize, scale: Scale) -> usize {
    ((target_vertices as f64 * scale.factor()).sqrt() as usize).max(8)
}

/// Test graphs (Table IV analogues).
pub fn test_graphs(scale: Scale) -> Vec<GraphInput> {
    vec![
        GraphInput {
            name: "coauthor-s",
            paper_analogue: "coAuthorsDBLP (299K/1.9M, deg 6.4)",
            domain: "Human collaboration",
            graph: graph::collaboration(scaled(2600, scale), 0xB1),
        },
        GraphInput {
            name: "trace-s",
            paper_analogue: "hugetrace-00000 (4.6M/14M, deg 3.0)",
            domain: "Dynamic simulation",
            graph: graph::mesh(scaled_side(36_000, scale), 0xB2),
        },
        GraphInput {
            name: "circuit-s",
            paper_analogue: "Freescale1 (3.4M/19M, deg 5.6)",
            domain: "Circuit simulation",
            graph: graph::uniform_random(scaled(26_000, scale), 6, 0xB3),
        },
        GraphInput {
            name: "skitter-s",
            paper_analogue: "as-Skitter (1.7M/22M, deg 12.9)",
            domain: "Internet graph",
            graph: graph::power_law(scaled(13_000, scale), 6, 0xB4),
        },
        GraphInput {
            name: "road-usa-s",
            paper_analogue: "USA-road-d-USA (24M/58M, deg 2.4)",
            domain: "Road network",
            graph: graph::road_network(scaled_side(60_000, scale), 0xB5),
        },
    ]
}

/// A named sparse-matrix input.
#[derive(Clone, Debug)]
pub struct MatrixInput {
    /// Short name used in result tables.
    pub name: &'static str,
    /// The paper's input this stands in for.
    pub paper_analogue: &'static str,
    /// Domain label from Table V.
    pub domain: &'static str,
    /// The matrix.
    pub matrix: SparseMatrix,
}

/// SpMM training matrices (Table V analogues). Note: inner-product SpMM
/// does an O(n^2) sweep of merge-intersections, so these instances are
/// scaled further down than the row-linear kernels' inputs.
pub fn spmm_training_matrices(scale: Scale) -> Vec<MatrixInput> {
    vec![
        MatrixInput {
            name: "enron-s",
            paper_analogue: "email-Enron (36,692 x, 10.0 nnz/row)",
            domain: "Training graph as matrix 1",
            matrix: matrix::power_law_matrix(scaled(360, scale), 10.0, 0xC1),
        },
        MatrixInput {
            name: "wiki-s",
            paper_analogue: "wiki-Vote (8,297 x, 12.5 nnz/row)",
            domain: "Training graph as matrix 2",
            matrix: matrix::power_law_matrix(scaled(300, scale), 12.5, 0xC2),
        },
    ]
}

/// SpMM test matrices (Table V analogues).
pub fn spmm_test_matrices(scale: Scale) -> Vec<MatrixInput> {
    vec![
        MatrixInput {
            name: "gnutella-s",
            paper_analogue: "p2p-Gnutella31 (62,586 x, 2.4 nnz/row)",
            domain: "File sharing",
            matrix: matrix::random_square(scaled(700, scale), 2.4, 0xD1),
        },
        MatrixInput {
            name: "amazon-s",
            paper_analogue: "amazon0312 (400,727 x, 8.0 nnz/row)",
            domain: "Graph as matrix",
            matrix: matrix::random_square(scaled(900, scale), 8.0, 0xD2),
        },
        MatrixInput {
            name: "cage-s",
            paper_analogue: "cage12 (130,228 x, 15.6 nnz/row)",
            domain: "Gel electrophoresis",
            matrix: matrix::banded(scaled(700, scale), 64, 15.6, 0xD3),
        },
        MatrixInput {
            name: "cubes-s",
            paper_analogue: "2cubes_sphere (101,492 x, 16.2 nnz/row)",
            domain: "Electromagnetics",
            matrix: matrix::banded(scaled(650, scale), 128, 16.2, 0xD4),
        },
        MatrixInput {
            name: "rma10-s",
            paper_analogue: "rma10 (46,835 x, 49.7 nnz/row)",
            domain: "Fluid dynamics",
            matrix: matrix::banded(scaled(500, scale), 96, 49.7, 0xD5),
        },
    ]
}

/// Taco test matrices (Table V analogues, used by MTMul, Residual, SpMV,
/// SDDMM).
pub fn taco_test_matrices(scale: Scale) -> Vec<MatrixInput> {
    vec![
        MatrixInput {
            name: "scircuit-s",
            paper_analogue: "scircuit (170,998 x, 5.6 nnz/row)",
            domain: "Circuit simulation",
            matrix: matrix::random_square(scaled(7000, scale), 5.6, 0xE1),
        },
        MatrixInput {
            name: "econ-s",
            paper_analogue: "mac_econ_fwd500 (206,500 x, 6.2 nnz/row)",
            domain: "Economics",
            matrix: matrix::random_square(scaled(7000, scale), 6.2, 0xE2),
        },
        MatrixInput {
            name: "cop20k-s",
            paper_analogue: "cop20k_A (121,192 x, 21.7 nnz/row)",
            domain: "Particle physics",
            matrix: matrix::banded(scaled(4500, scale), 256, 21.7, 0xE3),
        },
        MatrixInput {
            name: "pwtk-s",
            paper_analogue: "pwtk (217,918 x, 52.9 nnz/row)",
            domain: "Structural",
            matrix: matrix::banded(scaled(2600, scale), 128, 52.9, 0xE4),
        },
        MatrixInput {
            name: "cant-s",
            paper_analogue: "cant (62,451 x, 64.2 nnz/row)",
            domain: "Cantilever",
            matrix: matrix::banded(scaled(2000, scale), 96, 64.2, 0xE5),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_catalogs_are_valid_and_ordered_like_the_paper() {
        let train = training_graphs(Scale::Tiny);
        let test = test_graphs(Scale::Tiny);
        assert_eq!(train.len(), 2);
        assert_eq!(test.len(), 5);
        for g in train.iter().chain(&test) {
            g.graph.validate().expect(g.name);
        }
        // Road networks stay sparse; the internet graph is denser.
        let road = &test[4];
        let skitter = &test[3];
        assert!(road.graph.avg_degree() < 4.0);
        assert!(skitter.graph.avg_degree() > 8.0);
    }

    #[test]
    fn matrix_catalogs_match_density_ordering() {
        let m = spmm_test_matrices(Scale::Tiny);
        assert_eq!(m.len(), 5);
        for e in &m {
            e.matrix.validate().expect(e.name);
        }
        // Table V sorts by nnz/row: gnutella sparse, rma10 dense (the
        // banded generator clips near the edges at tiny scales, so the
        // threshold is conservative).
        assert!(m[0].matrix.avg_nnz_per_row() < 4.0);
        assert!(m[4].matrix.avg_nnz_per_row() > 20.0);
        let taco = taco_test_matrices(Scale::Tiny);
        assert_eq!(taco.len(), 5);
        assert!(taco[4].matrix.avg_nnz_per_row() > 40.0);
    }

    #[test]
    fn scales_are_monotone() {
        let tiny = test_graphs(Scale::Tiny)[0].graph.num_edges();
        let small = test_graphs(Scale::Small)[0].graph.num_edges();
        assert!(small > tiny);
    }
}
