//! Compressed Sparse Row graphs and generators.
//!
//! The paper evaluates on real-world graphs (Table IV). We substitute
//! deterministic synthetic generators per *domain*: the performance
//! phenomena Phloem exercises depend on degree distribution, diameter,
//! and locality — which the generators control — not on the particular
//! instances. All generators are seeded and reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// An undirected graph in CSR form (both edge directions stored).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// Number of vertices.
    pub num_vertices: usize,
    /// CSR offsets, length `num_vertices + 1`.
    pub offsets: Vec<i64>,
    /// Flattened neighbor lists.
    pub edges: Vec<i64>,
}

impl Graph {
    /// Builds a CSR graph from an adjacency list, deduplicating edges
    /// and removing self-loops.
    pub fn from_adjacency(mut adj: Vec<Vec<u32>>) -> Graph {
        let n = adj.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut edges = Vec::new();
        offsets.push(0);
        for (u, nbrs) in adj.iter_mut().enumerate() {
            nbrs.sort_unstable();
            nbrs.dedup();
            for &v in nbrs.iter() {
                if v as usize != u {
                    edges.push(v as i64);
                }
            }
            offsets.push(edges.len() as i64);
        }
        Graph {
            num_vertices: n,
            offsets,
            edges,
        }
    }

    /// Number of directed edges stored (2x undirected edge count).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Average (directed) degree.
    pub fn avg_degree(&self) -> f64 {
        self.num_edges() as f64 / self.num_vertices.max(1) as f64
    }

    /// Degree of a vertex.
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Neighbors of a vertex.
    pub fn neighbors(&self, v: usize) -> &[i64] {
        let s = self.offsets[v] as usize;
        let e = self.offsets[v + 1] as usize;
        &self.edges[s..e]
    }

    /// The maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Checks CSR invariants: monotone offsets, in-range neighbor ids,
    /// no self-loops.
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.len() != self.num_vertices + 1 {
            return Err("offsets length".into());
        }
        if self.offsets[0] != 0 || *self.offsets.last().unwrap() != self.edges.len() as i64 {
            return Err("offset endpoints".into());
        }
        for w in self.offsets.windows(2) {
            if w[1] < w[0] {
                return Err("offsets not monotone".into());
            }
        }
        for (u, w) in self.offsets.windows(2).enumerate() {
            for &v in &self.edges[w[0] as usize..w[1] as usize] {
                if v < 0 || v as usize >= self.num_vertices {
                    return Err(format!("edge target {v} out of range"));
                }
                if v as usize == u {
                    return Err(format!("self loop at {u}"));
                }
            }
        }
        Ok(())
    }

    /// Reference BFS (host-side oracle): distances from `root`,
    /// `i64::MAX` for unreachable vertices.
    pub fn bfs_distances(&self, root: usize) -> Vec<i64> {
        let mut dist = vec![i64::MAX; self.num_vertices];
        let mut fringe = vec![root as i64];
        dist[root] = 0;
        let mut d = 0;
        while !fringe.is_empty() {
            d += 1;
            let mut next = Vec::new();
            for &u in &fringe {
                for &v in self.neighbors(u as usize) {
                    if dist[v as usize] == i64::MAX {
                        dist[v as usize] = d;
                        next.push(v);
                    }
                }
            }
            fringe = next;
        }
        dist
    }
}

/// Relabels vertices with a seeded random permutation. Real-world graph
/// files do not enumerate vertices in memory-layout order, so neighbor
/// ids are scattered; without this, grid generators would make indirect
/// accesses artificially cache-friendly.
fn permute_labels(adj: Vec<Vec<u32>>, seed: u64) -> Vec<Vec<u32>> {
    let n = adj.len();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_CAFE);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    // Block-local Fisher-Yates: real graph files preserve coarse
    // locality (e.g. geographic ordering in road networks) but not
    // line-level sequentiality. Shuffling within 4 Ki-vertex blocks
    // breaks cache-line and prefetcher friendliness while keeping the
    // BFS wavefront's working set compact, as in the real inputs.
    const BLOCK: usize = 4096;
    let mut start = 0;
    while start < n {
        let end = (start + BLOCK).min(n);
        for i in (start + 1..end).rev() {
            let j = rng.gen_range(start..=i);
            perm.swap(i, j);
        }
        start = end;
    }
    let mut out = vec![Vec::new(); n];
    for (u, nbrs) in adj.into_iter().enumerate() {
        let nu = perm[u] as usize;
        out[nu] = nbrs.into_iter().map(|v| perm[v as usize]).collect();
    }
    out
}

fn add_undirected(adj: &mut [Vec<u32>], u: usize, v: usize) {
    if u == v {
        return;
    }
    adj[u].push(v as u32);
    adj[v].push(u as u32);
}

/// Road-network-like graph: a jittered 2D grid (4-neighborhood with
/// random deletions and occasional diagonals). Bounded degree, huge
/// diameter — matches `USA-road-d` style inputs (avg deg ~2.4-2.8).
pub fn road_network(side: usize, seed: u64) -> Graph {
    let n = side * side;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut adj = vec![Vec::new(); n];
    for y in 0..side {
        for x in 0..side {
            let u = y * side + x;
            if x + 1 < side && rng.gen_bool(0.75) {
                add_undirected(&mut adj, u, u + 1);
            }
            if y + 1 < side && rng.gen_bool(0.75) {
                add_undirected(&mut adj, u, u + side);
            }
            if x + 1 < side && y + 1 < side && rng.gen_bool(0.05) {
                add_undirected(&mut adj, u, u + side + 1);
            }
        }
    }
    // Stitch a spanning backbone so BFS reaches everything.
    for u in 1..n {
        if adj[u].is_empty() {
            add_undirected(&mut adj, u, u - 1);
        }
    }
    Graph::from_adjacency(permute_labels(adj, seed))
}

/// Power-law graph via preferential attachment (Barabasi-Albert),
/// matching internet-topology style inputs (as-Skitter: avg deg ~13,
/// heavy-tailed degrees).
pub fn power_law(n: usize, edges_per_vertex: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut adj = vec![Vec::new(); n];
    // Endpoint pool implements preferential attachment.
    let mut pool: Vec<u32> = Vec::with_capacity(2 * n * edges_per_vertex);
    let m0 = (edges_per_vertex + 1).min(n);
    for u in 0..m0 {
        for v in 0..u {
            add_undirected(&mut adj, u, v);
            pool.push(u as u32);
            pool.push(v as u32);
        }
    }
    for u in m0..n {
        for _ in 0..edges_per_vertex {
            let v = if pool.is_empty() || rng.gen_bool(0.1) {
                rng.gen_range(0..u) as u32
            } else {
                pool[rng.gen_range(0..pool.len())]
            };
            add_undirected(&mut adj, u, v as usize);
            pool.push(u as u32);
            pool.push(v);
        }
    }
    Graph::from_adjacency(adj)
}

/// Mesh-like graph (dynamic-simulation traces, e.g. `hugetrace`):
/// near-planar with regular low degree.
pub fn mesh(side: usize, seed: u64) -> Graph {
    let n = side * side;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut adj = vec![Vec::new(); n];
    for y in 0..side {
        for x in 0..side {
            let u = y * side + x;
            if x + 1 < side {
                add_undirected(&mut adj, u, u + 1);
            }
            if y + 1 < side {
                add_undirected(&mut adj, u, u + side);
            }
            // Triangulate some cells.
            if x + 1 < side && y + 1 < side && rng.gen_bool(0.5) {
                add_undirected(&mut adj, u, u + side + 1);
            }
        }
    }
    Graph::from_adjacency(permute_labels(adj, seed))
}

/// Collaboration-network-like graph: small dense communities (cliques)
/// plus sparse random inter-community links (coAuthorsDBLP: avg ~6.4).
pub fn collaboration(communities: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sizes = Vec::with_capacity(communities);
    let mut n = 0usize;
    for _ in 0..communities {
        let s = rng.gen_range(2usize..=9);
        sizes.push(s);
        n += s;
    }
    let mut adj = vec![Vec::new(); n];
    let mut start = 0usize;
    let mut firsts = Vec::with_capacity(communities);
    for &s in &sizes {
        firsts.push(start);
        for a in start..start + s {
            for b in start..a {
                add_undirected(&mut adj, a, b);
            }
        }
        start += s;
    }
    // Inter-community bridges.
    for _ in 0..communities * 2 {
        let a = firsts[rng.gen_range(0..communities)];
        let b = firsts[rng.gen_range(0..communities)];
        add_undirected(&mut adj, a, b);
    }
    // Connect sequential communities so the graph is connected.
    for w in firsts.windows(2) {
        add_undirected(&mut adj, w[0], w[1]);
    }
    Graph::from_adjacency(permute_labels(adj, seed))
}

/// Uniform random graph (circuit-simulation style irregularity,
/// e.g. `Freescale1`): each vertex gets `avg_degree/2` random endpoints.
pub fn uniform_random(n: usize, avg_degree: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut adj = vec![Vec::new(); n];
    let half = (avg_degree / 2).max(1);
    for u in 0..n {
        for _ in 0..half {
            let v = rng.gen_range(0..n);
            add_undirected(&mut adj, u, v);
        }
    }
    // Ring backbone for connectivity.
    for u in 1..n {
        if rng.gen_bool(0.05) || adj[u].is_empty() {
            add_undirected(&mut adj, u, u - 1);
        }
    }
    Graph::from_adjacency(adj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_valid_csr() {
        for g in [
            road_network(40, 1),
            power_law(2000, 6, 2),
            mesh(30, 3),
            collaboration(300, 4),
            uniform_random(1500, 6, 5),
        ] {
            g.validate().expect("valid CSR");
            assert!(g.num_edges() > g.num_vertices / 2);
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(road_network(20, 7), road_network(20, 7));
        assert_ne!(power_law(500, 4, 1), power_law(500, 4, 2));
    }

    #[test]
    fn power_law_has_heavy_tail() {
        let g = power_law(4000, 6, 11);
        let avg = g.avg_degree();
        let max = g.max_degree() as f64;
        assert!(
            max > 8.0 * avg,
            "power-law max degree {max} should dwarf avg {avg}"
        );
    }

    #[test]
    fn road_network_has_bounded_degree_and_large_diameter() {
        let g = road_network(50, 13);
        assert!(g.max_degree() <= 8);
        let d = g.bfs_distances(0);
        let far = d.iter().filter(|&&x| x != i64::MAX).max().unwrap();
        assert!(*far > 40, "grid diameter should be large, got {far}");
    }

    #[test]
    fn bfs_oracle_reaches_connected_component() {
        let g = mesh(20, 1);
        let d = g.bfs_distances(0);
        let unreachable = d.iter().filter(|&&x| x == i64::MAX).count();
        assert_eq!(unreachable, 0, "mesh is connected");
        assert_eq!(d[0], 0);
    }
}
