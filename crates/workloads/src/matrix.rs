//! Sparse matrices (CSR) and generators mirroring Table V's input
//! categories by size and average nonzeros per row.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A sparse matrix in CSR form with `f64` values.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SparseMatrix {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Row pointers, length `rows + 1`.
    pub row_ptr: Vec<i64>,
    /// Column indices, sorted within each row.
    pub col_idx: Vec<i64>,
    /// Nonzero values.
    pub vals: Vec<f64>,
}

impl SparseMatrix {
    /// Builds from per-row `(col, val)` lists; sorts and deduplicates
    /// (last value wins).
    pub fn from_rows(rows: usize, cols: usize, mut data: Vec<Vec<(i64, f64)>>) -> SparseMatrix {
        assert_eq!(data.len(), rows);
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        for r in data.iter_mut() {
            r.sort_by_key(|(c, _)| *c);
            r.dedup_by_key(|(c, _)| *c);
            for &(c, v) in r.iter() {
                debug_assert!((c as usize) < cols);
                col_idx.push(c);
                vals.push(v);
            }
            row_ptr.push(col_idx.len() as i64);
        }
        SparseMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Average nonzeros per row.
    pub fn avg_nnz_per_row(&self) -> f64 {
        self.nnz() as f64 / self.rows.max(1) as f64
    }

    /// Nonzeros of one row as `(col, val)` pairs.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (i64, f64)> + '_ {
        let s = self.row_ptr[r] as usize;
        let e = self.row_ptr[r + 1] as usize;
        self.col_idx[s..e]
            .iter()
            .copied()
            .zip(self.vals[s..e].iter().copied())
    }

    /// The transpose (used as CSC for inner-product SpMM).
    pub fn transpose(&self) -> SparseMatrix {
        let mut data = vec![Vec::new(); self.cols];
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                data[c as usize].push((r as i64, v));
            }
        }
        SparseMatrix::from_rows(self.cols, self.rows, data)
    }

    /// Dense matrix-vector product oracle: `y = A x`.
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|r| self.row(r).map(|(c, v)| v * x[c as usize]).sum())
            .collect()
    }

    /// Checks CSR invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.row_ptr.len() != self.rows + 1 || self.col_idx.len() != self.vals.len() {
            return Err("length mismatch".into());
        }
        if self.row_ptr[0] != 0 || *self.row_ptr.last().unwrap() != self.nnz() as i64 {
            return Err("row_ptr endpoints".into());
        }
        for r in 0..self.rows {
            let s = self.row_ptr[r] as usize;
            let e = self.row_ptr[r + 1] as usize;
            if e < s {
                return Err("row_ptr not monotone".into());
            }
            for w in self.col_idx[s..e].windows(2) {
                if w[1] <= w[0] {
                    return Err(format!("row {r} columns not strictly sorted"));
                }
            }
            for &c in &self.col_idx[s..e] {
                if c < 0 || c as usize >= self.cols {
                    return Err(format!("column {c} out of range"));
                }
            }
        }
        Ok(())
    }
}

/// A square matrix with uniformly random column positions per row
/// (graph-as-matrix style inputs: `amazon0312`, `p2p-Gnutella31`).
pub fn random_square(n: usize, avg_nnz: f64, seed: u64) -> SparseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = vec![Vec::new(); n];
    for row in data.iter_mut() {
        // Poisson-ish row lengths around the target.
        let lo = (avg_nnz * 0.5).floor() as usize;
        let hi = (avg_nnz * 1.5).ceil() as usize;
        let k = rng.gen_range(lo..=hi.max(lo + 1)).min(n);
        for _ in 0..k {
            row.push((rng.gen_range(0..n) as i64, rng.gen_range(0.1..1.0)));
        }
    }
    SparseMatrix::from_rows(n, n, data)
}

/// A banded matrix (FEM/structural inputs: `pwtk`, `cant`, `rma10`):
/// nonzeros clustered near the diagonal in blocks.
pub fn banded(n: usize, band: usize, avg_nnz: f64, seed: u64) -> SparseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = vec![Vec::new(); n];
    for (r, row) in data.iter_mut().enumerate() {
        let k = (avg_nnz * rng.gen_range(0.7..1.3)) as usize;
        row.push((r as i64, rng.gen_range(0.5..2.0))); // diagonal
        for _ in 0..k {
            let off = rng.gen_range(0..=band) as i64 * if rng.gen_bool(0.5) { 1 } else { -1 };
            let c = (r as i64 + off).clamp(0, n as i64 - 1);
            row.push((c, rng.gen_range(0.1..1.0)));
        }
    }
    SparseMatrix::from_rows(n, n, data)
}

/// A power-law matrix (web/social-graph style: heavy-tailed rows,
/// e.g. `wiki-Vote`, `email-Enron`).
pub fn power_law_matrix(n: usize, avg_nnz: f64, seed: u64) -> SparseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = vec![Vec::new(); n];
    let total = (n as f64 * avg_nnz) as usize;
    for _ in 0..total {
        // Zipf-ish row selection: square a uniform to bias low rows.
        let u: f64 = rng.gen();
        let r = ((u * u) * n as f64) as usize % n;
        data[r].push((rng.gen_range(0..n) as i64, rng.gen_range(0.1..1.0)));
    }
    // Guarantee nonempty rows so CSR paths always run.
    for (r, row) in data.iter_mut().enumerate() {
        if row.is_empty() {
            row.push(((r as i64 + 1) % n as i64, 0.5));
        }
    }
    SparseMatrix::from_rows(n, n, data)
}

/// A dense matrix stored row-major (for SDDMM's dense operands).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Row-major data.
    pub data: Vec<f64>,
}

impl DenseMatrix {
    /// A random dense matrix.
    pub fn random(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        DenseMatrix {
            rows,
            cols,
            data: (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        }
    }

    /// Element accessor.
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_validate() {
        for m in [
            random_square(500, 6.0, 1),
            banded(500, 8, 10.0, 2),
            power_law_matrix(500, 12.0, 3),
        ] {
            m.validate().expect("valid CSR");
            assert!(m.nnz() > 0);
        }
    }

    #[test]
    fn transpose_involutes() {
        let m = random_square(200, 5.0, 9);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn spmv_oracle_on_identityish() {
        let m = SparseMatrix::from_rows(2, 2, vec![vec![(0, 2.0)], vec![(1, 3.0)]]);
        assert_eq!(m.spmv(&[1.0, 1.0]), vec![2.0, 3.0]);
    }

    #[test]
    fn banded_is_clustered() {
        let m = banded(400, 10, 8.0, 4);
        let mut far = 0;
        for r in 0..m.rows {
            for (c, _) in m.row(r) {
                if (c - r as i64).abs() > 10 {
                    far += 1;
                }
            }
        }
        assert_eq!(far, 0, "banded matrix must stay within the band");
    }

    #[test]
    fn avg_nnz_close_to_target() {
        let m = random_square(2000, 8.0, 5);
        let a = m.avg_nnz_per_row();
        assert!((6.0..10.0).contains(&a), "avg nnz {a} off target");
    }
}
