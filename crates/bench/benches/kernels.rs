//! Microbenchmarks (wall-clock, via `phloem_bench::microbench`) for the substrate components: compiler
//! throughput, simulator speed, interpreter speed, generators.

use phloem_bench::microbench::Criterion;
use phloem_benchsuite::bfs;
use phloem_compiler::{compile_static, CompileOptions};
use phloem_ir::{interp, Value};
use phloem_workloads::graph;
use pipette_sim::{Machine, MachineConfig};

fn bench_compiler(c: &mut Criterion) {
    let kernel = bfs::kernel();
    c.bench_function("compile_static_bfs_4stage", |b| {
        b.iter(|| compile_static(&kernel, 4, &CompileOptions::default()).unwrap())
    });
    c.bench_function("enumerate_pipelines_bfs", |b| {
        b.iter(|| {
            phloem_compiler::search::enumerate_pipelines(
                &kernel,
                &phloem_compiler::search::SearchOptions::default(),
            )
        })
    });
}

fn bench_simulator(c: &mut Criterion) {
    let g = graph::power_law(800, 3, 7);
    let kernel = bfs::kernel();
    let pipe = compile_static(&kernel, 4, &CompileOptions::default()).unwrap();
    let serial = {
        let mut p = phloem_ir::Pipeline::new("serial");
        p.add_stage(phloem_ir::StageProgram::plain(kernel.clone()), 0);
        p
    };
    let cfg = MachineConfig::paper_1core();
    c.bench_function("simulate_bfs_round_serial", |b| {
        b.iter(|| {
            let (mut mem, arrays) = bfs::build_mem(&g, 0, 1);
            mem.store(arrays.fringe_len, 0, Value::I64(1)).unwrap();
            Machine::run_once(&cfg, &serial, mem, &[("cur_dist", Value::I64(1))]).unwrap()
        })
    });
    c.bench_function("simulate_bfs_round_pipelined", |b| {
        b.iter(|| {
            let (mut mem, arrays) = bfs::build_mem(&g, 0, 1);
            mem.store(arrays.fringe_len, 0, Value::I64(1)).unwrap();
            Machine::run_once(&cfg, &pipe, mem, &[("cur_dist", Value::I64(1))]).unwrap()
        })
    });
    c.bench_function("functional_interp_bfs_round", |b| {
        b.iter(|| {
            let (mut mem, arrays) = bfs::build_mem(&g, 0, 1);
            mem.store(arrays.fringe_len, 0, Value::I64(1)).unwrap();
            interp::run_serial(&kernel, mem, &[("cur_dist", Value::I64(1))]).unwrap()
        })
    });
}

fn bench_workloads(c: &mut Criterion) {
    c.bench_function("generate_road_network_10k", |b| {
        b.iter(|| graph::road_network(100, 42))
    });
    c.bench_function("generate_power_law_10k", |b| {
        b.iter(|| graph::power_law(10_000, 6, 42))
    });
}

fn main() {
    let mut c = Criterion::default().sample_size(10);
    bench_compiler(&mut c);
    bench_simulator(&mut c);
    bench_workloads(&mut c);
}
