//! Micro-harness wrappers (via `phloem_bench::microbench`) running miniature versions of each figure's
//! experiment, so `cargo bench` exercises every harness path. The full
//! tables come from the `fig*`/`tables` binaries (see the crate docs).

use phloem_bench::microbench::Criterion;
use phloem_benchsuite::fig14::{run_bfs_replicated, RepVariant};
use phloem_benchsuite::taco::{self, TacoApp};
use phloem_benchsuite::{bfs, cc, Variant};
use phloem_compiler::PassConfig;
use phloem_workloads::{graph, matrix};
use pipette_sim::MachineConfig;

fn fig6_mini(c: &mut Criterion) {
    let g = graph::road_network(40, 5);
    let cfg = MachineConfig::paper_1core();
    let loads = bfs::kernel_loads();
    let cuts = vec![loads[2], loads[4], loads[5]];
    c.bench_function("fig6_bfs_ablation_mini", |b| {
        b.iter(|| {
            for passes in [PassConfig::queues_only(), PassConfig::all()] {
                let v = Variant::Phloem {
                    passes,
                    stages: 4,
                    cuts: cuts.clone(),
                };
                bfs::run(&v, &g, 0, &cfg, "mini").unwrap();
            }
        })
    });
}

fn fig9_mini(c: &mut Criterion) {
    let g = graph::collaboration(80, 3);
    let cfg = MachineConfig::paper_1core();
    c.bench_function("fig9_bfs_variants_mini", |b| {
        b.iter(|| {
            for v in [Variant::Serial, Variant::phloem(), Variant::Manual] {
                bfs::run(&v, &g, 0, &cfg, "mini").unwrap();
            }
        })
    });
    c.bench_function("fig9_cc_variants_mini", |b| {
        b.iter(|| {
            for v in [Variant::Serial, Variant::phloem()] {
                cc::run(&v, &g, &cfg, "mini").unwrap();
            }
        })
    });
}

fn fig12_mini(c: &mut Criterion) {
    let a = matrix::random_square(120, 5.0, 9);
    let cfg = MachineConfig::paper_1core();
    c.bench_function("fig12_spmv_mini", |b| {
        b.iter(|| {
            for v in [Variant::Serial, Variant::phloem()] {
                taco::run(TacoApp::Spmv, &v, &a, &cfg, "mini").unwrap();
            }
        })
    });
}

fn fig13_mini(c: &mut Criterion) {
    let kernel = bfs::kernel();
    c.bench_function("fig13_enumerate_and_check", |b| {
        b.iter(|| {
            phloem_compiler::search::enumerate_pipelines(
                &kernel,
                &phloem_compiler::search::SearchOptions::default(),
            )
            .len()
        })
    });
}

fn fig14_mini(c: &mut Criterion) {
    let g = graph::mesh(12, 2);
    let cfg = MachineConfig::paper_multicore(4);
    c.bench_function("fig14_replicated_bfs_mini", |b| {
        b.iter(|| run_bfs_replicated(RepVariant::Phloem, &g, 0, &cfg, "mini"))
    });
}

fn main() {
    let mut c = Criterion::default().sample_size(10);
    fig6_mini(&mut c);
    fig9_mini(&mut c);
    fig12_mini(&mut c);
    fig13_mini(&mut c);
    fig14_mini(&mut c);
}
