//! A tiny wall-clock micro-benchmark harness with a Criterion-shaped
//! API (`Criterion::bench_function` / `Bencher::iter`), used by the
//! `[[bench]]` targets since the offline build cannot fetch the real
//! `criterion` crate (see `crates/shims/README.md`).

use std::time::{Duration, Instant};

/// Harness entry point: collects samples and prints one line per
/// benchmark (`name  median ns/iter  (samples x iters)`).
pub struct Criterion {
    sample_size: usize,
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            target_sample_time: Duration::from_millis(50),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(3);
        self
    }

    /// Runs one benchmark: calibrates an iteration count, takes samples,
    /// and prints the median time per iteration.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        // Calibration: find iters/sample so one sample is long enough to
        // time reliably.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= self.target_sample_time || iters >= 1 << 20 {
                break;
            }
            let grow = (self.target_sample_time.as_nanos() as u64)
                .checked_div(b.elapsed.as_nanos().max(1) as u64)
                .unwrap_or(2)
                .clamp(2, 16);
            iters = iters.saturating_mul(grow);
        }
        let mut samples: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed.as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        println!(
            "{name:<40} {:>14}/iter   ({} samples x {iters} iters)",
            fmt_ns(median),
            samples.len(),
        );
    }
}

/// Passed to the benchmark closure; times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `f` (results are passed through
    /// [`std::hint::black_box`] so the work is not optimized away).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed += start.elapsed();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_counts_iters() {
        let mut c = Criterion::default().sample_size(3);
        let mut total = 0u64;
        c.bench_function("noop", |b| b.iter(|| total += 1));
        assert!(total > 0);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.0), "12.0 ns");
        assert!(fmt_ns(2.5e3).ends_with("us"));
        assert!(fmt_ns(2.5e6).ends_with("ms"));
        assert!(fmt_ns(2.5e9).ends_with('s'));
    }
}
