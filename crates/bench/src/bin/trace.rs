//! Perfetto trace + profile report for any benchsuite workload.
//!
//! Runs one benchmark variant with the tracing layer on — a
//! [`PerfettoSink`] (Chrome `trace.json`, loadable in Perfetto/
//! `chrome://tracing`) teed with a [`MetricsSink`] (per-stage
//! utilization, queue occupancy, critical-stage attribution) — and
//! writes the trace next to a human-readable profile on stdout.
//!
//! ```text
//! trace [app] [input] [--variant phloem|serial|manual|dp]
//!       [--out trace.json] [--no-ra] [--smoke]
//! ```
//!
//! * `app`: bfs | cc | prd | radii | spmm | taco-spmv | taco-sddmm |
//!   taco-residual | taco-mtmul (default: bfs)
//! * `input`: substring of a catalog input name (default: the first
//!   test input of the app's catalog)
//! * `--variant`: which implementation to trace (default: phloem)
//! * `--out FILE`: where to write the Chrome trace (default
//!   `trace.json`)
//! * `--no-ra`: drop RA FSM transition instants (they dominate event
//!   counts on RA-heavy pipelines)
//! * `--smoke`: CI mode — run bfs on the smallest test graph, validate
//!   the emitted JSON against the Chrome trace schema in-process, write
//!   nothing unless `--out` was given explicitly.
//!
//! `SCALE=tiny|small|full` selects the input catalog as usual.
//! The run also cross-checks the trace against the run's own
//! [`pipette_sim::RunStats`]-derived measurement: enabling tracing must
//! not change a single simulated cycle, so the measured cycles are
//! asserted equal to an untraced run of the same configuration.

use phloem_bench::{header, machine, run_graph_app, run_graph_app_traced, scale};
use phloem_benchsuite::taco::{self, TacoApp};
use phloem_benchsuite::{spmm, Measurement, Variant};
use phloem_ir::Trap;
use phloem_workloads::{spmm_test_matrices, taco_test_matrices, test_graphs};
use pipette_sim::{MetricsSink, PerfettoSink, TeeSink, TraceSink};

struct Args {
    app: String,
    input: Option<String>,
    variant: Variant,
    out: String,
    out_explicit: bool,
    with_ra: bool,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        app: "bfs".into(),
        input: None,
        variant: Variant::phloem(),
        out: "trace.json".into(),
        out_explicit: false,
        with_ra: true,
        smoke: false,
    };
    let mut positional = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                args.out = it.next().expect("--out needs a file name");
                args.out_explicit = true;
            }
            "--variant" => {
                let v = it.next().expect("--variant needs a name");
                args.variant = match v.as_str() {
                    "phloem" => Variant::phloem(),
                    "serial" => Variant::Serial,
                    "manual" => Variant::Manual,
                    "dp" => Variant::DataParallel(machine().smt_threads),
                    other => panic!("unknown variant {other} (phloem|serial|manual|dp)"),
                };
            }
            "--no-ra" => args.with_ra = false,
            "--smoke" => args.smoke = true,
            other if other.starts_with("--") => panic!("unknown flag {other}"),
            other => positional.push(other.to_string()),
        }
    }
    if let Some(app) = positional.first() {
        args.app = app.clone();
    }
    args.input = positional.get(1).cloned();
    args
}

/// Picks the catalog input whose name contains `want` (first input when
/// `want` is `None`).
fn pick<T>(inputs: Vec<T>, name: impl Fn(&T) -> &str, want: &Option<String>) -> T {
    let names: Vec<String> = inputs.iter().map(|i| name(i).to_string()).collect();
    match want {
        None => inputs.into_iter().next().expect("non-empty catalog"),
        Some(w) => inputs
            .into_iter()
            .find(|i| name(i).contains(w.as_str()))
            .unwrap_or_else(|| panic!("no input matching `{w}` in {names:?}")),
    }
}

/// Runs the selected workload twice — once traced, once not — and
/// returns `(input name, untraced, traced, sink)`.
#[allow(clippy::type_complexity)]
fn run(
    args: &Args,
    sink: Box<dyn TraceSink>,
) -> (
    String,
    Result<Measurement, Trap>,
    Result<Measurement, Trap>,
    Box<dyn TraceSink>,
) {
    let cfg = machine();
    let v = &args.variant;
    match args.app.as_str() {
        "bfs" | "cc" | "prd" | "radii" => {
            let app = match args.app.as_str() {
                "bfs" => "BFS",
                "cc" => "CC",
                "prd" => "PRD",
                _ => "Radii",
            };
            let gi = pick(test_graphs(scale()), |g| g.name, &args.input);
            let plain = run_graph_app(app, v, &gi.graph, &cfg, gi.name);
            let (traced, sink) = run_graph_app_traced(app, v, &gi.graph, &cfg, gi.name, sink);
            (gi.name.to_string(), plain, traced, sink)
        }
        "spmm" => {
            let mi = pick(spmm_test_matrices(scale()), |m| m.name, &args.input);
            let bt = mi.matrix.transpose();
            let plain = spmm::run(v, &mi.matrix, &bt, &cfg, mi.name);
            let (traced, sink) = spmm::run_traced(v, &mi.matrix, &bt, &cfg, mi.name, sink);
            (mi.name.to_string(), plain, traced, sink)
        }
        taco_name if taco_name.starts_with("taco-") => {
            let app = match taco_name {
                "taco-spmv" => TacoApp::Spmv,
                "taco-sddmm" => TacoApp::Sddmm,
                "taco-residual" => TacoApp::Residual,
                "taco-mtmul" => TacoApp::Mtmul,
                other => panic!("unknown taco app {other}"),
            };
            let mi = pick(taco_test_matrices(scale()), |m| m.name, &args.input);
            let plain = taco::run(app, v, &mi.matrix, &cfg, mi.name);
            let (traced, sink) = taco::run_traced(app, v, &mi.matrix, &cfg, mi.name, sink);
            (mi.name.to_string(), plain, traced, sink)
        }
        other => panic!("unknown app {other} (bfs|cc|prd|radii|spmm|taco-*)"),
    }
}

// ---------------------------------------------------------------------
// Minimal Chrome-trace schema validation (no JSON dependency): checks
// the envelope and that every event object carries the fields Perfetto
// requires for its phase. Structural, not a full JSON parser — but it
// rejects truncated output, unbalanced braces, and missing fields,
// which is what the CI smoke step is for.
// ---------------------------------------------------------------------

fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let body = json.trim();
    if !body.starts_with('{') || !body.ends_with('}') {
        return Err("trace is not a JSON object".into());
    }
    if !body.contains("\"traceEvents\"") {
        return Err("missing traceEvents key".into());
    }
    if !body.contains("\"displayTimeUnit\"") {
        return Err("missing displayTimeUnit key".into());
    }
    // Balance check over the whole document (string-aware).
    let (mut depth, mut in_str, mut esc) = (0i64, false, false);
    let mut max_depth = 0i64;
    for c in body.chars() {
        if in_str {
            match (esc, c) {
                (true, _) => esc = false,
                (false, '\\') => esc = true,
                (false, '"') => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => {
                depth += 1;
                max_depth = max_depth.max(depth);
            }
            '}' | ']' => depth -= 1,
            _ => {}
        }
        if depth < 0 {
            return Err("unbalanced braces".into());
        }
    }
    if depth != 0 || in_str {
        return Err("truncated JSON".into());
    }
    // Per-event field checks. PerfettoSink emits one event object per
    // line inside the traceEvents array; validate each.
    let mut events = 0usize;
    for line in body.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with("{\"name\":") {
            continue;
        }
        events += 1;
        let phase = line
            .split("\"ph\":\"")
            .nth(1)
            .and_then(|r| r.chars().next())
            .ok_or_else(|| format!("event missing ph field: {line}"))?;
        let need: &[&str] = match phase {
            'X' => &["\"ts\":", "\"dur\":", "\"pid\":", "\"tid\":"],
            'C' => &["\"ts\":", "\"pid\":", "\"args\":"],
            'I' | 'i' => &["\"ts\":", "\"pid\":", "\"s\":"],
            'M' => &["\"pid\":", "\"args\":"],
            other => return Err(format!("unexpected phase {other:?}: {line}")),
        };
        for field in need {
            if !line.contains(field) {
                return Err(format!("phase {phase} event missing {field}: {line}"));
            }
        }
    }
    if events == 0 {
        return Err("no trace events emitted".into());
    }
    Ok(events)
}

fn main() {
    let mut args = parse_args();
    if args.smoke {
        // CI smoke: smallest graph, fixed app, validation mandatory.
        args.app = "bfs".into();
        args.input = None;
    }
    let tee = TeeSink::new(vec![
        Box::new(PerfettoSink::new().with_ra_transitions(args.with_ra)),
        Box::new(MetricsSink::new()),
    ]);
    let (input, plain, traced, sink) = run(&args, Box::new(tee));

    header(&format!("trace: {} / {input} / {}", args.app, {
        args.variant.label()
    }));
    match (&plain, &traced) {
        (Ok(p), Ok(t)) => {
            assert_eq!(
                p.cycles, t.cycles,
                "tracing changed simulated cycles ({} vs {})",
                p.cycles, t.cycles
            );
            println!(
                "  {} simulated cycles (identical traced and untraced)",
                t.cycles
            );
        }
        (Err(p), Err(t)) => {
            println!("  both runs trapped identically: {t}");
            assert_eq!(p.to_string(), t.to_string(), "traced/untraced traps differ");
        }
        (p, t) => panic!("traced/untraced disagree: {p:?} vs {t:?}"),
    }

    let tee = sink.downcast_ref::<TeeSink>().expect("tee sink");
    let sinks = tee.sinks();
    let perfetto = sinks[0]
        .downcast_ref::<PerfettoSink>()
        .expect("perfetto sink");
    let metrics = sinks[1]
        .downcast_ref::<MetricsSink>()
        .expect("metrics sink");

    print!("{}", metrics.report());

    let json = perfetto.to_json();
    match validate_chrome_trace(&json) {
        Ok(n) => println!("  trace: {n} Chrome trace events, schema OK"),
        Err(e) => panic!("emitted trace failed schema validation: {e}"),
    }
    if !args.smoke || args.out_explicit {
        std::fs::write(&args.out, &json).expect("write trace file");
        println!(
            "  wrote {} ({} bytes); load it in ui.perfetto.dev",
            args.out,
            json.len()
        );
    } else {
        println!("  smoke mode: schema validated, no file written; OK");
    }
}
