//! Fig. 10: breakdown of core cycles (issue / backend stalls / queue
//! stalls / other), normalized to the serial baseline, per benchmark.
//!
//! Paper shape: pipelined versions trade backend (memory) stalls for
//! queue stalls; Phloem's BFS runs slightly fewer instructions and
//! blocks less than manual; CC and PRD show more memory stalls than
//! their manual versions.

use phloem_bench::{fig9_matrix, header, machine};
use phloem_benchsuite::gmean;

fn main() {
    header("Fig. 10: cycle breakdown normalized to serial");
    let cfg = machine();
    let matrix = fig9_matrix(false);
    println!(
        "{:<8}{:<16}{:>10}{:>10}{:>10}{:>10}{:>12}",
        "app", "variant", "issue", "backend", "queue", "other", "total(norm)"
    );
    for (app, per_input) in &matrix.rows {
        // Serial totals per input normalize each variant's breakdown.
        let serial_tot: Vec<f64> = per_input
            .iter()
            .map(|ms| ms[0].stats.cycle_breakdown(cfg.issue_width).total())
            .collect();
        let nvars = per_input[0].len();
        for k in 0..nvars {
            let mut issue = Vec::new();
            let mut backend = Vec::new();
            let mut queue = Vec::new();
            let mut other = Vec::new();
            for (ms, st) in per_input.iter().zip(&serial_tot) {
                let b = ms[k].stats.cycle_breakdown(cfg.issue_width);
                issue.push(b.issue / st);
                backend.push(b.backend / st);
                queue.push(b.queue / st);
                other.push(b.other / st);
            }
            let (i, b, q, o) = (
                gmean(issue.iter().map(|v| v.max(1e-9))),
                gmean(backend.iter().map(|v| v.max(1e-9))),
                gmean(queue.iter().map(|v| v.max(1e-9))),
                gmean(other.iter().map(|v| v.max(1e-9))),
            );
            println!(
                "{:<8}{:<16}{:>10.3}{:>10.3}{:>10.3}{:>10.3}{:>12.3}",
                app,
                per_input[0][k].variant.split('[').next().unwrap_or(""),
                i,
                b,
                q,
                o,
                i + b + q + o
            );
        }
        println!();
    }
    println!("paper: decoupled versions convert backend stalls into (smaller)");
    println!("       queue stalls; S/D/P/M legend maps to the variants above.");
}
