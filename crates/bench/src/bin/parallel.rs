//! Host-parallel scaling (`BENCH_parallel.json`): wall-clock speedup of
//! the work-stealing fleet (`phloem-pool`) on the repo's two heaviest
//! fleet workloads, at worker counts {1, 2, 4, 8}:
//!
//! * **PGO search** — every BFS candidate pipeline profiled over the
//!   training graphs (the Fig. 13 inner loop, the simulator's heaviest
//!   consumer); candidate costs are wildly uneven, which is exactly
//!   where stealing beats the old static chunking.
//! * **fuzzdiff** — a fixed-seed differential sweep (genome checks are
//!   pure and independent).
//!
//! Determinism is asserted, not assumed: at every worker count, and on
//! a repeated run at the same count, the per-candidate simulated-cycle
//! vector and the fuzz sweep's full report must be **byte-identical**
//! to the single-worker baseline. The pool schedules whole simulations
//! onto host threads and never touches the simulated clock, so any
//! difference is a bug.
//!
//! Speedup expectations are gated on the *host's* core count: a fleet
//! cannot scale past the hardware, so on a host with fewer cores than
//! workers the bench records the measured (flat) curve and notes the
//! limit instead of failing. With `--smoke` (CI) the workload shrinks,
//! no JSON is written, and a ≥1.5x-at-4-workers gate applies when the
//! host has ≥4 cores (loose bound: CI hosts are noisy and shared).
//!
//! `SCALE=tiny|small|full` sizes the PGO inputs as usual; `REPS=<n>`
//! (default 2) controls timed repetitions (best kept).

use std::time::Instant;

use phloem_bench::fuzz::{fuzz_sweep, render_failure, FuzzOutcome};
use phloem_bench::{header, machine, scale};
use phloem_benchsuite::{bfs, Variant};
use phloem_compiler::search::{enumerate_pipelines, SearchOptions};
use phloem_compiler::PassConfig;
use phloem_ir::LoadId;
use phloem_pool::Pool;
use phloem_workloads::{training_graphs, GraphInput};
use pipette_sim::MachineConfig;

/// Profiles one candidate cut set over the training graphs (total
/// simulated cycles; `None` when the candidate fails to compile or
/// run). Identical semantics at every worker count by construction.
fn profile_candidate(cuts: &[LoadId], cfg: &MachineConfig, graphs: &[GraphInput]) -> Option<u64> {
    let v = Variant::Phloem {
        passes: PassConfig::all(),
        stages: 4,
        cuts: cuts.to_vec(),
    };
    let mut total = 0u64;
    for gi in graphs {
        total += bfs::run(&v, &gi.graph, 0, cfg, gi.name).ok()?.cycles;
    }
    Some(total)
}

/// One timed PGO fleet at a worker count: wall seconds + the
/// per-candidate cycle vector (the determinism witness).
fn pgo_fleet(
    workers: usize,
    candidates: &[Vec<LoadId>],
    cfg: &MachineConfig,
    graphs: &[GraphInput],
) -> (f64, Vec<Option<u64>>) {
    let pool = Pool::new(workers);
    let t0 = Instant::now();
    let results = pool.map(candidates, |_i, cuts| profile_candidate(cuts, cfg, graphs));
    let secs = t0.elapsed().as_secs_f64();
    let per: Vec<Option<u64>> = results
        .into_iter()
        .map(|r| r.expect("candidate profiling panicked"))
        .collect();
    (secs, per)
}

/// One timed fuzz sweep at a worker count: wall seconds + the rendered
/// report (summary plus any failure renderings, the determinism
/// witness).
fn fuzz_fleet(workers: usize, seed: u64, count: u64) -> (f64, String) {
    let pool = Pool::new(workers);
    let t0 = Instant::now();
    let outcome = fuzz_sweep(seed, count, &pool, None);
    let secs = t0.elapsed().as_secs_f64();
    (secs, render_fuzz(seed, &outcome))
}

fn render_fuzz(seed: u64, o: &FuzzOutcome) -> String {
    let mut s = o.summary(seed);
    for (k, g, why) in &o.failures {
        s.push_str(&format!("\n[{k}] {}", render_failure(g, why)));
    }
    s
}

/// Best-of-reps wall time for one closure.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> (f64, T)) -> (f64, T) {
    let (mut best, mut witness) = f();
    for _ in 1..reps {
        let (secs, w) = f();
        if secs < best {
            best = secs;
        }
        witness = w;
    }
    (best, witness)
}

struct Row {
    workers: usize,
    pgo_secs: f64,
    pgo_speedup: f64,
    fuzz_secs: f64,
    fuzz_speedup: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps: usize = std::env::var("REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
        .max(1);
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cfg = machine();
    let kernel = bfs::kernel();
    let mut candidates: Vec<Vec<LoadId>> = enumerate_pipelines(&kernel, &SearchOptions::default())
        .into_iter()
        .map(|(cuts, _)| cuts)
        .collect();
    let graphs = training_graphs(scale());
    let (fuzz_seed, fuzz_count) = (0xBEEF_u64, if smoke { 60 } else { 400 });
    let worker_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };
    if smoke {
        candidates.truncate(8);
    }

    header("Host-parallel scaling: work-stealing fleet");
    println!(
        "  host cores: {host_cores}; PGO workload: {} candidates x {} graphs; \
         fuzz workload: {fuzz_count} genomes; {reps} reps (best kept)",
        candidates.len(),
        graphs.len()
    );

    // Single-worker baselines double as the determinism reference.
    let (pgo_base_secs, pgo_ref) = best_of(reps, || pgo_fleet(1, &candidates, &cfg, &graphs));
    let (fuzz_base_secs, fuzz_ref) = best_of(reps, || fuzz_fleet(1, fuzz_seed, fuzz_count));
    // Repeated single-worker run: same count, bit-identical results.
    let (_, pgo_again) = pgo_fleet(1, &candidates, &cfg, &graphs);
    assert_eq!(pgo_again, pgo_ref, "PGO fleet not reproducible at 1 worker");

    let mut rows = vec![Row {
        workers: 1,
        pgo_secs: pgo_base_secs,
        pgo_speedup: 1.0,
        fuzz_secs: fuzz_base_secs,
        fuzz_speedup: 1.0,
    }];
    for &w in worker_counts.iter().filter(|&&w| w > 1) {
        let (pgo_secs, pgo_per) = best_of(reps, || pgo_fleet(w, &candidates, &cfg, &graphs));
        assert_eq!(
            pgo_per, pgo_ref,
            "PGO fleet at {w} workers diverged from the 1-worker cycle vector"
        );
        let (fuzz_secs, fuzz_report) = best_of(reps, || fuzz_fleet(w, fuzz_seed, fuzz_count));
        assert_eq!(
            fuzz_report, fuzz_ref,
            "fuzz sweep at {w} workers diverged from the 1-worker report"
        );
        rows.push(Row {
            workers: w,
            pgo_secs,
            pgo_speedup: pgo_base_secs / pgo_secs,
            fuzz_secs,
            fuzz_speedup: fuzz_base_secs / fuzz_secs,
        });
    }

    println!("  determinism: bit-identical cycle vectors and fuzz reports at every worker count");
    println!(
        "  {:<8} {:>10} {:>9} {:>10} {:>9}",
        "workers", "pgo_s", "pgo_x", "fuzz_s", "fuzz_x"
    );
    for r in &rows {
        println!(
            "  {:<8} {:>10.3} {:>8.2}x {:>10.3} {:>8.2}x",
            r.workers, r.pgo_secs, r.pgo_speedup, r.fuzz_secs, r.fuzz_speedup
        );
    }

    // Scaling gates, bounded by the hardware: a w-worker fleet can at
    // best approach min(w, host_cores)x. Bounds are deliberately loose
    // (CI hosts are shared and noisy); a host with fewer cores than the
    // gate's worker count records its measured curve and notes the
    // limit instead of failing on physics.
    for r in &rows {
        // The fleet must never *cost* throughput: even oversubscribed
        // (8 workers on fewer cores), coarse tasks keep overhead small.
        assert!(
            r.pgo_speedup > 0.5 && r.fuzz_speedup > 0.5,
            "fleet overhead pathology at {} workers: pgo {:.2}x fuzz {:.2}x",
            r.workers,
            r.pgo_speedup,
            r.fuzz_speedup
        );
        let gate = match r.workers {
            4 if host_cores >= 4 => Some(1.5),
            8 if host_cores >= 8 => Some(3.0),
            _ => None,
        };
        match gate {
            Some(min) => assert!(
                r.pgo_speedup >= min,
                "PGO host scaling regression: {:.2}x at {} workers (gate {min}x, {host_cores} cores)",
                r.pgo_speedup,
                r.workers
            ),
            None if r.workers > host_cores => println!(
                "  note: {}-worker gate skipped, host has only {host_cores} core(s) \
                 (speedup is hardware-bounded at min(workers, cores))",
                r.workers
            ),
            None => {}
        }
    }

    if smoke {
        println!("  smoke mode: determinism + overhead gates held; OK");
        return;
    }

    let row_json = |r: &Row| {
        format!(
            "    {{ \"workers\": {}, \"pgo_wall_s\": {:.6}, \"pgo_speedup\": {:.4}, \
             \"fuzz_wall_s\": {:.6}, \"fuzz_speedup\": {:.4} }}",
            r.workers, r.pgo_secs, r.pgo_speedup, r.fuzz_secs, r.fuzz_speedup
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"parallel\",\n  \"pool\": \"phloem-pool work-stealing fleet \
         (per-worker deques, global injector, steal-half, park/unpark)\",\n  \
         \"host_cores\": {host_cores},\n  \"scale\": \"{:?}\",\n  \
         \"pgo_workload\": \"{} BFS candidate pipelines x {} training graphs\",\n  \
         \"fuzz_workload\": \"{fuzz_count} genomes, seed {fuzz_seed:#x}\",\n  \
         \"reps\": {reps},\n  \"scaling\": [\n{}\n  ],\n  \
         \"determinism\": \"per-candidate simulated-cycle vectors and full fuzz reports \
         asserted byte-identical at every worker count and across repeated runs; the pool \
         schedules whole simulations onto host threads and never touches the simulated \
         clock\",\n  \"note\": \"speedup is hardware-bounded at min(workers, host_cores): \
         gates (>=1.5x at 4 workers, >=3x at 8) apply only when the host has that many \
         cores; a host-limited recording keeps the measured curve with a note instead of \
         failing on physics. Wall times are best-of-reps to shed shared-host noise.\"\n}}\n",
        scale(),
        candidates.len(),
        graphs.len(),
        rows.iter().map(row_json).collect::<Vec<_>>().join(",\n"),
    );
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("  wrote BENCH_parallel.json");
}
