//! Fig. 14: BFS, CC, PageRank-Delta, and Radii replicated over 4 cores
//! x 4 SMT threads, compared to a single-core single-thread serial run,
//! a 16-thread data-parallel version, and the manually replicated
//! pipelines.
//!
//! Paper shape: manual BFS/CC reach ~12x/~7x, Phloem ~10x/~4x — both
//! beat data-parallel; Phloem's replicated Radii (2 stages x 8) beats
//! both; PRD beats data-parallel but reaches about half of manual
//! (whose merged stages allow a second level of update replication).

use phloem_bench::{header, machine, machine4, print_speedups, scale, SpeedupRow};
use phloem_benchsuite::fig14::{
    run_bfs_replicated, run_cc_replicated, run_prd_replicated, run_radii_replicated, RepVariant,
};
use phloem_benchsuite::{bfs, cc, prd, radii, run_guarded, Measurement, Variant};
use phloem_ir::Trap;
use phloem_workloads::test_graphs;

fn main() {
    header("Fig. 14: replicated pipelines on 4 cores x 4 threads");
    let cfg1 = machine();
    let cfg4 = machine4();
    let dp16 = Variant::DataParallel(16);
    let graphs = test_graphs(scale());
    let mut rows = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    // A variant that traps falls back to the serial baseline (1.00x)
    // and is reported at the end, so one bad pipeline cannot abort the
    // whole figure.
    let guard = |label: String,
                 serial: &Measurement,
                 failures: &mut Vec<String>,
                 f: &mut dyn FnMut() -> Result<Measurement, Trap>| {
        match run_guarded(&label, f) {
            Ok(m) => m,
            Err(msg) => {
                eprintln!("[fig14]   FAILED {msg}; falling back to serial baseline");
                failures.push(msg);
                Measurement {
                    variant: format!("{label} (failed; serial fallback)"),
                    ..serial.clone()
                }
            }
        }
    };
    for app in ["BFS", "CC", "PRD", "Radii"] {
        eprintln!("[fig14] {app}...");
        let mut per_input = Vec::new();
        for gi in &graphs {
            eprintln!("[fig14]   {}", gi.name);
            let g = &gi.graph;
            let serial = match app {
                "BFS" => bfs::run(&Variant::Serial, g, 0, &cfg1, gi.name),
                "CC" => cc::run(&Variant::Serial, g, &cfg1, gi.name),
                "PRD" => prd::run(&Variant::Serial, g, &cfg1, gi.name),
                _ => radii::run(&Variant::Serial, g, &cfg1, gi.name),
            }
            .unwrap_or_else(|e| panic!("{app} serial baseline on {}: {e}", gi.name));
            let dp = guard(
                format!("{app}/{}/data-parallel(16)", gi.name),
                &serial,
                &mut failures,
                &mut || match app {
                    "BFS" => bfs::run(&dp16, g, 0, &cfg4, gi.name),
                    "CC" => cc::run(&dp16, g, &cfg4, gi.name),
                    "PRD" => prd::run(&dp16, g, &cfg4, gi.name),
                    _ => radii::run(&dp16, g, &cfg4, gi.name),
                },
            );
            let phl = guard(
                format!("{app}/{}/phloem-repl", gi.name),
                &serial,
                &mut failures,
                &mut || match app {
                    "BFS" => run_bfs_replicated(RepVariant::Phloem, g, 0, &cfg4, gi.name),
                    "CC" => run_cc_replicated(RepVariant::Phloem, g, &cfg4, gi.name),
                    "PRD" => run_prd_replicated(RepVariant::Phloem, g, &cfg4, gi.name),
                    _ => run_radii_replicated(RepVariant::Phloem, g, &cfg4, gi.name),
                },
            );
            let man = guard(
                format!("{app}/{}/manual-repl", gi.name),
                &serial,
                &mut failures,
                &mut || match app {
                    "BFS" => run_bfs_replicated(RepVariant::Manual, g, 0, &cfg4, gi.name),
                    "CC" => run_cc_replicated(RepVariant::Manual, g, &cfg4, gi.name),
                    "PRD" => run_prd_replicated(RepVariant::Manual, g, &cfg4, gi.name),
                    _ => run_radii_replicated(RepVariant::Manual, g, &cfg4, gi.name),
                },
            );
            per_input.push(vec![serial, dp, phl, man]);
        }
        rows.push(SpeedupRow {
            label: app.to_string(),
            values: phloem_bench::speedups_vs_serial(&per_input),
        });
    }
    print_speedups(&["data-parallel(16)", "phloem-repl", "manual-repl"], &rows);
    if !failures.is_empty() {
        println!();
        println!(
            "{} variant(s) failed and fell back to serial:",
            failures.len()
        );
        for f in &failures {
            println!("  - {f}");
        }
    }
    println!();
    println!("paper: manual BFS/CC ~12x/~7x vs Phloem ~10x/~4x (both > data-parallel);");
    println!("       Phloem Radii (2 stages x 8 replicas) beats manual; PRD ~half of manual.");
}
