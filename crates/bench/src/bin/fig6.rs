//! Fig. 6: speedup over serial BFS as Phloem's passes are added, on a
//! road-network input, plus the manually optimized reference.
//!
//! Paper shape: Q alone gives a modest speedup; adding CVs *without* DCE
//! slightly hurts; DCE and handlers build to ~1.85x; reference
//! accelerators provide the final jump; the full compiler slightly beats
//! the manual pipeline (4.7x vs 4.6x on the authors' testbed).

use phloem_bench::{header, machine, scale};
use phloem_benchsuite::{bfs, Variant};
use phloem_compiler::PassConfig;
use phloem_workloads::training_graphs;

fn main() {
    let g = training_graphs(scale())
        .into_iter()
        .nth(1)
        .expect("road training graph")
        .graph;
    header("Fig. 6: BFS pass ablation (road network)");
    println!(
        "input: {} vertices, {} edges",
        g.num_vertices,
        g.num_edges()
    );
    let cfg = machine();
    let serial = bfs::run(&Variant::Serial, &g, 0, &cfg, "road").expect("serial BFS");
    println!(
        "{:<22} {:>12} cycles {:>9}",
        "serial", serial.cycles, "1.00x"
    );

    let loads = bfs::kernel_loads();
    // nodes / edges / dist — the paper's decoupling points.
    let cuts = vec![loads[2], loads[4], loads[5]];
    let configs = [
        PassConfig::queues_only(),
        PassConfig::with_recompute(),
        PassConfig::with_cv(),
        PassConfig::with_dce(),
        PassConfig::with_handlers(),
        PassConfig::all(),
    ];
    for passes in configs {
        let v = Variant::Phloem {
            passes,
            stages: 4,
            cuts: cuts.clone(),
        };
        let m = match phloem_benchsuite::run_guarded(&passes.label(), || {
            bfs::run(&v, &g, 0, &cfg, "road")
        }) {
            Ok(m) => m,
            Err(e) => {
                println!("{:<22} FAILED: {e}", passes.label());
                continue;
            }
        };
        println!(
            "{:<22} {:>12} cycles {:>8.2}x",
            passes.label(),
            m.cycles,
            serial.cycles as f64 / m.cycles as f64
        );
    }
    let manual = bfs::run(&Variant::Manual, &g, 0, &cfg, "road").expect("manual BFS");
    println!(
        "{:<22} {:>12} cycles {:>8.2}x",
        "manual",
        manual.cycles,
        serial.cycles as f64 / manual.cycles as f64
    );
    println!();
    println!("paper: CV-without-DCE dips below R,Q; CH reaches ~1.85x;");
    println!("       RA provides the largest jump; full Phloem edges out manual.");
}
