//! Differential fuzzing of the Phloem compiler against the functional
//! oracle. The genome generator, per-genome exhaustive check, and
//! minimizer live in [`phloem_bench::fuzz`]; this binary is the CLI.
//!
//! Generates seeded random PhloemC-shaped loop nests (nested for/while,
//! indirect loads, filters, atomic RMWs, write-then-read hazards, early
//! breaks), compiles each at every cut subset of its top-ranked
//! decoupling points across the pass-ablation grid, runs every pipeline
//! that compiles on the timed machine across the scheduler × engine ×
//! fast-forward grid, and compares:
//!
//! * final memory against [`phloem_ir::interp::run_serial`] (the
//!   correctness oracle), and
//! * simulated cycles across every scheduler × engine × fast-forward
//!   combination (which must be bit-identical).
//!
//! A successfully compiled pipeline that traps at runtime is also a
//! failure: the validator and `Pipeline::check` are supposed to reject
//! anything that cannot run.
//!
//! On a divergence the failing program is minimized automatically
//! (segments dropped, trip counts halved, loop shape simplified) and
//! printed as a ready-to-paste regression test body.
//!
//! Genome checks and fault plans fan out over the shared work-stealing
//! fleet (`phloem-pool`); the sweep's totals, failure list, and
//! per-plan outcomes are keyed by index, so the report is byte-identical
//! at every `--jobs` count.
//!
//! Usage:
//!
//! ```text
//! fuzzdiff                      # full run: 1000 programs, seed 1
//! fuzzdiff --smoke              # CI: 100 programs, fixed seed, <60 s
//! fuzzdiff --seed S --count N   # custom sweep
//! fuzzdiff --jobs N             # host workers (default: PHLOEM_WORKERS
//!                               # or available parallelism)
//! fuzzdiff --validate-benchsuite  # validate every benchsuite/PGO pipeline
//! fuzzdiff --faults             # fault injection: 40 plans x 6 targets x grid
//! fuzzdiff --faults --smoke     # CI: 6 plans per target
//! fuzzdiff --native             # native backend vs oracle: 200 genomes,
//!                               # channel x thread grid, real OS threads
//! fuzzdiff --native --smoke     # CI: 25 genomes
//! ```
//!
//! Exits nonzero on any divergence (or any validator rejection in
//! `--validate-benchsuite` mode).

use phloem_bench::fuzz::{
    check_native, fuzz_sweep, fuzz_sweep_with, minimize, minimize_with, render_failure, GRID,
    NATIVE_GRID,
};
use phloem_bench::jobs;
use phloem_benchsuite::fault_targets::targets as fault_targets;
use phloem_benchsuite::{bfs, cc, radii, spmm, taco, Variant};
use phloem_compiler::search::{enumerate_pipelines, SearchOptions};
use phloem_compiler::CompileOptions;
use phloem_ir::{MemState, Pipeline};
use phloem_pool::Pool;
use pipette_sim::{ExecEngine, FaultPlan, MachineConfig, SchedulerKind, Session, WatchdogConfig};

// ---------------------------------------------------------------------
// Benchsuite/PGO validation mode (used by results/run_all.sh).
// ---------------------------------------------------------------------

fn validate_benchsuite(pool: &Pool) -> i32 {
    let cfg = MachineConfig::paper_1core();
    let limits = phloem_ir::ValidateLimits {
        queues_per_core: cfg.max_queues,
    };
    let mut pipes: Vec<(String, Pipeline)> = vec![
        ("bfs/manual".into(), bfs::manual_pipeline()),
        ("cc/manual".into(), cc::manual_pipeline()),
        ("radii/manual".into(), radii::manual_pipeline()),
        ("spmm/manual".into(), spmm::manual_pipeline()),
    ];
    for (name, kernel) in [
        ("bfs", bfs::kernel()),
        ("cc", cc::kernel()),
        ("radii", radii::kernel()),
        ("spmm", spmm::kernel()),
    ] {
        match phloem_compiler::compile_static(&kernel, 4, &CompileOptions::default()) {
            Ok(p) => pipes.push((format!("{name}/static"), p)),
            Err(e) => {
                println!("FAIL {name}/static: does not compile: {e}");
                return 1;
            }
        }
        // The PGO candidate set: every pipeline the search would profile.
        for (cuts, p) in enumerate_pipelines(&kernel, &SearchOptions::default()) {
            let label: Vec<u32> = cuts.iter().map(|c| c.0).collect();
            pipes.push((format!("{name}/pgo{label:?}"), p));
        }
    }
    for app in taco::TacoApp::all() {
        match taco::pipelines_for(app, &Variant::phloem(), &cfg) {
            Ok(ps) => {
                for (pi, p) in ps.into_iter().enumerate() {
                    pipes.push((format!("taco/{}/phase{pi}", app.name()), p));
                }
            }
            Err(e) => {
                println!("FAIL taco/{}: does not compile: {e}", app.name());
                return 1;
            }
        }
    }
    // Validation is pure per pipeline: fan out, report in order.
    let verdicts = pool.map(&pipes, |_i, (_name, p)| {
        phloem_ir::validate_pipeline(p, &limits, "final").map_err(|e| e.to_string())
    });
    let mut failures = 0;
    let total = pipes.len();
    for ((name, _), verdict) in pipes.iter().zip(&verdicts) {
        match verdict {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                println!("FAIL {name}: {e}");
                failures += 1;
            }
            Err(panic) => {
                println!("FAIL {name}: validator panicked: {}", panic.message);
                failures += 1;
            }
        }
    }
    println!("validated {total} pipelines, {failures} failures");
    if failures == 0 {
        0
    } else {
        1
    }
}

// ---------------------------------------------------------------------
// Fault-injection enforcement mode (`--faults`).
// ---------------------------------------------------------------------

/// Renders a faulted run's outcome as a canonical string for grid
/// comparison: either the final cycle count (with a memory check
/// against the unfaulted reference) or the structured trap.
fn faulted_outcome(
    target: &phloem_benchsuite::fault_targets::FaultTarget,
    plan: &FaultPlan,
    sched: SchedulerKind,
    engine: ExecEngine,
    fast_forward: bool,
    cfg: &MachineConfig,
    ref_mem: &MemState,
) -> String {
    let mut cfg = cfg.clone();
    cfg.fast_forward = fast_forward;
    let mut session = Session::new(cfg, target.mem.clone());
    session.set_faults(plan.clone());
    match session.run_with_engine(&target.pipeline, &target.params, sched, engine) {
        Ok(_) => {
            let (mem, stats) = session.finish();
            if mem.same_contents(ref_mem) {
                format!("ok at cycle {}", stats.cycles)
            } else {
                // A fault plan that lets the run finish must not corrupt
                // the output: the only fault with a visible architectural
                // effect is a kill, and a fired kill always traps.
                format!("SILENT CORRUPTION at cycle {}", stats.cycles)
            }
        }
        Err(t) => format!("trap: {t}"),
    }
}

/// What one fault plan resolved to across the whole grid.
enum PlanVerdict {
    /// All grid points completed with the same clean outcome.
    Completed,
    /// All grid points trapped identically.
    Trapped,
    /// Grid divergence or silent corruption: the rendered report.
    Failed(String),
}

/// Runs every fault target under `plans_per_target` seeded fault plans,
/// across the full scheduler × engine × fast-forward grid, and checks
/// that every faulted run (a) terminates within the watchdog budget,
/// (b) never silently corrupts memory, and (c) resolves to the *same*
/// outcome — same trap or same completion cycle — at all six grid
/// points. Plans fan out over the pool; verdicts are reported in plan
/// order, so the output is worker-count-independent.
fn fault_mode(seed: u64, plans_per_target: u64, pool: &Pool) -> i32 {
    let base_cfg = MachineConfig::paper_1core();
    let start = std::time::Instant::now();
    let mut failures = 0u64;
    let mut plans = 0u64;
    let mut runs = 0u64;
    let mut trapped = 0u64;
    let mut completed = 0u64;
    for (ti, target) in fault_targets(&base_cfg).iter().enumerate() {
        // Unfaulted reference on the default combo: cycles bound the
        // fault horizons and the watchdog budget; memory is the
        // corruption oracle.
        let mut session = Session::new(base_cfg.clone(), target.mem.clone());
        if let Err(t) = session.run(&target.pipeline, &target.params) {
            println!("FAIL {}: unfaulted reference trapped: {t}", target.name);
            return 1;
        }
        let (ref_mem, ref_stats) = session.finish();
        let atom_horizon = ref_stats
            .threads
            .iter()
            .map(|t| t.uops + t.branches + t.loads + t.stores + t.enqs + t.deqs)
            .max()
            .unwrap_or(0);
        // Generous enough that only a genuine hang can hit it: latency
        // spikes add at most a few thousand cycles per fault.
        let mut cfg = base_cfg.clone();
        cfg.watchdog = WatchdogConfig {
            cycle_cap: ref_stats.cycles.saturating_mul(32) + 1_000_000,
            ..WatchdogConfig::default()
        };
        let verdicts = pool.run(plans_per_target as usize, |pi| {
            let plan_seed = seed ^ ((ti as u64 + 1) << 32) ^ (pi as u64 + 1);
            let plan = FaultPlan::random(
                plan_seed,
                target.pipeline.total_stages(),
                target.pipeline.num_queues as usize,
                ref_stats.cycles,
                atom_horizon,
            );
            let mut outcomes: Vec<(String, String)> = Vec::new();
            for (sched, engine, ff) in GRID {
                let o = faulted_outcome(target, &plan, sched, engine, ff, &cfg, &ref_mem);
                outcomes.push((format!("{sched:?}/{engine:?}/ff={ff}"), o));
            }
            let first = &outcomes[0].1;
            let diverged = outcomes.iter().any(|(_, o)| o != first);
            if diverged || first.contains("SILENT CORRUPTION") {
                let mut report = format!(
                    "FAIL {} plan_seed={plan_seed:#x} ({} faults):\n",
                    target.name,
                    plan.faults.len()
                );
                for f in &plan.faults {
                    report.push_str(&format!("    {f:?}\n"));
                }
                for (combo, o) in &outcomes {
                    report.push_str(&format!("    {combo:<22} -> {o}\n"));
                }
                PlanVerdict::Failed(report)
            } else if first.starts_with("trap") {
                PlanVerdict::Trapped
            } else {
                PlanVerdict::Completed
            }
        });
        for v in verdicts {
            plans += 1;
            runs += GRID.len() as u64;
            match v {
                Ok(PlanVerdict::Completed) => completed += 1,
                Ok(PlanVerdict::Trapped) => trapped += 1,
                Ok(PlanVerdict::Failed(report)) => {
                    failures += 1;
                    print!("{report}");
                }
                Err(panic) => {
                    failures += 1;
                    println!(
                        "FAIL {}: fault check panicked: {}",
                        target.name, panic.message
                    );
                }
            }
        }
        println!(
            "... {}: {plans_per_target} plans done ({} cycles unfaulted)",
            target.name, ref_stats.cycles
        );
    }
    println!(
        "fuzzdiff --faults: seed {seed:#x}: {plans} fault plans, {runs} runs, \
         {completed} completed clean, {trapped} trapped uniformly, {failures} failures ({:.1}s)",
        start.elapsed().as_secs_f64()
    );
    if failures == 0 {
        0
    } else {
        1
    }
}

// ---------------------------------------------------------------------

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |f: &str| args.iter().any(|a| a == f);
    let val = |f: &str| {
        args.iter()
            .position(|a| a == f)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<u64>().ok())
    };
    let pool = Pool::new(jobs());
    if has("--validate-benchsuite") {
        std::process::exit(validate_benchsuite(&pool));
    }
    if has("--faults") {
        let plans = if has("--smoke") {
            6
        } else {
            val("--count").unwrap_or(40)
        };
        std::process::exit(fault_mode(val("--seed").unwrap_or(0xFA17), plans, &pool));
    }
    if has("--native") {
        // Native-backend differential sweep: the same genome stream the
        // simulator sweep draws, but every pipeline runs on real OS
        // threads across the channel × thread-count grid and is diffed
        // against the serial oracle's memory.
        let (seed, count) = if has("--smoke") {
            (0xF00D, 25)
        } else {
            (val("--seed").unwrap_or(1), val("--count").unwrap_or(200))
        };
        let start = std::time::Instant::now();
        let progress = |k: u64| println!("... {k}/{count} programs done");
        let outcome = fuzz_sweep_with(seed, count, &pool, Some(&progress), check_native);
        for (_, g, why) in &outcome.failures {
            let (min_g, min_why) = minimize_with(g.clone(), why.clone(), check_native);
            println!("{}", render_failure(&min_g, &min_why));
        }
        println!(
            "[native, {} grid points] {} ({:.1}s, {} workers)",
            NATIVE_GRID.len(),
            outcome.summary(seed),
            start.elapsed().as_secs_f64(),
            pool.workers(),
        );
        std::process::exit(i32::from(!outcome.failures.is_empty()));
    }

    let (seed, count) = if has("--smoke") {
        (0xF00D, 100)
    } else {
        (val("--seed").unwrap_or(1), val("--count").unwrap_or(1000))
    };

    let start = std::time::Instant::now();
    let progress = |k: u64| println!("... {k}/{count} programs done");
    let outcome = fuzz_sweep(seed, count, &pool, Some(&progress));
    for (_, g, why) in &outcome.failures {
        let (min_g, min_why) = minimize(g.clone(), why.clone());
        println!("{}", render_failure(&min_g, &min_why));
    }
    println!(
        "{} ({:.1}s, {} workers)",
        outcome.summary(seed),
        start.elapsed().as_secs_f64(),
        pool.workers(),
    );
    if !outcome.failures.is_empty() {
        std::process::exit(1);
    }
}
