//! Differential fuzzing of the Phloem compiler against the functional
//! oracle.
//!
//! Generates seeded random PhloemC-shaped loop nests (nested for/while,
//! indirect loads, filters, atomic RMWs, write-then-read hazards, early
//! breaks), compiles each at every cut subset of its top-ranked
//! decoupling points across the pass-ablation grid, runs every pipeline
//! that compiles on the timed machine across the scheduler × engine ×
//! fast-forward grid, and compares:
//!
//! * final memory against [`phloem_ir::interp::run_serial`] (the
//!   correctness oracle), and
//! * simulated cycles across every scheduler × engine × fast-forward
//!   combination (which must be bit-identical).
//!
//! A successfully compiled pipeline that traps at runtime is also a
//! failure: the validator and `Pipeline::check` are supposed to reject
//! anything that cannot run.
//!
//! On a divergence the failing program is minimized automatically
//! (segments dropped, trip counts halved, loop shape simplified) and
//! printed as a ready-to-paste regression test body.
//!
//! Usage:
//!
//! ```text
//! fuzzdiff                      # full run: 1000 programs, seed 1
//! fuzzdiff --smoke              # CI: 100 programs, fixed seed, <60 s
//! fuzzdiff --seed S --count N   # custom sweep
//! fuzzdiff --validate-benchsuite  # validate every benchsuite/PGO pipeline
//! fuzzdiff --faults             # fault injection: 40 plans x 6 targets x grid
//! fuzzdiff --faults --smoke     # CI: 6 plans per target
//! ```
//!
//! Exits nonzero on any divergence (or any validator rejection in
//! `--validate-benchsuite` mode).

use phloem_benchsuite::fault_targets::targets as fault_targets;
use phloem_benchsuite::{bfs, cc, radii, spmm, taco, Variant};
use phloem_compiler::search::{enumerate_pipelines, SearchOptions};
use phloem_compiler::{analyze, decouple_with_cuts, CompileOptions, PassConfig};
use phloem_ir::{
    interp, pretty, ArrayDecl, ArrayId, BinOp, Expr, Function, FunctionBuilder, LoadId, MemState,
    Pipeline, Value,
};
use pipette_sim::{ExecEngine, FaultPlan, MachineConfig, SchedulerKind, WatchdogConfig};

// ---------------------------------------------------------------------
// Deterministic RNG (xorshift64*): no external crates, stable across
// platforms, so a seed printed by a failing run reproduces it exactly.
// ---------------------------------------------------------------------

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
    fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

// ---------------------------------------------------------------------
// Program genome: a compact recipe the generator expands into a
// Function + MemState. Minimization edits the genome, not the IR.
// ---------------------------------------------------------------------

/// One body segment of the outer loop, in PhloemC shapes.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Segment {
    /// `x = idx[i]; y = data[x]; acc += y*3 + 1` — the paper's
    /// introductory kernel; with `filter`, the fetch+accumulate is
    /// guarded by `if (x % 2 == 0)`.
    IndirectSum { filter: bool },
    /// `s = bounds[i]; e = bounds[i+1]; for (j in s..e) { v = items[j];
    /// acc += v; }` — the BFS/CSR nest.
    NestedSum,
    /// `h = idx[i]; atomic hist[h] += 1` — histogram RMW.
    Histogram,
    /// `wr[i] = acc; z = wr[widx[i]]; acc ^= z` — a same-array
    /// write-then-read hazard; cuts separating the store from the load
    /// must be rejected (the Fig. 4 race) or ordered correctly.
    WriteRace,
    /// `d = dense[i]; acc += d` — dense streaming (never a cut
    /// candidate; exercises adjacency/recompute paths).
    DenseAcc,
}

#[derive(Clone, Debug)]
struct Genome {
    seed: u64,
    /// Outer trip count.
    n: i64,
    /// Indexable data/array length.
    data_len: i64,
    segments: Vec<Segment>,
    /// Lower the outer loop as `while(1) { ...; k++; if (k>=n) break; }`.
    while_shape: bool,
    /// Add `if (acc > limit) break` at the end of the outer body.
    early_break: Option<i64>,
}

impl Genome {
    fn random(rng: &mut Rng) -> Genome {
        let nsegs = 1 + rng.below(3) as usize;
        let mut segments = Vec::with_capacity(nsegs);
        for _ in 0..nsegs {
            segments.push(match rng.below(6) {
                0 => Segment::IndirectSum { filter: false },
                1 | 2 => Segment::IndirectSum { filter: true },
                3 => Segment::NestedSum,
                4 => Segment::Histogram,
                _ => {
                    if rng.chance(50) {
                        Segment::WriteRace
                    } else {
                        Segment::DenseAcc
                    }
                }
            });
        }
        Genome {
            seed: rng.next(),
            n: 8 + rng.below(40) as i64,
            data_len: 8 + rng.below(56) as i64,
            segments,
            while_shape: rng.chance(25),
            early_break: if rng.chance(20) {
                Some(1 + rng.below(5000) as i64)
            } else {
                None
            },
        }
    }

    /// Simpler variants for delta-debugging, most aggressive first.
    fn shrink_candidates(&self) -> Vec<Genome> {
        let mut out = Vec::new();
        for k in 0..self.segments.len() {
            if self.segments.len() > 1 {
                let mut g = self.clone();
                g.segments.remove(k);
                out.push(g);
            }
        }
        if self.early_break.is_some() {
            let mut g = self.clone();
            g.early_break = None;
            out.push(g);
        }
        if self.while_shape {
            let mut g = self.clone();
            g.while_shape = false;
            out.push(g);
        }
        if self.n > 2 {
            let mut g = self.clone();
            g.n /= 2;
            out.push(g);
        }
        if self.data_len > 2 {
            let mut g = self.clone();
            g.data_len /= 2;
            out.push(g);
        }
        out
    }
}

/// Arrays of the generated program, in declaration = allocation order.
struct Arrays {
    idx: ArrayId,
    data: ArrayId,
    bounds: ArrayId,
    items: ArrayId,
    hist: ArrayId,
    widx: ArrayId,
    wr: ArrayId,
    dense: ArrayId,
    out: ArrayId,
}

fn declare_arrays(b: &mut FunctionBuilder) -> Arrays {
    Arrays {
        idx: b.array_i64("idx"),
        data: b.array_i64("data"),
        bounds: b.array_i64("bounds"),
        items: b.array_i64("items"),
        hist: b.array_i64("hist"),
        widx: b.array_i64("widx"),
        wr: b.array_i64("wr"),
        dense: b.array_i64("dense"),
        out: b.array_i64("out"),
    }
}

fn build_mem(g: &Genome) -> MemState {
    let mut rng = Rng::new(g.seed);
    let n = g.n as usize;
    let dl = g.data_len as usize;
    let items_len = dl.max(4);
    let mut mem = MemState::new();
    mem.alloc_i64(
        ArrayDecl::i64("idx"),
        (0..n).map(|_| rng.below(dl as u64) as i64),
    );
    mem.alloc_i64(
        ArrayDecl::i64("data"),
        (0..dl).map(|_| rng.below(1000) as i64 - 500),
    );
    // Nondecreasing CSR-style bounds into items.
    let mut acc = 0i64;
    let mut bounds = Vec::with_capacity(n + 1);
    bounds.push(0);
    for _ in 0..n {
        acc = (acc + rng.below(3) as i64).min(items_len as i64);
        bounds.push(acc);
    }
    mem.alloc_i64(ArrayDecl::i64("bounds"), bounds);
    mem.alloc_i64(
        ArrayDecl::i64("items"),
        (0..items_len).map(|_| rng.below(100) as i64),
    );
    mem.alloc(ArrayDecl::i64("hist"), dl);
    mem.alloc_i64(
        ArrayDecl::i64("widx"),
        (0..n).map(|_| rng.below(n as u64) as i64),
    );
    mem.alloc(ArrayDecl::i64("wr"), n.max(1));
    mem.alloc_i64(
        ArrayDecl::i64("dense"),
        (0..n).map(|_| rng.below(50) as i64),
    );
    mem.alloc(ArrayDecl::i64("out"), 2);
    mem
}

fn build_func(g: &Genome) -> Function {
    let mut b = FunctionBuilder::new("fuzz");
    let n = b.param_i64("n");
    let a = declare_arrays(&mut b);
    let acc = b.var_i64("acc");
    let i = b.var_i64("i");
    let body = |f: &mut FunctionBuilder, iv: phloem_ir::VarId| {
        for (si, seg) in g.segments.iter().enumerate() {
            emit_segment(f, &a, *seg, si, iv, acc);
        }
        if let Some(limit) = g.early_break {
            f.if_then(
                Expr::bin(BinOp::Gt, Expr::var(acc), Expr::i64(limit)),
                |f| f.break_out(1),
            );
        }
    };
    if g.while_shape {
        b.while_true(|f| {
            body(f, i);
            f.assign(i, Expr::add(Expr::var(i), Expr::i64(1)));
            f.if_then(Expr::bin(BinOp::Ge, Expr::var(i), Expr::var(n)), |f| {
                f.break_out(1)
            });
        });
    } else {
        b.for_loop(i, Expr::i64(0), Expr::var(n), |f| body(f, i));
    }
    b.store(a.out, Expr::i64(0), Expr::var(acc));
    b.build()
}

fn emit_segment(
    f: &mut FunctionBuilder,
    a: &Arrays,
    seg: Segment,
    si: usize,
    i: phloem_ir::VarId,
    acc: phloem_ir::VarId,
) {
    match seg {
        Segment::IndirectSum { filter } => {
            let x = f.var_i64(format!("x{si}"));
            let y = f.var_i64(format!("y{si}"));
            let lx = f.load(a.idx, Expr::var(i));
            f.assign(x, lx);
            let fetch_acc = |f: &mut FunctionBuilder| {
                let ly = f.load(a.data, Expr::var(x));
                f.assign(y, ly);
                f.assign(
                    acc,
                    Expr::add(
                        Expr::var(acc),
                        Expr::add(Expr::mul(Expr::var(y), Expr::i64(3)), Expr::i64(1)),
                    ),
                );
            };
            if filter {
                f.if_then(
                    Expr::bin(
                        BinOp::Eq,
                        Expr::bin(BinOp::Rem, Expr::var(x), Expr::i64(2)),
                        Expr::i64(0),
                    ),
                    fetch_acc,
                );
            } else {
                fetch_acc(f);
            }
        }
        Segment::NestedSum => {
            let s = f.var_i64(format!("s{si}"));
            let e = f.var_i64(format!("e{si}"));
            let j = f.var_i64(format!("j{si}"));
            let v = f.var_i64(format!("v{si}"));
            let ls = f.load(a.bounds, Expr::var(i));
            f.assign(s, ls);
            let le = f.load(a.bounds, Expr::add(Expr::var(i), Expr::i64(1)));
            f.assign(e, le);
            f.for_loop(j, Expr::var(s), Expr::var(e), |f| {
                let lv = f.load(a.items, Expr::var(j));
                f.assign(v, lv);
                f.assign(acc, Expr::add(Expr::var(acc), Expr::var(v)));
            });
        }
        Segment::Histogram => {
            let h = f.var_i64(format!("h{si}"));
            let lh = f.load(a.idx, Expr::var(i));
            f.assign(h, lh);
            f.atomic_rmw(BinOp::Add, a.hist, Expr::var(h), Expr::i64(1), None);
        }
        Segment::WriteRace => {
            let w = f.var_i64(format!("w{si}"));
            let z = f.var_i64(format!("z{si}"));
            f.store(a.wr, Expr::var(i), Expr::var(acc));
            let lw = f.load(a.widx, Expr::var(i));
            f.assign(w, lw);
            let lz = f.load(a.wr, Expr::var(w));
            f.assign(z, lz);
            f.assign(
                acc,
                Expr::add(
                    Expr::var(acc),
                    Expr::bin(BinOp::And, Expr::var(z), Expr::i64(7)),
                ),
            );
        }
        Segment::DenseAcc => {
            let d = f.var_i64(format!("d{si}"));
            let ld = f.load(a.dense, Expr::var(i));
            f.assign(d, ld);
            f.assign(acc, Expr::add(Expr::var(acc), Expr::var(d)));
        }
    }
}

// ---------------------------------------------------------------------
// The differential check itself.
// ---------------------------------------------------------------------

fn presets() -> Vec<PassConfig> {
    vec![
        PassConfig::queues_only(),
        PassConfig::with_recompute(),
        PassConfig::with_cv(),
        PassConfig::with_dce(),
        PassConfig::with_handlers(),
        PassConfig::all(),
        PassConfig::all_streaming(),
    ]
}

/// Scheduler × engine × fast-forward points that must all agree
/// bit-identically. Every sched/engine cell runs with the ring-based
/// issue calendar (fast-forward on, the default); two cells repeat with
/// the dense reference calendar, so any cycle the ring reclaims too
/// eagerly shows up as a grid divergence without doubling the sweep.
const GRID: [(SchedulerKind, ExecEngine, bool); 6] = [
    (SchedulerKind::EventDriven, ExecEngine::Tree, true),
    (SchedulerKind::EventDriven, ExecEngine::Flat, true),
    (SchedulerKind::Polling, ExecEngine::Tree, true),
    (SchedulerKind::Polling, ExecEngine::Flat, true),
    (SchedulerKind::EventDriven, ExecEngine::Flat, false),
    (SchedulerKind::Polling, ExecEngine::Tree, false),
];

#[derive(Default)]
struct Totals {
    programs: u64,
    compiles: u64,
    pipelines: u64,
    runs: u64,
}

/// Checks one genome exhaustively. Returns the first divergence as a
/// human-readable description, or `None` if everything agrees.
fn check(g: &Genome, totals: &mut Totals) -> Option<String> {
    let func = build_func(g);
    let mem = build_mem(g);
    let params = [("n", Value::I64(g.n))];

    let oracle = match interp::run_serial(&func, mem.clone(), &params) {
        Ok(r) => r,
        // A generator bug, not a compiler bug: surface it loudly.
        Err(t) => return Some(format!("oracle trapped on the serial program: {t}")),
    };

    // Cut subsets over the top-ranked candidates (the cost model orders
    // them; 3 keeps the sweep exponent small while covering 1-4 stage
    // pipelines, the paper's sweet spot).
    let cand: Vec<LoadId> = analyze(&func).candidates().into_iter().take(3).collect();
    let cfg = MachineConfig::paper_1core();
    for mask in 0u32..(1 << cand.len()) {
        let cuts: Vec<LoadId> = (0..cand.len())
            .filter(|b| mask & (1 << b) != 0)
            .map(|b| cand[b])
            .collect();
        for passes in presets() {
            let opts = CompileOptions {
                passes,
                ..CompileOptions::default()
            };
            totals.compiles += 1;
            let pipe = match decouple_with_cuts(&func, &cuts, &opts) {
                Ok(p) => p,
                Err(_) => continue, // rejecting a cut is legal
            };
            totals.pipelines += 1;
            if let Some(d) = diff_pipeline(&pipe, &mem, &params, &oracle, &cfg, totals) {
                return Some(format!(
                    "cuts {:?}, passes [{}]: {d}",
                    cuts.iter().map(|c| c.0).collect::<Vec<_>>(),
                    passes.label(),
                ));
            }
        }
    }
    None
}

/// Runs one compiled pipeline over the scheduler × engine ×
/// fast-forward grid and diffs memory against the oracle and cycles
/// across the grid.
fn diff_pipeline(
    pipe: &Pipeline,
    mem: &MemState,
    params: &[(&str, Value)],
    oracle: &interp::FunctionalRun,
    cfg: &MachineConfig,
    totals: &mut Totals,
) -> Option<String> {
    let mut cycles: Option<u64> = None;
    for (sched, engine, ff) in GRID {
        totals.runs += 1;
        let mut point_cfg = cfg.clone();
        point_cfg.fast_forward = ff;
        let mut session = pipette_sim::Session::new(point_cfg, mem.clone());
        if let Err(t) = session.run_with_engine(pipe, params, sched, engine) {
            return Some(format!("{sched:?}/{engine:?}/ff={ff} trapped: {t}"));
        }
        let (final_mem, stats) = session.finish();
        if !final_mem.same_contents(&oracle.mem) {
            return Some(format!(
                "{sched:?}/{engine:?}/ff={ff}: final memory differs from the serial oracle"
            ));
        }
        match cycles {
            None => cycles = Some(stats.cycles),
            Some(c) if c != stats.cycles => {
                return Some(format!(
                    "{sched:?}/{engine:?}/ff={ff}: {} cycles, other grid points took {c}",
                    stats.cycles
                ));
            }
            Some(_) => {}
        }
    }
    None
}

/// Delta-debugs a failing genome to a local minimum, then returns it
/// with the (re-derived) divergence description.
fn minimize(mut g: Genome, mut why: String) -> (Genome, String) {
    loop {
        let mut reduced = false;
        for cand in g.shrink_candidates() {
            if let Some(w) = check(&cand, &mut Totals::default()) {
                g = cand;
                why = w;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return (g, why);
        }
    }
}

fn report_failure(g: &Genome, why: &str) {
    println!("\n=== DIVERGENCE ===");
    println!("{why}");
    println!(
        "genome: seed={:#x} n={} data_len={} while={} break={:?} segments={:?}",
        g.seed, g.n, g.data_len, g.while_shape, g.early_break, g.segments
    );
    println!("--- minimized program (paste into a regression test) ---");
    println!("{}", pretty::function_to_string(&build_func(g)));
}

// ---------------------------------------------------------------------
// Benchsuite/PGO validation mode (used by results/run_all.sh).
// ---------------------------------------------------------------------

fn validate_benchsuite() -> i32 {
    let cfg = MachineConfig::paper_1core();
    let limits = phloem_ir::ValidateLimits {
        queues_per_core: cfg.max_queues,
    };
    let mut pipes: Vec<(String, Pipeline)> = vec![
        ("bfs/manual".into(), bfs::manual_pipeline()),
        ("cc/manual".into(), cc::manual_pipeline()),
        ("radii/manual".into(), radii::manual_pipeline()),
        ("spmm/manual".into(), spmm::manual_pipeline()),
    ];
    for (name, kernel) in [
        ("bfs", bfs::kernel()),
        ("cc", cc::kernel()),
        ("radii", radii::kernel()),
        ("spmm", spmm::kernel()),
    ] {
        match phloem_compiler::compile_static(&kernel, 4, &CompileOptions::default()) {
            Ok(p) => pipes.push((format!("{name}/static"), p)),
            Err(e) => {
                println!("FAIL {name}/static: does not compile: {e}");
                return 1;
            }
        }
        // The PGO candidate set: every pipeline the search would profile.
        for (cuts, p) in enumerate_pipelines(&kernel, &SearchOptions::default()) {
            let label: Vec<u32> = cuts.iter().map(|c| c.0).collect();
            pipes.push((format!("{name}/pgo{label:?}"), p));
        }
    }
    for app in taco::TacoApp::all() {
        match taco::pipelines_for(app, &Variant::phloem(), &cfg) {
            Ok(ps) => {
                for (pi, p) in ps.into_iter().enumerate() {
                    pipes.push((format!("taco/{}/phase{pi}", app.name()), p));
                }
            }
            Err(e) => {
                println!("FAIL taco/{}: does not compile: {e}", app.name());
                return 1;
            }
        }
    }
    let mut failures = 0;
    let total = pipes.len();
    for (name, p) in &pipes {
        match phloem_ir::validate_pipeline(p, &limits, "final") {
            Ok(()) => {}
            Err(e) => {
                println!("FAIL {name}: {e}");
                failures += 1;
            }
        }
    }
    println!("validated {total} pipelines, {failures} failures");
    if failures == 0 {
        0
    } else {
        1
    }
}

// ---------------------------------------------------------------------
// Fault-injection enforcement mode (`--faults`).
// ---------------------------------------------------------------------

/// Renders a faulted run's outcome as a canonical string for grid
/// comparison: either the final cycle count (with a memory check
/// against the unfaulted reference) or the structured trap.
fn faulted_outcome(
    target: &phloem_benchsuite::fault_targets::FaultTarget,
    plan: &FaultPlan,
    sched: SchedulerKind,
    engine: ExecEngine,
    fast_forward: bool,
    cfg: &MachineConfig,
    ref_mem: &MemState,
) -> String {
    let mut cfg = cfg.clone();
    cfg.fast_forward = fast_forward;
    let mut session = pipette_sim::Session::new(cfg, target.mem.clone());
    session.set_faults(plan.clone());
    match session.run_with_engine(&target.pipeline, &target.params, sched, engine) {
        Ok(_) => {
            let (mem, stats) = session.finish();
            if mem.same_contents(ref_mem) {
                format!("ok at cycle {}", stats.cycles)
            } else {
                // A fault plan that lets the run finish must not corrupt
                // the output: the only fault with a visible architectural
                // effect is a kill, and a fired kill always traps.
                format!("SILENT CORRUPTION at cycle {}", stats.cycles)
            }
        }
        Err(t) => format!("trap: {t}"),
    }
}

/// Runs every fault target under `plans_per_target` seeded fault plans,
/// across the full scheduler × engine × fast-forward grid, and checks
/// that every faulted run (a) terminates within the watchdog budget,
/// (b) never silently corrupts memory, and (c) resolves to the *same*
/// outcome — same trap or same completion cycle — at all six grid
/// points.
fn fault_mode(seed: u64, plans_per_target: u64) -> i32 {
    let base_cfg = MachineConfig::paper_1core();
    let start = std::time::Instant::now();
    let mut failures = 0u64;
    let mut plans = 0u64;
    let mut runs = 0u64;
    let mut trapped = 0u64;
    let mut completed = 0u64;
    for (ti, target) in fault_targets(&base_cfg).iter().enumerate() {
        // Unfaulted reference on the default combo: cycles bound the
        // fault horizons and the watchdog budget; memory is the
        // corruption oracle.
        let mut session = pipette_sim::Session::new(base_cfg.clone(), target.mem.clone());
        if let Err(t) = session.run(&target.pipeline, &target.params) {
            println!("FAIL {}: unfaulted reference trapped: {t}", target.name);
            return 1;
        }
        let (ref_mem, ref_stats) = session.finish();
        let atom_horizon = ref_stats
            .threads
            .iter()
            .map(|t| t.uops + t.branches + t.loads + t.stores + t.enqs + t.deqs)
            .max()
            .unwrap_or(0);
        // Generous enough that only a genuine hang can hit it: latency
        // spikes add at most a few thousand cycles per fault.
        let mut cfg = base_cfg.clone();
        cfg.watchdog = WatchdogConfig {
            cycle_cap: ref_stats.cycles.saturating_mul(32) + 1_000_000,
            ..WatchdogConfig::default()
        };
        for pi in 0..plans_per_target {
            let plan_seed = seed ^ ((ti as u64 + 1) << 32) ^ (pi + 1);
            let plan = FaultPlan::random(
                plan_seed,
                target.pipeline.total_stages(),
                target.pipeline.num_queues as usize,
                ref_stats.cycles,
                atom_horizon,
            );
            plans += 1;
            let mut outcomes: Vec<(String, String)> = Vec::new();
            for (sched, engine, ff) in GRID {
                runs += 1;
                let o = faulted_outcome(target, &plan, sched, engine, ff, &cfg, &ref_mem);
                outcomes.push((format!("{sched:?}/{engine:?}/ff={ff}"), o));
            }
            let first = &outcomes[0].1;
            let diverged = outcomes.iter().any(|(_, o)| o != first);
            if diverged || first.contains("SILENT CORRUPTION") {
                failures += 1;
                println!(
                    "FAIL {} plan_seed={plan_seed:#x} ({} faults):",
                    target.name,
                    plan.faults.len()
                );
                for f in &plan.faults {
                    println!("    {f:?}");
                }
                for (combo, o) in &outcomes {
                    println!("    {combo:<22} -> {o}");
                }
            } else if first.starts_with("trap") {
                trapped += 1;
            } else {
                completed += 1;
            }
        }
        println!(
            "... {}: {plans_per_target} plans done ({} cycles unfaulted)",
            target.name, ref_stats.cycles
        );
    }
    println!(
        "fuzzdiff --faults: seed {seed:#x}: {plans} fault plans, {runs} runs, \
         {completed} completed clean, {trapped} trapped uniformly, {failures} failures ({:.1}s)",
        start.elapsed().as_secs_f64()
    );
    if failures == 0 {
        0
    } else {
        1
    }
}

// ---------------------------------------------------------------------

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |f: &str| args.iter().any(|a| a == f);
    let val = |f: &str| {
        args.iter()
            .position(|a| a == f)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<u64>().ok())
    };
    if has("--validate-benchsuite") {
        std::process::exit(validate_benchsuite());
    }
    if has("--faults") {
        let plans = if has("--smoke") {
            6
        } else {
            val("--count").unwrap_or(40)
        };
        std::process::exit(fault_mode(val("--seed").unwrap_or(0xFA17), plans));
    }

    let (seed, count) = if has("--smoke") {
        (0xF00D, 100)
    } else {
        (val("--seed").unwrap_or(1), val("--count").unwrap_or(1000))
    };

    let start = std::time::Instant::now();
    let mut rng = Rng::new(seed);
    let mut totals = Totals::default();
    let mut failures = 0u64;
    for k in 0..count {
        let g = Genome::random(&mut rng);
        totals.programs += 1;
        if let Some(why) = check(&g, &mut totals) {
            failures += 1;
            let (min_g, min_why) = minimize(g, why);
            report_failure(&min_g, &min_why);
        }
        if (k + 1) % 200 == 0 {
            println!(
                "... {}/{count} programs, {} pipelines, {} runs, {failures} divergences",
                k + 1,
                totals.pipelines,
                totals.runs
            );
        }
    }
    println!(
        "fuzzdiff: seed {seed:#x}: {} programs, {} compile points, {} pipelines, \
         {} timed runs, {failures} divergences ({:.1}s)",
        totals.programs,
        totals.compiles,
        totals.pipelines,
        totals.runs,
        start.elapsed().as_secs_f64()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
