//! Service throughput and cache effectiveness (`BENCH_serve.json`).
//!
//! Drives the `phloem-service` layer with a mixed 20-request workload
//! (compiles, simulations, traces, one PGO search) and measures
//! sustained requests/sec and cache hit-rate over one cold pass plus
//! four warm replays — the profile of an interactive client replaying a
//! sweep. Two transports:
//!
//! * **daemon** — a spawned `phloemd` sibling binary over stdin/stdout
//!   with blank-line batch framing (the real deployment shape);
//! * **in-process** — direct [`Service::handle_batch`] calls, used as a
//!   fallback when the sibling binary is missing and always in
//!   `--smoke` mode (CI runs the library path; the daemon transport has
//!   its own integration tests).
//!
//! Correctness is asserted, not assumed, in both modes: every warm
//! response must be bit-identical to its cold counterpart (modulo the
//! `"cache"` provenance field on cacheable ops), one simulate response
//! is cross-checked against the direct [`Batch`] API, and the warm
//! replay hit-rate must be >= 50% (it is 80% by construction here:
//! 11 of 20 requests are cacheable and every replay of them hits).
//!
//! A **restart pass** then exercises crash-safe persistence end to end:
//! the transport is shut down (persisting its caches to a snapshot
//! file), rebuilt on the same `--cache-path`, and the workload replayed
//! once more. Every restored hit must be bit-identical to its cold
//! counterpart and the warm-after-restart hit-rate is gated >= 0.5.
//!
//! Requests/sec on this single-core host measures the service overhead
//! on top of simulation cost, not parallel fan-out; the JSON records
//! `host_cores` so readers can gate expectations on the hardware.

use phloem_bench::{header, machine, scale};
use phloem_benchsuite::Variant;
use phloem_pool::Pool;
use phloem_service::proto::parse;
use phloem_service::{Batch, PreparedInputs, Service, ServiceConfig, SimRequest};
use std::io::{BufRead, BufReader, Write};
use std::time::Instant;

/// The mixed workload: 8 compiles, 1 search, 2 traces, 9 simulations.
/// Cacheable (compile/search/trace) requests: 11 of 20.
fn workload() -> Vec<String> {
    let reqs = [
        r#"{"id":1,"op":"compile","app":"bfs","passes":"all"}"#,
        r#"{"id":2,"op":"compile","app":"bfs","passes":"queues-only"}"#,
        r#"{"id":3,"op":"compile","app":"cc","passes":"all"}"#,
        r#"{"id":4,"op":"compile","app":"cc","passes":"with-cv"}"#,
        r#"{"id":5,"op":"compile","app":"prd","passes":"all"}"#,
        r#"{"id":6,"op":"compile","app":"radii","passes":"all"}"#,
        r#"{"id":7,"op":"compile","app":"spmm","passes":"all"}"#,
        r#"{"id":8,"op":"compile","app":"spmm","passes":"all-streaming"}"#,
        r#"{"id":9,"op":"search","app":"bfs","input":"internet-s","max_stages":2,"top_k":2}"#,
        r#"{"id":10,"op":"trace","app":"bfs","input":"internet-s","variant":"phloem","stages":2}"#,
        r#"{"id":11,"op":"trace","app":"cc","input":"internet-s","variant":"phloem","stages":2}"#,
        r#"{"id":12,"op":"simulate","app":"bfs","input":"internet-s","variant":"serial"}"#,
        r#"{"id":13,"op":"simulate","app":"cc","input":"internet-s","variant":"serial"}"#,
        r#"{"id":14,"op":"simulate","app":"prd","input":"internet-s","variant":"serial"}"#,
        r#"{"id":15,"op":"simulate","app":"radii","input":"internet-s","variant":"serial"}"#,
        r#"{"id":16,"op":"simulate","app":"spmm","input":"enron-s","variant":"serial"}"#,
        r#"{"id":17,"op":"simulate","app":"bfs","input":"internet-s","variant":"dp"}"#,
        r#"{"id":18,"op":"simulate","app":"bfs","input":"internet-s","variant":"phloem","stages":2}"#,
        r#"{"id":19,"op":"simulate","app":"cc","input":"internet-s","variant":"phloem","stages":2}"#,
        r#"{"id":20,"op":"simulate","app":"radii","input":"road-ny-s","variant":"serial"}"#,
    ];
    reqs.iter().map(|s| s.to_string()).collect()
}

/// A transport that answers one batch of request lines.
trait Transport {
    fn round_trip(&mut self, lines: &[String]) -> Vec<String>;
    fn name(&self) -> &'static str;
    /// Flushes caches to the snapshot path and stops serving, so a
    /// rebuilt transport on the same path restarts warm.
    fn shutdown_persist(&mut self);
}

struct InProcess {
    svc: Service,
}

impl Transport for InProcess {
    fn round_trip(&mut self, lines: &[String]) -> Vec<String> {
        self.svc.handle_batch(lines).responses
    }
    fn name(&self) -> &'static str {
        "in-process"
    }
    fn shutdown_persist(&mut self) {
        self.svc.persist_now().expect("persist cache snapshot");
    }
}

struct Daemon {
    child: std::process::Child,
    stdin: std::process::ChildStdin,
    stdout: BufReader<std::process::ChildStdout>,
}

impl Transport for Daemon {
    fn round_trip(&mut self, lines: &[String]) -> Vec<String> {
        for line in lines {
            writeln!(self.stdin, "{line}").expect("phloemd stdin");
        }
        writeln!(self.stdin).expect("phloemd stdin");
        self.stdin.flush().expect("phloemd stdin");
        let mut frame = Vec::new();
        loop {
            let mut line = String::new();
            if self.stdout.read_line(&mut line).expect("phloemd stdout") == 0 {
                panic!("phloemd closed stdout mid-frame");
            }
            let trimmed = line.trim_end_matches(['\n', '\r']);
            if trimmed.is_empty() {
                return frame;
            }
            frame.push(trimmed.to_string());
        }
    }
    fn name(&self) -> &'static str {
        "phloemd"
    }
    fn shutdown_persist(&mut self) {
        // A shutdown request drains the daemon, which persists its
        // caches before exiting.
        let _ = writeln!(self.stdin, r#"{{"id":0,"op":"shutdown"}}"#);
        let _ = writeln!(self.stdin);
        let _ = self.stdin.flush();
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // Stdin is still open; a shutdown request ends the daemon
        // cleanly (EOF would too, but be explicit). After an explicit
        // shutdown_persist these writes fail silently and the cached
        // wait status is returned — both are fine.
        let _ = writeln!(self.stdin, r#"{{"id":0,"op":"shutdown"}}"#);
        let _ = writeln!(self.stdin);
        let _ = self.stdin.flush();
        let _ = self.child.wait();
    }
}

/// Spawns the `phloemd` binary that `cargo build` placed next to this
/// bench binary, if present.
fn spawn_daemon(scale_name: &str, workers: usize, cache: &std::path::Path) -> Option<Daemon> {
    let path = std::env::current_exe().ok()?.with_file_name("phloemd");
    let mut child = std::process::Command::new(&path)
        .args(["--scale", scale_name, "--workers", &workers.to_string()])
        .args(["--cache-path", cache.to_str()?])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .ok()?;
    let stdin = child.stdin.take()?;
    let stdout = BufReader::new(child.stdout.take()?);
    Some(Daemon {
        child,
        stdin,
        stdout,
    })
}

fn get_str<'a>(resp: &'a phloem_service::Json, key: &str) -> Option<&'a str> {
    resp.get(key).and_then(|j| j.as_str())
}

/// Checks one warm frame against its cold counterpart: every response
/// ok, cacheable ops hit bit-identically, simulations replay equal.
/// Returns (cacheable, hits) over the warm frame.
fn check_warm(cold: &[String], warm: &[String]) -> (usize, usize) {
    assert_eq!(cold.len(), warm.len(), "frame length changed on replay");
    let (mut cacheable, mut hits) = (0usize, 0usize);
    for (c, w) in cold.iter().zip(warm) {
        let wv = parse(w).unwrap_or_else(|e| panic!("bad response {w:?}: {e}"));
        assert_eq!(
            wv.get("ok").and_then(|j| j.as_bool()),
            Some(true),
            "request failed: {w}"
        );
        match get_str(&wv, "cache") {
            Some("bypass") => assert_eq!(c, w, "simulate replay diverged"),
            Some("hit") => {
                cacheable += 1;
                hits += 1;
                assert_eq!(
                    &c.replace("\"cache\":\"miss\"", "\"cache\":\"hit\""),
                    w,
                    "cache hit not bit-identical to the cold response"
                );
            }
            Some("miss") => cacheable += 1,
            other => panic!("missing cache provenance ({other:?}): {w}"),
        }
    }
    (cacheable, hits)
}

/// Cross-checks the service's BFS serial simulate against the direct
/// [`Batch`] API (same machine, same input).
fn check_against_direct_api(responses: &[String]) {
    let resp = responses
        .iter()
        .map(|r| parse(r).unwrap())
        .find(|v| {
            get_str(v, "op") == Some("simulate")
                && get_str(v, "variant").is_some_and(|s| s.contains("serial"))
                && get_str(v, "input") == Some("internet-s")
                && get_str(v, "app") != Some("spmm")
        })
        .expect("workload contains a serial internet-s simulate");
    let cycles = resp.get("cycles").and_then(|j| j.as_u64()).expect("cycles");
    let pool = Pool::new(1);
    let inputs = PreparedInputs::new(scale());
    let cfg = machine();
    let direct = Batch::new(&pool, &inputs, &cfg).run(&[SimRequest {
        app: "bfs".into(),
        variant: Variant::Serial,
        input: "internet-s".into(),
        cycle_cap: None,
    }]);
    let direct = direct[0].as_ref().expect("direct run succeeds");
    assert_eq!(
        cycles, direct.cycles,
        "service simulate disagrees with the direct Batch API"
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let scale_name = format!("{:?}", scale()).to_lowercase();
    let workers = host_cores.min(4);
    let warm_passes = if smoke { 1 } else { 4 };
    let batch = workload();

    header("Compile-and-simulate service: throughput and cache hit-rate");

    // Every transport persists to (and restores from) this snapshot,
    // so the restart pass below starts warm.
    let cache = std::env::temp_dir().join(format!("phloem-serve-{}.cache", std::process::id()));
    let _ = std::fs::remove_file(&cache);
    // Smoke runs the library path; full prefers the spawned daemon.
    let make = |cache: &std::path::Path| -> Box<dyn Transport> {
        if !smoke {
            if let Some(d) = spawn_daemon(&scale_name, workers, cache) {
                return Box::new(d);
            }
        }
        Box::new(InProcess {
            svc: Service::new(ServiceConfig {
                scale: scale(),
                workers,
                cache_path: Some(cache.to_path_buf()),
                ..ServiceConfig::default()
            }),
        })
    };
    let mut transport = make(&cache);
    let transport_name = transport.name();
    println!(
        "  transport: {}; scale: {scale_name}; {} requests/pass; 1 cold + {warm_passes} warm; \
         {workers} workers on {host_cores} host core(s)",
        transport_name,
        batch.len()
    );

    let t0 = Instant::now();
    let cold = transport.round_trip(&batch);
    let cold_secs = t0.elapsed().as_secs_f64();
    assert_eq!(cold.len(), batch.len(), "cold pass dropped responses");
    check_against_direct_api(&cold);

    let (mut cacheable, mut hits) = (0usize, 0usize);
    let t1 = Instant::now();
    for _ in 0..warm_passes {
        let warm = transport.round_trip(&batch);
        let (c, h) = check_warm(&cold, &warm);
        cacheable += c;
        hits += h;
    }
    let warm_secs = t1.elapsed().as_secs_f64();

    let hit_rate = hits as f64 / cacheable.max(1) as f64;
    let warm_rps = (warm_passes * batch.len()) as f64 / warm_secs;
    let cold_rps = batch.len() as f64 / cold_secs;
    println!(
        "  cold: {cold_secs:.3}s ({cold_rps:.1} req/s); warm: {warm_secs:.3}s \
         ({warm_rps:.1} req/s); warm hit-rate {hit_rate:.2} over {cacheable} cacheable requests"
    );
    println!("  correctness: warm responses bit-identical; simulate cross-checked vs Batch API");
    assert!(
        hit_rate >= 0.5,
        "warm replay hit-rate {hit_rate:.2} below the 0.5 acceptance bar"
    );

    // Restart pass: persist the caches, rebuild the transport on the
    // same snapshot, and replay once — restored hits must be
    // bit-identical to the cold responses.
    transport.shutdown_persist();
    drop(transport);
    let mut transport = make(&cache);
    let restart = transport.round_trip(&batch);
    let (restart_cacheable, restart_hits) = check_warm(&cold, &restart);
    let restart_hit_rate = restart_hits as f64 / restart_cacheable.max(1) as f64;
    drop(transport);
    let _ = std::fs::remove_file(&cache);
    println!(
        "  restart: warm-after-restart hit-rate {restart_hit_rate:.2} over \
         {restart_cacheable} cacheable requests, restored from the snapshot"
    );
    assert!(
        restart_hit_rate >= 0.5,
        "warm-after-restart hit-rate {restart_hit_rate:.2} below the 0.5 acceptance bar"
    );

    if smoke {
        assert!(hits > 0, "smoke replay saw no cache hits");
        println!("  smoke mode: bit-identity + hit-rate + restart gates held; OK");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"transport\": \"{}\",\n  \
         \"host_cores\": {host_cores},\n  \"workers\": {workers},\n  \
         \"scale\": \"{scale_name}\",\n  \
         \"workload\": \"20 requests/pass: 8 compile, 1 search, 2 trace, 9 simulate; \
         11 cacheable\",\n  \"passes\": {{ \"cold\": 1, \"warm\": {warm_passes} }},\n  \
         \"cold_wall_s\": {cold_secs:.6},\n  \"cold_requests_per_s\": {cold_rps:.3},\n  \
         \"warm_wall_s\": {warm_secs:.6},\n  \"warm_requests_per_s\": {warm_rps:.3},\n  \
         \"warm_hit_rate\": {hit_rate:.4},\n  \
         \"restart_hit_rate\": {restart_hit_rate:.4},\n  \
         \"correctness\": \"every warm response asserted bit-identical to its cold \
         counterpart (modulo cache provenance); one simulate cross-checked against the \
         direct Batch API; hit-rate gate >= 0.5; restart pass rebuilds the transport \
         from the persisted snapshot and gates warm-after-restart hit-rate >= 0.5\",\n  \
         \"note\": \"requests/sec measures service overhead plus simulation cost on this \
         host; with a single core the pool fan-out adds no speedup, so cross-host \
         comparisons should gate on host_cores\"\n}}\n",
        transport_name
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("  wrote BENCH_serve.json");
}
