//! Chaos harness: deterministic fault injection against a live `phloemd`.
//!
//! Spawns the daemon in socket mode and attacks it with seeded fault
//! shapes, asserting after every one that the daemon answers structured
//! errors (never garbage), stays healthy for well-formed traffic, and
//! shuts down cleanly. Seven shapes, each run under `--seeds N`
//! (default 20) distinct xorshift seeds that vary cut points, garbage
//! content, chunk sizes, and timing jitter:
//!
//! 1. `conn_killed_mid_request` — client drops the connection halfway
//!    through a request line.
//! 2. `malformed_json` — garbage, truncated JSON, non-object JSON, and
//!    unknown ops each get a structured `parse` error.
//! 3. `oversized_line` — a line beyond `PHLOEMD_MAX_LINE_BYTES` is
//!    answered in place with `request_too_large`; its neighbours and
//!    the next frame are unaffected.
//! 4. `slow_partial_write` — a request trickled in randomly-sized
//!    chunks (within the read timeout) is answered normally.
//! 5. `shutdown_during_inflight` — a shutdown races an in-flight
//!    simulate batch; the batch is answered (ok, or a structured
//!    `draining`/`cancelled` error), never orphaned, and the daemon
//!    exits cleanly with its socket file removed.
//! 6. `sigkill_restart_warm` — SIGKILL after a persisted batch; a
//!    restart on the same `--cache-path` serves a bit-identical warm
//!    hit and reports `persistence.restored >= 1`.
//! 7. `snapshot_corruption` — a random byte of the snapshot is flipped;
//!    the restart skips the corrupt entry (`corrupt_skipped >= 1`) and
//!    keeps serving.
//!
//! `--smoke` runs all shapes at 3 seeds for CI; the full run writes
//! `BENCH_chaos.json`. Everything is deterministic per seed — no clock
//! or entropy feeds the plan, only the seed.

use phloem_bench::header;
use phloem_service::proto::parse;
use phloem_service::Json;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// xorshift64: tiny, deterministic, good enough to diversify a chaos
/// plan. Never seeded from the clock.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng((seed.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

const APPS: [&str; 5] = ["bfs", "cc", "prd", "radii", "spmm"];

fn stats_req(id: u64) -> String {
    format!("{{\"id\":{id},\"op\":\"stats\"}}")
}

fn compile_req(id: u64, app: &str) -> String {
    format!("{{\"id\":{id},\"op\":\"compile\",\"app\":\"{app}\"}}")
}

fn simulate_req(id: u64) -> String {
    format!(
        "{{\"id\":{id},\"op\":\"simulate\",\"app\":\"bfs\",\"input\":\"internet-s\",\
         \"variant\":\"serial\"}}"
    )
}

fn shutdown_req(id: u64) -> String {
    format!("{{\"id\":{id},\"op\":\"shutdown\"}}")
}

/// One line that must draw a structured `parse` error: free garbage,
/// truncated JSON, valid-but-not-an-object JSON, or an unknown op.
fn garbage(rng: &mut Rng) -> String {
    match rng.below(4) {
        0 => format!("not json {:x}", rng.next()),
        1 => format!("{{\"id\":{},", rng.below(1000)),
        2 => format!("[{},{}]", rng.next(), rng.next()),
        _ => format!(
            "{{\"id\":{},\"op\":\"nope-{:x}\"}}",
            rng.below(1000),
            rng.below(0xffff)
        ),
    }
}

fn ensure(cond: bool, msg: impl FnOnce() -> String) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(msg())
    }
}

fn parsed(resp: &str) -> Result<Json, String> {
    parse(resp).map_err(|e| format!("unparseable response {resp:?}: {e}"))
}

fn ensure_ok(resp: &str) -> Result<(), String> {
    let v = parsed(resp)?;
    ensure(v.get("ok").and_then(Json::as_bool) == Some(true), || {
        format!("expected ok:true, got: {resp}")
    })
}

/// Returns `error.kind` of a failed response (asserting `ok:false`).
fn error_kind(resp: &str) -> Result<String, String> {
    let v = parsed(resp)?;
    ensure(v.get("ok").and_then(Json::as_bool) == Some(false), || {
        format!("expected ok:false, got: {resp}")
    })?;
    v.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("no error.kind in {resp}"))
}

/// Reads `stats.<section>.<field>` out of a stats response.
fn stats_u64(resp: &str, section: &str, field: &str) -> Result<u64, String> {
    let v = parsed(resp)?;
    v.get(section)
        .and_then(|s| s.get(field))
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("no {section}.{field} in {resp}"))
}

/// A client connection speaking the blank-line frame protocol.
struct Conn {
    w: UnixStream,
    r: BufReader<UnixStream>,
}

impl Conn {
    fn open(socket: &PathBuf) -> Result<Conn, String> {
        let w = UnixStream::connect(socket).map_err(|e| format!("connect {socket:?}: {e}"))?;
        let r = BufReader::new(w.try_clone().map_err(|e| format!("clone: {e}"))?);
        Ok(Conn { w, r })
    }

    fn send(&mut self, lines: &[String]) -> Result<(), String> {
        for line in lines {
            writeln!(self.w, "{line}").map_err(|e| format!("send: {e}"))?;
        }
        writeln!(self.w).map_err(|e| format!("send: {e}"))?;
        self.w.flush().map_err(|e| format!("flush: {e}"))
    }

    fn read_frame(&mut self) -> Result<Vec<String>, String> {
        let mut frame = Vec::new();
        loop {
            let mut line = String::new();
            match self.r.read_line(&mut line) {
                Ok(0) => return Err(format!("EOF mid-frame after {} lines", frame.len())),
                Ok(_) => {
                    let t = line.trim_end_matches(['\n', '\r']);
                    if t.is_empty() {
                        return Ok(frame);
                    }
                    frame.push(t.to_string());
                }
                Err(e) => return Err(format!("read: {e}")),
            }
        }
    }

    fn round_trip(&mut self, lines: &[String]) -> Result<Vec<String>, String> {
        self.send(lines)?;
        self.read_frame()
    }
}

/// A spawned daemon under test. Dropping it SIGKILLs any survivor so a
/// failed seed never leaks a process.
struct Daemon {
    child: Child,
    socket: PathBuf,
}

fn phloemd_exe() -> PathBuf {
    std::env::current_exe()
        .expect("current_exe")
        .with_file_name("phloemd")
}

impl Daemon {
    fn spawn(tag: &str, envs: &[(&str, &str)], extra: &[&str]) -> Result<Daemon, String> {
        let socket =
            std::env::temp_dir().join(format!("phloem-chaos-{}-{tag}.sock", std::process::id()));
        let _ = std::fs::remove_file(&socket);
        let mut cmd = Command::new(phloemd_exe());
        cmd.args(["--socket", socket.to_str().unwrap()])
            .args(["--scale", "tiny", "--workers", "2"])
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let child = cmd.spawn().map_err(|e| format!("spawn phloemd: {e}"))?;
        let deadline = Instant::now() + Duration::from_secs(30);
        while !socket.exists() {
            if Instant::now() > deadline {
                return Err("phloemd never bound its socket".into());
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        Ok(Daemon { child, socket })
    }

    /// One frame over a fresh connection.
    fn round_trip(&self, lines: &[String]) -> Result<Vec<String>, String> {
        Conn::open(&self.socket)?.round_trip(lines)
    }

    /// Requests shutdown, then requires a clean exit: status 0 and the
    /// socket file removed.
    fn shutdown_clean(self) -> Result<(), String> {
        let frame = self.round_trip(&[shutdown_req(9999)])?;
        ensure_ok(&frame[0])?;
        self.wait_exit()
    }

    fn wait_exit(mut self) -> Result<(), String> {
        let status = self.child.wait().map_err(|e| format!("wait: {e}"))?;
        ensure(status.success(), || format!("daemon exited with {status}"))?;
        ensure(!self.socket.exists(), || {
            "socket file not removed on exit".into()
        })
    }

    fn sigkill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.socket);
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.socket);
    }
}

fn cache_file(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("phloem-chaos-{}-{tag}.cache", std::process::id()))
}

// ---------------------------------------------------------------- shapes

fn conn_killed_mid_request(tag: &str, rng: &mut Rng) -> Result<(), String> {
    let d = Daemon::spawn(tag, &[], &[])?;
    let req = simulate_req(1);
    let cut = 1 + rng.below(req.len() as u64 - 1) as usize;
    {
        let mut c = Conn::open(&d.socket)?;
        if rng.below(2) == 1 {
            // Sometimes a complete line precedes the severed one.
            writeln!(c.w, "{}", stats_req(2)).map_err(|e| format!("send: {e}"))?;
        }
        c.w.write_all(&req.as_bytes()[..cut])
            .map_err(|e| format!("send: {e}"))?;
        c.w.flush().map_err(|e| format!("flush: {e}"))?;
    } // dropped: the daemon sees EOF mid-line and must shrug it off
    let frame = d.round_trip(&[stats_req(3)])?;
    ensure_ok(&frame[0])?;
    d.shutdown_clean()
}

fn malformed_json(tag: &str, rng: &mut Rng) -> Result<(), String> {
    let d = Daemon::spawn(tag, &[], &[])?;
    let n = 1 + rng.below(3) as usize;
    let mut lines: Vec<String> = (0..n).map(|_| garbage(rng)).collect();
    lines.push(stats_req(7));
    let frame = d.round_trip(&lines)?;
    ensure(frame.len() == n + 1, || {
        format!("expected {} responses, got {}", n + 1, frame.len())
    })?;
    for resp in &frame[..n] {
        let kind = error_kind(resp)?;
        ensure(kind == "parse", || {
            format!("expected a parse error, got {kind}: {resp}")
        })?;
    }
    ensure_ok(&frame[n])?;
    d.shutdown_clean()
}

fn oversized_line(tag: &str, rng: &mut Rng) -> Result<(), String> {
    let d = Daemon::spawn(tag, &[("PHLOEMD_MAX_LINE_BYTES", "256")], &[])?;
    let pad = "x".repeat(300 + rng.below(4000) as usize);
    let lines = vec![
        stats_req(1),
        format!("{{\"id\":2,\"op\":\"stats\",\"pad\":\"{pad}\"}}"),
        stats_req(3),
    ];
    let frame = d.round_trip(&lines)?;
    ensure(frame.len() == 3, || {
        format!("expected 3 responses, got {}", frame.len())
    })?;
    ensure_ok(&frame[0])?;
    let kind = error_kind(&frame[1])?;
    ensure(kind == "request_too_large", || {
        format!("expected request_too_large, got {kind}")
    })?;
    ensure_ok(&frame[2])?;
    // The stream stayed framed: a follow-up frame still answers.
    let next = d.round_trip(&[stats_req(4)])?;
    ensure_ok(&next[0])?;
    d.shutdown_clean()
}

fn slow_partial_write(tag: &str, rng: &mut Rng) -> Result<(), String> {
    let d = Daemon::spawn(tag, &[], &[])?;
    let mut c = Conn::open(&d.socket)?;
    let payload = format!("{}\n\n", stats_req(5));
    let bytes = payload.as_bytes();
    let mut pos = 0;
    while pos < bytes.len() {
        let take = 1 + rng.below((bytes.len() - pos) as u64) as usize;
        c.w.write_all(&bytes[pos..pos + take])
            .map_err(|e| format!("send: {e}"))?;
        c.w.flush().map_err(|e| format!("flush: {e}"))?;
        pos += take;
        if pos < bytes.len() {
            std::thread::sleep(Duration::from_millis(1 + rng.below(20)));
        }
    }
    let frame = c.read_frame()?;
    ensure_ok(&frame[0])?;
    d.shutdown_clean()
}

fn shutdown_during_inflight(tag: &str, rng: &mut Rng) -> Result<(), String> {
    let d = Daemon::spawn(tag, &[], &[])?;
    let mut inflight = Conn::open(&d.socket)?;
    inflight.send(&[simulate_req(1)])?;
    std::thread::sleep(Duration::from_millis(rng.below(20)));
    let mut killer = Conn::open(&d.socket)?;
    let ack = killer.round_trip(&[shutdown_req(2)])?;
    ensure_ok(&ack[0])?;
    // The in-flight batch must be answered, not orphaned: either it won
    // the race (ok) or it drew a structured draining/cancelled error.
    let frame = inflight.read_frame()?;
    ensure(frame.len() == 1, || {
        format!("expected 1 in-flight response, got {}", frame.len())
    })?;
    if ensure_ok(&frame[0]).is_err() {
        let kind = error_kind(&frame[0])?;
        ensure(kind == "draining" || kind == "cancelled", || {
            format!("expected draining/cancelled, got {kind}: {}", frame[0])
        })?;
    }
    d.wait_exit()
}

fn sigkill_restart_warm(tag: &str, rng: &mut Rng) -> Result<(), String> {
    let cache = cache_file(tag);
    let _ = std::fs::remove_file(&cache);
    let cache_arg = cache.to_str().unwrap().to_string();
    let app = APPS[rng.below(APPS.len() as u64) as usize];

    let d = Daemon::spawn(tag, &[], &["--cache-path", &cache_arg])?;
    let mut c = Conn::open(&d.socket)?;
    let cold = c.round_trip(&[compile_req(1, app)])?;
    ensure_ok(&cold[0])?;
    ensure(cold[0].contains("\"cache\":\"miss\""), || {
        format!("cold compile should miss: {}", cold[0])
    })?;
    // Same connection: once this frame answers, the previous frame's
    // snapshot write has completed — SIGKILL cannot outrun it.
    let stats = c.round_trip(&[stats_req(2)])?;
    ensure(
        stats_u64(&stats[0], "persistence", "persisted")? >= 1,
        || format!("nothing persisted before the kill: {}", stats[0]),
    )?;
    d.sigkill();

    let d2 = Daemon::spawn(&format!("{tag}-b"), &[], &["--cache-path", &cache_arg])?;
    let warm = d2.round_trip(&[compile_req(1, app)])?;
    ensure(
        warm[0] == cold[0].replace("\"cache\":\"miss\"", "\"cache\":\"hit\""),
        || {
            format!(
                "restored hit not bit-identical:\n  cold: {}\n  warm: {}",
                cold[0], warm[0]
            )
        },
    )?;
    let stats = d2.round_trip(&[stats_req(3)])?;
    ensure(
        stats_u64(&stats[0], "persistence", "restored")? >= 1,
        || format!("restart restored nothing: {}", stats[0]),
    )?;
    let out = d2.shutdown_clean();
    let _ = std::fs::remove_file(&cache);
    out
}

fn snapshot_corruption(tag: &str, rng: &mut Rng) -> Result<(), String> {
    let cache = cache_file(tag);
    let _ = std::fs::remove_file(&cache);
    let cache_arg = cache.to_str().unwrap().to_string();

    let d = Daemon::spawn(tag, &[], &["--cache-path", &cache_arg])?;
    let frame = d.round_trip(&[compile_req(1, "bfs"), compile_req(2, "cc")])?;
    ensure_ok(&frame[0])?;
    ensure_ok(&frame[1])?;
    d.shutdown_clean()?; // drain persists the snapshot

    let mut bytes = std::fs::read(&cache).map_err(|e| format!("read snapshot: {e}"))?;
    ensure(!bytes.is_empty(), || "snapshot is empty".into())?;
    let off = rng.below(bytes.len() as u64) as usize;
    bytes[off] ^= (1 + rng.below(255)) as u8;
    std::fs::write(&cache, &bytes).map_err(|e| format!("corrupt snapshot: {e}"))?;

    let d2 = Daemon::spawn(&format!("{tag}-b"), &[], &["--cache-path", &cache_arg])?;
    let stats = d2.round_trip(&[stats_req(3)])?;
    ensure(
        stats_u64(&stats[0], "persistence", "corrupt_skipped")? >= 1,
        || format!("corruption not detected: {}", stats[0]),
    )?;
    // Still healthy: a fresh compile serves fine.
    let frame = d2.round_trip(&[compile_req(4, "prd")])?;
    ensure_ok(&frame[0])?;
    let out = d2.shutdown_clean();
    let _ = std::fs::remove_file(&cache);
    out
}

// ------------------------------------------------------------------ main

type Shape = fn(&str, &mut Rng) -> Result<(), String>;

const SHAPES: [(&str, Shape); 7] = [
    ("conn_killed_mid_request", conn_killed_mid_request),
    ("malformed_json", malformed_json),
    ("oversized_line", oversized_line),
    ("slow_partial_write", slow_partial_write),
    ("shutdown_during_inflight", shutdown_during_inflight),
    ("sigkill_restart_warm", sigkill_restart_warm),
    ("snapshot_corruption", snapshot_corruption),
];

fn main() {
    let mut seeds: u64 = 20;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                smoke = true;
                seeds = 3;
            }
            "--seeds" => {
                seeds = args
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or_else(|| {
                        eprintln!("chaos: --seeds expects an integer");
                        std::process::exit(2);
                    })
                    .max(1)
            }
            other => {
                eprintln!("usage: chaos [--smoke] [--seeds N]   (got {other:?})");
                std::process::exit(2);
            }
        }
    }

    header("Chaos: deterministic fault injection against phloemd");
    let exe = phloemd_exe();
    assert!(
        exe.exists(),
        "phloemd binary not found at {exe:?}; build the workspace first \
         (cargo build brings the sibling binary along)"
    );
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "  {} shapes x {seeds} seeds, scale tiny, {host_cores} host core(s)",
        SHAPES.len()
    );

    let t0 = Instant::now();
    let mut failures: Vec<String> = Vec::new();
    let mut passed_by_shape = Vec::new();
    for (idx, (name, shape)) in SHAPES.iter().enumerate() {
        let mut passed = 0;
        for seed in 0..seeds {
            let tag = format!("{name}-{seed}");
            let mut rng = Rng::new(seed * SHAPES.len() as u64 + idx as u64);
            match shape(&tag, &mut rng) {
                Ok(()) => passed += 1,
                Err(e) => failures.push(format!("{name} seed {seed}: {e}")),
            }
        }
        println!("  {name}: {passed}/{seeds} seeds");
        passed_by_shape.push((*name, passed));
    }
    let wall = t0.elapsed().as_secs_f64();

    for f in &failures {
        eprintln!("  FAIL {f}");
    }
    if !smoke {
        let shape_json: Vec<String> = passed_by_shape
            .iter()
            .map(|(name, passed)| format!("    \"{name}\": {passed}"))
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"chaos\",\n  \"host_cores\": {host_cores},\n  \
             \"seeds_per_shape\": {seeds},\n  \"wall_s\": {wall:.3},\n  \
             \"passed\": {{\n{}\n  }},\n  \
             \"note\": \"deterministic seeded fault injection against a live phloemd; \
             every shape must pass every seed; see DESIGN.md section 10\"\n}}\n",
            shape_json.join(",\n")
        );
        std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
        println!("  wrote BENCH_chaos.json");
    }
    assert!(
        failures.is_empty(),
        "{} chaos seed(s) failed (see above)",
        failures.len()
    );
    println!(
        "  all {} shapes held across {seeds} seeds in {wall:.1}s",
        SHAPES.len()
    );
}
