//! Fig. 11: energy breakdown normalized to the serial baseline.
//!
//! Paper shape: Phloem beats serial and data-parallel energy everywhere
//! (chiefly via better core utilization, i.e. less static energy from
//! shorter runtimes); BFS improves most; SpMM's gains are partly offset
//! by stall time.

use phloem_bench::{fig9_matrix, header};
use phloem_benchsuite::gmean;

fn main() {
    header("Fig. 11: energy normalized to serial");
    let matrix = fig9_matrix(false);
    println!(
        "{:<8}{:<16}{:>10}{:>10}{:>10}{:>10}{:>10}",
        "app", "variant", "core-dyn", "cache", "dram", "static", "total"
    );
    for (app, per_input) in &matrix.rows {
        let serial_tot: Vec<f64> = per_input
            .iter()
            .map(|ms| ms[0].stats.energy.total_pj())
            .collect();
        let nvars = per_input[0].len();
        for k in 0..nvars {
            let mut core = Vec::new();
            let mut cache = Vec::new();
            let mut dram = Vec::new();
            let mut stat = Vec::new();
            for (ms, st) in per_input.iter().zip(&serial_tot) {
                let e = &ms[k].stats.energy;
                core.push((e.core_dynamic_pj / st).max(1e-9));
                cache.push((e.cache_pj / st).max(1e-9));
                dram.push((e.dram_pj / st).max(1e-9));
                stat.push((e.static_pj / st).max(1e-9));
            }
            let (c, h, d, s) = (gmean(core), gmean(cache), gmean(dram), gmean(stat));
            println!(
                "{:<8}{:<16}{:>10.3}{:>10.3}{:>10.3}{:>10.3}{:>10.3}",
                app,
                per_input[0][k].variant.split('[').next().unwrap_or(""),
                c,
                h,
                d,
                s,
                c + h + d + s
            );
        }
        println!();
    }
    println!("paper: Phloem's energy <= serial everywhere; static energy shrinks");
    println!("       with runtime; queue/RA ops are cheap relative to uops.");
}
