//! Tables I, III, IV, and V: the Pipette programming interface, the
//! simulated system configuration, and the input catalogs (with the
//! paper inputs each synthetic instance stands in for) — plus the
//! scheduler observability table (per-stage stall reasons and per-queue
//! occupancy) the event-driven core exposes.

use phloem_bench::{header, machine, scale};
use phloem_benchsuite::{bfs, Variant};
use phloem_workloads::{
    graph, spmm_test_matrices, spmm_training_matrices, taco_test_matrices, test_graphs,
    training_graphs,
};

fn main() {
    header("Table I: Pipette programming interface (implemented operations)");
    for (name, what) in [
        ("enq(q, v)", "Stmt::Enq — enqueue value v into queue q"),
        ("deq(q)", "Stmt::Deq — dequeue a value from queue q"),
        (
            "peek(q)",
            "subsumed by deq + handler dispatch in this model",
        ),
        (
            "setup_reference_accelerator(q, mode, base)",
            "RaConfig { mode: Indirect | Scan, base, in/out queues }",
        ),
        ("enq_ctrl(q, cv)", "Stmt::EnqCtrl — in-band control value"),
        (
            "is_control(v)",
            "UnOp::IsCtrl (plus UnOp::CtrlTag for tags)",
        ),
        (
            "setup_control_value_handler(q, f)",
            "CtrlHandler { queue, ctrl, body, end } per stage",
        ),
    ] {
        println!("  {name:<44} {what}");
    }

    header("Table III: simulated system configuration");
    let c = machine();
    println!(
        "  cores: {} (x{} SMT), {}-wide issue, ROB {}",
        c.cores, c.smt_threads, c.issue_width, c.rob_size
    );
    println!(
        "  Pipette: {} queues max (per core), {} RAs, queues {} deep",
        c.max_queues, c.ras_per_core, c.queue_capacity
    );
    println!(
        "  L1 {} KB {}-way {}cyc | L2 {} KB {}-way {}cyc | L3 {} MB {}-way {}cyc",
        c.l1.kb,
        c.l1.ways,
        c.l1.latency,
        c.l2.kb,
        c.l2.ways,
        c.l2.latency,
        c.l3_kb_per_core / 1024,
        c.l3_ways,
        c.l3_latency
    );
    println!(
        "  DRAM: {} cyc min latency, {} controllers, {} cyc/line each",
        c.dram_latency, c.dram_controllers, c.dram_cycles_per_line
    );

    header("Table IV: input graphs (synthetic analogues, scaled)");
    println!(
        "  {:<14}{:>10}{:>10}{:>10}  stands in for",
        "name", "vertices", "edges", "avg.deg"
    );
    for gi in training_graphs(scale()).iter().chain(&test_graphs(scale())) {
        println!(
            "  {:<14}{:>10}{:>10}{:>10.1}  {}",
            gi.name,
            gi.graph.num_vertices,
            gi.graph.num_edges(),
            gi.graph.avg_degree(),
            gi.paper_analogue
        );
    }

    header("Table V: input matrices (synthetic analogues, scaled)");
    println!(
        "  {:<14}{:>8}{:>10}{:>12}  stands in for",
        "name", "n", "nnz", "avg nnz/row"
    );
    for mi in spmm_training_matrices(scale())
        .iter()
        .chain(&spmm_test_matrices(scale()))
        .chain(&taco_test_matrices(scale()))
    {
        println!(
            "  {:<14}{:>8}{:>10}{:>12.1}  {}",
            mi.name,
            mi.matrix.rows,
            mi.matrix.nnz(),
            mi.matrix.avg_nnz_per_row(),
            mi.paper_analogue
        );
    }

    header("Scheduler observability: BFS/Phloem on power_law(500)");
    let g = graph::power_law(500, 3, 3);
    let m = bfs::run(&Variant::phloem(), &g, 0, &machine(), "power_law_500")
        .expect("BFS phloem on power_law_500");
    println!(
        "  {:<16}{:>12}{:>12}{:>10}{:>10}{:>10}",
        "stage", "full-stall", "empty-stall", "wakeups", "spurious", "re-polls"
    );
    for t in &m.stats.threads {
        println!(
            "  {:<16}{:>12}{:>12}{:>10}{:>10}{:>10}",
            t.name,
            t.queue_full_stall_cycles,
            t.queue_empty_stall_cycles,
            t.wakeups,
            t.spurious_wakeups,
            t.stall_polls
        );
    }
    println!();
    println!(
        "  {:<8}{:>6}{:>10}{:>10}{:>10}{:>10}",
        "queue", "cap", "enqs", "deqs", "max-occ", "mean-occ"
    );
    for (qi, q) in m.stats.queues.iter().enumerate() {
        if q.enqs == 0 && q.deqs == 0 {
            continue;
        }
        println!(
            "  q{:<7}{:>6}{:>10}{:>10}{:>10}{:>10.2}",
            qi,
            q.capacity,
            q.enqs,
            q.deqs,
            q.max_occupancy,
            q.mean_occupancy()
        );
    }
}
