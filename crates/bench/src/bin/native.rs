//! Native-backend wall clock (`BENCH_native.json`): real-thread
//! execution of every benchsuite app versus the serial interpreter,
//! on the same host, per channel backend.
//!
//! For each app the phloem variant runs once per channel backend
//! (`mpsc`, `ring`, `hybrid`) under
//! [`phloem_benchsuite::with_backend`] with one OS thread per stage
//! (`threads: 0`), and the serial variant runs on the plain
//! interpreter. Wall seconds are best-of-`REPS` (default 2); every
//! run verifies its output against the app's host oracle internally,
//! so a divergence aborts the bench rather than skewing a number.
//!
//! Speedup expectations are gated on the host: a stage-per-thread
//! pipeline cannot beat a serial interpreter on one core (the threads
//! time-slice and every queue hop is pure overhead), so on a
//! single-core host the bench records the honest flat-or-worse curve
//! and notes the limit instead of failing — the same policy as
//! `BENCH_parallel.json`. With `host_cores > 1` a loose overhead gate
//! applies: the best channel backend must stay within 4x of serial
//! wall time at every app (real speedup is input-size dependent; tiny
//! CI inputs mostly measure channel overhead).
//!
//! `SCALE=tiny|small|full` sizes the inputs as usual; `--smoke` (CI)
//! keeps the full app x channel matrix but writes no JSON.

use std::time::Instant;

use phloem_bench::{header, machine, run_graph_app, scale, GRAPH_APPS};
use phloem_benchsuite::{spmm, taco, with_backend, Variant};
use phloem_workloads::{spmm_test_matrices, test_graphs};
use pipette_sim::{ChannelKind, ExecBackend, NativeConfig};

/// One thread per stage on the given channel backend.
fn native(channel: ChannelKind) -> ExecBackend {
    ExecBackend::Native(NativeConfig {
        channel,
        threads: 0,
    })
}

/// Best-of-reps wall seconds for one closure.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

struct Row {
    app: String,
    input: String,
    serial_s: f64,
    /// `(channel label, wall seconds, speedup vs serial)`.
    channels: Vec<(&'static str, f64, f64)>,
}

impl Row {
    /// Builds one row by timing `run(variant)` serially and once per
    /// channel backend natively. `run` must verify its own output.
    fn measure(app: &str, input: &str, reps: usize, run: impl Fn(&Variant)) -> Row {
        let serial_s = best_of(reps, || run(&Variant::Serial));
        let channels = ChannelKind::ALL
            .iter()
            .map(|&ch| {
                let secs = best_of(reps, || {
                    with_backend(native(ch), || run(&Variant::phloem()))
                });
                (ch.label(), secs, serial_s / secs)
            })
            .collect();
        Row {
            app: app.to_string(),
            input: input.to_string(),
            serial_s,
            channels,
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps: usize = std::env::var("REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
        .max(1);
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cfg = machine();

    header("Native backend: real-thread wall clock vs the serial interpreter");
    println!(
        "  host cores: {host_cores}; scale {:?}; channels {:?}; one thread per stage; \
         {reps} reps (best kept)",
        scale(),
        ChannelKind::ALL.map(|c| c.label()),
    );

    let gi = &test_graphs(scale())[0];
    let mi = &spmm_test_matrices(scale())[0];
    let bt = mi.matrix.transpose();

    let mut rows = Vec::new();
    for app in GRAPH_APPS {
        rows.push(Row::measure(app, gi.name, reps, |v| {
            run_graph_app(app, v, &gi.graph, &cfg, gi.name).expect(app);
        }));
    }
    rows.push(Row::measure("SpMM", mi.name, reps, |v| {
        spmm::run(v, &mi.matrix, &bt, &cfg, mi.name).expect("SpMM");
    }));
    for t in taco::TacoApp::all() {
        rows.push(Row::measure(&format!("taco-{t:?}"), mi.name, reps, |v| {
            taco::run(t, v, &mi.matrix, &cfg, mi.name).expect("taco");
        }));
    }

    println!(
        "  {:<14} {:>10} {:>9} {:>9} {:>9}",
        "app", "serial_s", "mpsc_x", "ring_x", "hybrid_x"
    );
    for r in &rows {
        println!(
            "  {:<14} {:>10.4} {:>8.2}x {:>8.2}x {:>8.2}x",
            r.app, r.serial_s, r.channels[0].2, r.channels[1].2, r.channels[2].2
        );
    }
    println!("  every native run's memory was verified against the app's host oracle");

    // Hardware-gated overhead bound: with more than one core the
    // pipeline threads genuinely overlap, so the best channel must
    // keep channel overhead bounded. On one core the threads
    // time-slice; the measured (flat-or-worse) curve is recorded with
    // a note instead of failing on physics.
    if host_cores > 1 {
        for r in &rows {
            let best = r
                .channels
                .iter()
                .map(|&(_, _, x)| x)
                .fold(f64::MIN, f64::max);
            assert!(
                best >= 0.25,
                "native overhead pathology on {}: best channel {best:.2}x vs serial \
                 (gate 0.25x, {host_cores} cores)",
                r.app
            );
        }
    } else {
        println!(
            "  note: speedup gates skipped, host has only {host_cores} core(s); \
             a stage-per-thread pipeline is hardware-bounded below 1x there"
        );
    }

    if smoke {
        println!("  smoke mode: all apps ran natively on every channel; OK");
        return;
    }

    let row_json = |r: &Row| {
        let ch = r
            .channels
            .iter()
            .map(|(label, secs, x)| {
                format!(
                    "{{ \"channel\": \"{label}\", \"wall_s\": {secs:.6}, \"speedup\": {x:.4} }}"
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "    {{ \"app\": \"{}\", \"input\": \"{}\", \"serial_wall_s\": {:.6}, \
             \"native\": [{ch}] }}",
            r.app, r.input, r.serial_s
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"native\",\n  \"backend\": \"one OS thread per pipeline stage, \
         bounded channels per hardware queue (mpsc | ring | hybrid)\",\n  \
         \"host_cores\": {host_cores},\n  \"scale\": \"{:?}\",\n  \"reps\": {reps},\n  \
         \"apps\": [\n{}\n  ],\n  \
         \"verification\": \"every native run's final memory is checked against the app's \
         host oracle in-run; a divergence aborts the bench\",\n  \
         \"note\": \"wall seconds are best-of-reps; speedup is native phloem pipeline vs \
         the serial interpreter on the same host. Gates apply only when host_cores > 1: \
         on a single core the stage threads time-slice and every queue hop is overhead, \
         so the flat-or-worse curve is recorded honestly with this note, matching \
         BENCH_parallel.json's policy.\"\n}}\n",
        scale(),
        rows.iter().map(row_json).collect::<Vec<_>>().join(",\n"),
    );
    std::fs::write("BENCH_native.json", &json).expect("write BENCH_native.json");
    println!("  wrote BENCH_native.json");
}
