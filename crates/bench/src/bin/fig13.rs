//! Fig. 13: distribution of gmean training-input speedups of all
//! candidate pipelines, bucketed by pipeline length (stages *including*
//! reference accelerators), for select benchmarks.
//!
//! Paper shape: mid-length pipelines win (e.g. BFS's best 4-stage beats
//! its 8-stage); forcing particular lengths can hit bad minima; SpMM
//! degrades as stages are added.

use phloem_bench::{
    graph_app_kernel, header, machine, pgo_search, train_graph_cycles, train_graph_outcome,
    train_spmm_cycles, train_spmm_outcome,
};
use phloem_benchsuite::Variant;
use phloem_compiler::PassConfig;

fn bucket_print(name: &str, points: &[(usize, f64)]) {
    println!("{name}:");
    let max_stage = points.iter().map(|(s, _)| *s).max().unwrap_or(0);
    for s in 1..=max_stage {
        let vals: Vec<f64> = points
            .iter()
            .filter(|(st, _)| *st == s)
            .map(|(_, v)| *v)
            .collect();
        if vals.is_empty() {
            println!("  {s:>2} stages:  x (no pipeline of this length profiled)");
            continue;
        }
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vals.iter().cloned().fold(0.0, f64::max);
        let best = max;
        println!(
            "  {s:>2} stages:  n={:<3} min {min:>5.2}x  max {max:>5.2}x  best {best:>5.2}x",
            vals.len()
        );
    }
}

fn main() {
    header("Fig. 13: training speedup vs. pipeline length (PGO search)");
    let cfg = machine();
    for app in ["BFS", "CC", "Radii"] {
        eprintln!("[fig13] {app}...");
        let kernel = graph_app_kernel(app);
        let serial = train_graph_cycles(app, &Variant::Serial, &cfg).expect("serial training");
        let pgo = pgo_search(&kernel, serial, |cuts, budget| {
            train_graph_outcome(
                app,
                &Variant::Phloem {
                    passes: PassConfig::all(),
                    stages: 4,
                    cuts: cuts.to_vec(),
                },
                &cfg,
                budget,
            )
        });
        bucket_print(app, &pgo.points);
        println!("  ({} candidate pipelines profiled)", pgo.points.len());
        for f in &pgo.failures {
            println!("  FAILED {f}");
        }
    }
    // SpMM.
    eprintln!("[fig13] SpMM...");
    let kernel = phloem_benchsuite::spmm::kernel();
    let serial = train_spmm_cycles(&Variant::Serial, &cfg).expect("serial SpMM training");
    let pgo = pgo_search(&kernel, serial, |cuts, budget| {
        train_spmm_outcome(
            &Variant::Phloem {
                passes: PassConfig::all(),
                stages: 4,
                cuts: cuts.to_vec(),
            },
            &cfg,
            budget,
        )
    });
    bucket_print("SpMM", &pgo.points);
    println!("  ({} candidate pipelines profiled)", pgo.points.len());
    for f in &pgo.failures {
        println!("  FAILED {f}");
    }
    println!();
    println!("paper: too many stages add communication that limits performance;");
    println!("       SpMM monotonically degrades with stage count.");
}
