//! Fig. 9: per-benchmark speedup over the serial baseline for the
//! data-parallel, Phloem (static and profile-guided), and manually
//! pipelined versions, gmean'd across the test inputs.
//!
//! Paper shape: Phloem ~1.7x gmean over serial and ~85% of manual;
//! Phloem beats data-parallel almost everywhere; BFS and Radii *exceed*
//! manual; SpMM is the negative result (~1x, manual's bespoke
//! merge-skip wins).
//!
//! After the speedup table, a stall-attribution section re-runs each
//! app's Phloem pipeline on its first test input under the streaming
//! metrics aggregator ([`pipette_sim::MetricsSink`]) and prints where
//! the compute stages' cycles went plus the critical-stage attribution
//! — the same trace-derived profile the PGO search reports per
//! candidate.

use phloem_bench::{
    fig9_matrix, header, machine, pgo_enabled, print_speedups, run_graph_app_traced, scale,
    SpeedupRow, GRAPH_APPS,
};
use phloem_benchsuite::{spmm, Variant};
use phloem_workloads::{spmm_test_matrices, test_graphs};
use pipette_sim::MetricsSink;

/// Prints one app's trace-derived stall attribution from a finished
/// metrics aggregator.
fn print_attribution(app: &str, input: &str, m: &MetricsSink) {
    let b = m.stall_breakdown();
    let total = b.issue + b.backend + b.queue + b.other;
    if total <= 0.0 {
        println!("  {app:<8} {input}: no compute-stage cycles traced");
        return;
    }
    let pct = |v: f64| 100.0 * v / total;
    let critical = m
        .critical_stage()
        .map(|i| {
            let s = &m.stages[i];
            format!("`{}` ({})", s.name, s.dominant_stall())
        })
        .unwrap_or_else(|| "-".into());
    println!(
        "  {app:<8} {input:<16} issue {:5.1}%  backend {:5.1}%  queue {:5.1}%  other {:5.1}%   critical: {critical}",
        pct(b.issue),
        pct(b.backend),
        pct(b.queue),
        pct(b.other),
    );
}

fn main() {
    let with_pgo = pgo_enabled();
    header("Fig. 9: speedup over serial (gmean across test inputs)");
    let matrix = fig9_matrix(with_pgo);
    let mut cols = vec!["data-parallel", "phloem-static", "manual"];
    if with_pgo {
        cols.push("phloem-pgo");
    }
    let rows: Vec<SpeedupRow> = matrix
        .rows
        .iter()
        .map(|(app, per_input)| SpeedupRow {
            label: app.clone(),
            values: phloem_bench::speedups_vs_serial(per_input),
        })
        .collect();
    print_speedups(&cols, &rows);
    if !matrix.failures.is_empty() {
        println!();
        println!(
            "{} variant(s) failed and fell back to serial:",
            matrix.failures.len()
        );
        for f in &matrix.failures {
            println!("  - {f}");
        }
    }

    header("Phloem stall attribution (metrics aggregator, first test input)");
    let cfg = machine();
    let v = Variant::phloem();
    if let Some(gi) = test_graphs(scale()).first() {
        for app in GRAPH_APPS {
            let (r, sink) = run_graph_app_traced(
                app,
                &v,
                &gi.graph,
                &cfg,
                gi.name,
                Box::new(MetricsSink::new()),
            );
            match (r, sink.downcast_ref::<MetricsSink>()) {
                (Ok(_), Some(m)) => print_attribution(app, gi.name, m),
                _ => println!("  {app:<8} {}: traced run failed", gi.name),
            }
        }
    }
    if let Some(mi) = spmm_test_matrices(scale()).first() {
        let bt = mi.matrix.transpose();
        let (r, sink) = spmm::run_traced(
            &v,
            &mi.matrix,
            &bt,
            &cfg,
            mi.name,
            Box::new(MetricsSink::new()),
        );
        match (r, sink.downcast_ref::<MetricsSink>()) {
            (Ok(_), Some(m)) => print_attribution("SpMM", mi.name, m),
            _ => println!("  SpMM     {}: traced run failed", mi.name),
        }
    }

    println!();
    println!("paper: Phloem gmean 1.7x; 85% of manual; BFS/Radii beat manual;");
    println!("       SpMM ~1x (bespoke manual merge-skip unavailable to Phloem).");
}
