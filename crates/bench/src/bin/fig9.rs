//! Fig. 9: per-benchmark speedup over the serial baseline for the
//! data-parallel, Phloem (static and profile-guided), and manually
//! pipelined versions, gmean'd across the test inputs.
//!
//! Paper shape: Phloem ~1.7x gmean over serial and ~85% of manual;
//! Phloem beats data-parallel almost everywhere; BFS and Radii *exceed*
//! manual; SpMM is the negative result (~1x, manual's bespoke
//! merge-skip wins).

use phloem_bench::{fig9_matrix, header, pgo_enabled, print_speedups, SpeedupRow};

fn main() {
    let with_pgo = pgo_enabled();
    header("Fig. 9: speedup over serial (gmean across test inputs)");
    let matrix = fig9_matrix(with_pgo);
    let mut cols = vec!["data-parallel", "phloem-static", "manual"];
    if with_pgo {
        cols.push("phloem-pgo");
    }
    let rows: Vec<SpeedupRow> = matrix
        .rows
        .iter()
        .map(|(app, per_input)| SpeedupRow {
            label: app.clone(),
            values: phloem_bench::speedups_vs_serial(per_input),
        })
        .collect();
    print_speedups(&cols, &rows);
    if !matrix.failures.is_empty() {
        println!();
        println!(
            "{} variant(s) failed and fell back to serial:",
            matrix.failures.len()
        );
        for f in &matrix.failures {
            println!("  - {f}");
        }
    }
    println!();
    println!("paper: Phloem gmean 1.7x; 85% of manual; BFS/Radii beat manual;");
    println!("       SpMM ~1x (bespoke manual merge-skip unavailable to Phloem).");
}
