//! Host simulation throughput (`BENCH_simspeed.json`): simulated
//! megacycles per wall-clock second on the PGO search workload, across
//! the scheduler (polling vs. event-driven) and execution-engine
//! (tree-walking vs. flat bytecode) dimensions.
//!
//! The PGO search (Fig. 13) is the simulator's heaviest consumer — it
//! profiles every candidate pipeline over the training inputs — so it
//! is where simulator host-efficiency matters most. Every combination
//! produces bit-identical simulated cycles (asserted here per run); the
//! difference is purely host work. `Polling` × `Tree` is the seed
//! simulator's full host model, so the combined ratio reported here is
//! the cumulative host speedup over the seed; the flat-over-tree ratio
//! isolates the bytecode engine's contribution under the event-driven
//! scheduler.
//!
//! Two flat-over-tree ratios are reported, deliberately:
//!
//! * **end-to-end** — the full sweep, where the cycle-accurate `World`
//!   model (cache hierarchy, issue ports, predictors) dominates host
//!   time and is shared by both engines, so the achievable ratio is
//!   bounded well below the engines' intrinsic difference;
//! * **engine-isolated** — the same BFS kernel driven serially against
//!   a unit-latency world, so host time is interpreter dispatch and
//!   little else. This is the honest measure of the engine swap itself;
//!   both rows execute identical atom sequences (asserted).
//!
//! Output: a summary on stdout and `BENCH_simspeed.json` in the current
//! directory. Set `SCALE=tiny|small|full` as usual; `REPS=<n>` (default
//! 3) controls how many timed repetitions each combination gets (the
//! best repetition is reported, minimizing host noise). With `--smoke`
//! (used by CI) the sweep is truncated to a handful of candidates, one
//! repetition, and no JSON is written — the cycle-equality and
//! atom-equality assertions across all combinations still run.
//!
//! Noise policy: every timed section is best-of-reps, and the smoke
//! regression gate additionally runs **pool-quiesced** — it takes the
//! fleet-exclusion lock in `phloem-pool`, so no in-process
//! work-stealing fleet can run concurrently and steal host cycles from
//! the measurement. With `PHLOEM_PIN=1` the measuring thread is also
//! pinned to core 0, taking CPU migration off the table on multi-core
//! hosts. External load (shared-box neighbors, frequency scaling) is
//! handled by the gate's re-measure-before-failing protocol.

use std::time::Instant;

use phloem_bench::{header, machine, scale};
use phloem_benchsuite::{bfs, Variant};
use phloem_compiler::search::{enumerate_pipelines, SearchOptions};
use phloem_compiler::PassConfig;
use phloem_ir::{
    bind_params, compile, ArrayId, BinOp, BlockReason, BranchId, FlatInterp, LoadId, MemState,
    QueueId, StageExec, StageSpec, StepInterp, StepResult, Tid, Time, Trap, UopClass, Value, World,
};
use phloem_workloads::{training_graphs, GraphInput};
use pipette_sim::{ExecEngine, MachineConfig, NoopSink, SchedulerKind, WatchdogConfig};

/// How each timed run engages the tracing layer.
#[derive(Clone, Copy, PartialEq)]
enum TraceMode {
    /// No sink installed (the `trace_mask` short-circuit never loads).
    None,
    /// A [`NoopSink`] with an empty interest mask: the sink is
    /// installed, but every emit point reduces to one cached mask test.
    /// This is the cost of *having* the tracing layer while it is off.
    DisabledSink,
    /// A [`NoopSink`] subscribed to every event: events are constructed
    /// and dispatched, then discarded. This isolates the emit-path cost
    /// from any real sink's aggregation work.
    CountingSink,
}

/// Profiles one candidate cut set over the training graphs; returns the
/// total simulated cycles, or `None` if the candidate fails to compile
/// or run (the search skips such candidates in every scheduler mode
/// alike, so the workloads stay comparable).
fn profile_candidate(
    cuts: &[LoadId],
    cfg: &MachineConfig,
    graphs: &[GraphInput],
    trace: TraceMode,
) -> Option<u64> {
    let v = Variant::Phloem {
        passes: PassConfig::all(),
        stages: 4,
        cuts: cuts.to_vec(),
    };
    let mut total = 0u64;
    for gi in graphs {
        let m = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match trace {
            TraceMode::None => bfs::run(&v, &gi.graph, 0, cfg, gi.name),
            TraceMode::DisabledSink => {
                bfs::run_traced(
                    &v,
                    &gi.graph,
                    0,
                    cfg,
                    gi.name,
                    Box::new(NoopSink::disabled()),
                )
                .0
            }
            TraceMode::CountingSink => {
                bfs::run_traced(
                    &v,
                    &gi.graph,
                    0,
                    cfg,
                    gi.name,
                    Box::new(NoopSink::counting()),
                )
                .0
            }
        }))
        .ok()?
        .ok()?;
        total += m.cycles;
    }
    Some(total)
}

/// One timed sweep of the whole PGO search workload: every candidate,
/// every training graph. Returns `(total simulated cycles, per-candidate
/// cycle totals)` — the latter is compared across combinations to assert
/// bit-identical timing.
fn sweep(
    candidates: &[Vec<LoadId>],
    cfg: &MachineConfig,
    graphs: &[GraphInput],
    trace: TraceMode,
) -> (u64, Vec<Option<u64>>) {
    let mut per_candidate = Vec::with_capacity(candidates.len());
    let mut total = 0u64;
    for cuts in candidates {
        let c = profile_candidate(cuts, cfg, graphs, trace);
        total += c.unwrap_or(0);
        per_candidate.push(c);
    }
    (total, per_candidate)
}

struct Timed {
    label: &'static str,
    best_secs: f64,
    sim_cycles: u64,
    per_candidate: Vec<Option<u64>>,
}

impl Timed {
    fn mcps(&self) -> f64 {
        self.sim_cycles as f64 / 1e6 / self.best_secs
    }
}

#[allow(clippy::too_many_arguments)]
fn time_combo(
    label: &'static str,
    kind: SchedulerKind,
    engine: ExecEngine,
    watchdog: WatchdogConfig,
    candidates: &[Vec<LoadId>],
    graphs: &[GraphInput],
    reps: usize,
    trace: TraceMode,
) -> Timed {
    let mut cfg = machine();
    cfg.scheduler = kind;
    cfg.engine = engine;
    cfg.watchdog = watchdog;
    // Warm-up (page cache, lazy allocations) outside the timed region.
    let _ = profile_candidate(&candidates[0], &cfg, graphs, trace);
    let mut best_secs = f64::INFINITY;
    let mut sim_cycles = 0;
    let mut per_candidate = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        let (total, per) = sweep(candidates, &cfg, graphs, trace);
        let secs = t0.elapsed().as_secs_f64();
        if secs < best_secs {
            best_secs = secs;
        }
        sim_cycles = total;
        per_candidate = per;
    }
    Timed {
        label,
        best_secs,
        sim_cycles,
        per_candidate,
    }
}

/// Times the three tracing modes (no sink, disabled sink, null sink on)
/// on the fastest combo, interleaved within each repetition so that
/// host-load drift cannot masquerade as tracing overhead. Returns the
/// modes in declaration order (best repetition kept for each) plus the
/// raw per-repetition wall times, one `[none, disabled, null]` row per
/// repetition, for the paired overhead estimator.
fn time_trace_trio(
    candidates: &[Vec<LoadId>],
    graphs: &[GraphInput],
    reps: usize,
) -> ([Timed; 3], Vec<[f64; 3]>) {
    const MODES: [(&str, TraceMode); 3] = [
        ("event x flat (rebaselined)", TraceMode::None),
        ("event x flat, sink mask 0", TraceMode::DisabledSink),
        ("event x flat, null sink on", TraceMode::CountingSink),
    ];
    let mut cfg = machine();
    cfg.scheduler = SchedulerKind::EventDriven;
    cfg.engine = ExecEngine::Flat;
    for (_, mode) in MODES {
        let _ = profile_candidate(&candidates[0], &cfg, graphs, mode);
    }
    let mut out = MODES.map(|(label, _)| Timed {
        label,
        best_secs: f64::INFINITY,
        sim_cycles: 0,
        per_candidate: Vec::new(),
    });
    let mut rep_secs = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut row = [0.0f64; 3];
        for (i, (_, mode)) in MODES.iter().enumerate() {
            let t0 = Instant::now();
            let (total, per) = sweep(candidates, &cfg, graphs, *mode);
            let secs = t0.elapsed().as_secs_f64();
            row[i] = secs;
            if secs < out[i].best_secs {
                out[i].best_secs = secs;
            }
            out[i].sim_cycles = total;
            out[i].per_candidate = per;
        }
        rep_secs.push(row);
    }
    (out, rep_secs)
}

// ---------------------------------------------------------------------
// Engine-isolated measurement: the same BFS kernel, serial, against a
// unit-latency world. Host time here is interpreter dispatch (plus the
// functional memory both engines share), so the flat/tree ratio
// measures the engine swap itself rather than the cycle-level model.
// ---------------------------------------------------------------------

/// A `World` that charges one time unit per atom and models nothing
/// else: functional memory, no cache hierarchy, no issue ports, no
/// queues (the serial kernel uses none). `atoms` counts World calls —
/// the same unit `ThreadStats` counts — so the engine-isolated and
/// world-isolated rows share one atom definition.
struct UnitWorld {
    mem: MemState,
    t: Time,
    atoms: u64,
}

impl World for UnitWorld {
    fn uop(&mut self, _tid: Tid, _c: UopClass, dep: Time) -> Time {
        self.t += 1;
        self.atoms += 1;
        self.t.max(dep + 1)
    }
    fn branch(&mut self, _tid: Tid, _s: BranchId, _tk: bool, ready: Time) -> Time {
        self.t += 1;
        self.atoms += 1;
        self.t.max(ready + 1)
    }
    fn load(&mut self, _tid: Tid, a: ArrayId, i: i64, _dep: Time) -> Result<(Value, Time), Trap> {
        let v = self.mem.load(a, i)?;
        self.t += 1;
        self.atoms += 1;
        Ok((v, self.t))
    }
    fn store(&mut self, _tid: Tid, a: ArrayId, i: i64, v: Value, _dep: Time) -> Result<Time, Trap> {
        self.mem.store(a, i, v)?;
        self.t += 1;
        self.atoms += 1;
        Ok(self.t)
    }
    fn atomic_rmw(
        &mut self,
        _tid: Tid,
        op: BinOp,
        a: ArrayId,
        i: i64,
        v: Value,
        _dep: Time,
    ) -> Result<(Value, Time), Trap> {
        let old = self.mem.load(a, i)?;
        let new = phloem_ir::eval_binop(op, old, v)?;
        self.mem.store(a, i, new)?;
        self.t += 1;
        self.atoms += 1;
        Ok((old, self.t))
    }
    fn try_enq(
        &mut self,
        _tid: Tid,
        _q: QueueId,
        _v: Value,
        _dep: Time,
    ) -> Result<Option<Time>, Trap> {
        Err(Trap::Malformed("no queues in the serial kernel".into()))
    }
    fn try_deq(
        &mut self,
        _tid: Tid,
        _q: QueueId,
        _dep: Time,
    ) -> Result<Option<(Value, Time)>, Trap> {
        Err(Trap::Malformed("no queues in the serial kernel".into()))
    }
    fn mem(&self) -> &MemState {
        &self.mem
    }
    fn mem_mut(&mut self) -> &mut MemState {
        &mut self.mem
    }
}

struct InterpTimed {
    best_secs: f64,
    atoms: u64,
}

impl InterpTimed {
    fn ns_per_atom(&self) -> f64 {
        self.best_secs * 1e9 / self.atoms as f64
    }
}

/// Runs full serial BFS (all rounds, host fringe swap between rounds)
/// over every training graph, `passes` times, on one engine; returns
/// total atoms executed (World calls, not interpreter steps — one step
/// of a compound instruction can issue several atoms).
fn interp_run(engine: ExecEngine, graphs: &[GraphInput], passes: usize) -> u64 {
    let f = bfs::kernel();
    let prog = compile(&f, &[]).expect("serial BFS kernel compiles");
    let mut atoms = 0u64;
    for _ in 0..passes {
        for gi in graphs {
            let (mem, arrays) = bfs::build_mem(&gi.graph, 0, 1);
            let mut w = UnitWorld {
                mem,
                t: 0,
                atoms: 0,
            };
            let mut len = 1i64;
            let mut cur_dist = 1i64;
            while len > 0 {
                w.mem.store(arrays.fringe_len, 0, Value::I64(len)).unwrap();
                let bound = bind_params(&f, &[("cur_dist", Value::I64(cur_dist))]);
                match engine {
                    ExecEngine::Tree => {
                        let mut it = StepInterp::new(
                            StageSpec {
                                func: &f,
                                handlers: &[],
                            },
                            Tid(0),
                            &bound,
                        );
                        drive(|n| it.run_slice(&mut w, n));
                    }
                    ExecEngine::Flat => {
                        let mut it = FlatInterp::new(&prog, Tid(0), &bound);
                        drive(|n| StageExec::run_slice(&mut it, &mut w, n));
                    }
                };
                let ol = w.mem.load(arrays.out_len, 0).unwrap().as_i64().unwrap();
                for k in 0..ol {
                    let v = w.mem.load(arrays.next_fringe, k).unwrap();
                    w.mem.store(arrays.fringe, k, v).unwrap();
                }
                len = ol;
                cur_dist += 1;
            }
            atoms += w.atoms;
        }
    }
    atoms
}

/// Drives one invocation to completion in scheduler-sized slices,
/// mirroring how the simulator's scheduler activates a stage.
fn drive(mut run_slice: impl FnMut(u32) -> Result<(u32, StepResult), Trap>) -> u64 {
    let mut steps = 0u64;
    loop {
        match run_slice(1024).expect("serial kernel cannot trap") {
            (n, StepResult::Blocked(BlockReason::Budget)) => steps += n as u64,
            (n, StepResult::Finished) => {
                steps += n as u64;
                return steps;
            }
            (_, r) => panic!("serial kernel cannot block: {r:?}"),
        }
    }
}

fn time_interp(
    engine: ExecEngine,
    graphs: &[GraphInput],
    passes: usize,
    reps: usize,
) -> InterpTimed {
    let _ = interp_run(engine, graphs, 1); // warm-up
    let mut best_secs = f64::INFINITY;
    let mut atoms = 0;
    for _ in 0..reps {
        let t0 = Instant::now();
        atoms = interp_run(engine, graphs, passes);
        best_secs = best_secs.min(t0.elapsed().as_secs_f64());
    }
    InterpTimed { best_secs, atoms }
}

/// World-isolated: the *same* serial BFS kernel as the interp rows, but
/// driven through the full `Session` — cycle-accurate caches, issue
/// calendar, predictors, watchdog — on the event-driven × flat combo.
/// Both sides execute identical atom sequences (asserted in `main`), so
/// the gap between this row's ns/atom and `interp_flat`'s is the host
/// cost of the timing model itself, per atom.
fn time_world_isolated(graphs: &[GraphInput], passes: usize, reps: usize) -> InterpTimed {
    let mut cfg = machine();
    cfg.scheduler = SchedulerKind::EventDriven;
    cfg.engine = ExecEngine::Flat;
    let run_all = |passes: usize| -> u64 {
        let mut atoms = 0u64;
        for _ in 0..passes {
            for gi in graphs {
                let m = bfs::run(&Variant::Serial, &gi.graph, 0, &cfg, gi.name)
                    .expect("serial BFS through the full world");
                atoms += m
                    .stats
                    .threads
                    .iter()
                    .map(|t| t.uops + t.branches + t.loads + t.stores + t.enqs + t.deqs)
                    .sum::<u64>();
            }
        }
        atoms
    };
    let _ = run_all(1); // warm-up
    let mut best_secs = f64::INFINITY;
    let mut atoms = 0;
    for _ in 0..reps {
        let t0 = Instant::now();
        atoms = run_all(passes);
        best_secs = best_secs.min(t0.elapsed().as_secs_f64());
    }
    InterpTimed { best_secs, atoms }
}

/// CI regression gate (smoke mode only): compares the measured
/// event-driven × flat throughput against the last recorded
/// `BENCH_simspeed.json` and fails on a >15% regression. This host's
/// throughput drifts ~±10% on minute timescales (frequency scaling,
/// shared-box neighbors), so a dip below the floor triggers up to two
/// fresh re-measurements (`remeasure`) before failing — a transient
/// dip recovers, a real regression fails every time. Skips with a note
/// when no recording exists or it cannot be parsed, so a fresh
/// checkout is not blocked on running the full bench first.
///
/// The caller must invoke this inside [`phloem_pool::quiesced`]: the
/// re-measurements are only trustworthy when no in-process fleet is
/// competing for cores (quiescence makes self-inflicted load — e.g. a
/// harness that runs the gate while a search fleet is live —
/// structurally impossible; it cannot help against other processes,
/// which the re-measure protocol covers).
fn gate_against_recorded(measured_mcps: f64, mut remeasure: impl FnMut() -> f64) {
    const PATH: &str = "BENCH_simspeed.json";
    const MAX_REGRESSION: f64 = 0.15;
    let Ok(text) = std::fs::read_to_string(PATH) else {
        println!("  regression gate: {PATH} not found; skipped (run the full bench to record)");
        return;
    };
    // Hand-rolled extraction of `"event_flat": { ... "mcycles_per_s": N }`
    // (no JSON crate in-tree; the bench itself writes this shape).
    let recorded = text
        .split("\"event_flat\"")
        .nth(1)
        .and_then(|s| s.split("\"mcycles_per_s\":").nth(1))
        .and_then(|s| s.trim().split([',', '}']).next())
        .and_then(|s| s.trim().parse::<f64>().ok());
    let Some(recorded) = recorded else {
        println!("  regression gate: could not parse event_flat from {PATH}; skipped");
        return;
    };
    let floor = recorded * (1.0 - MAX_REGRESSION);
    let mut measured = measured_mcps;
    for _ in 0..2 {
        if measured >= floor {
            break;
        }
        println!(
            "  regression gate: {measured:.1} Mcycles/s below floor {floor:.1}; \
             re-measuring (host-noise guard)"
        );
        measured = measured.max(remeasure());
    }
    println!(
        "  regression gate: measured {measured:.1} Mcycles/s, recorded {recorded:.1}, \
         floor {floor:.1}"
    );
    assert!(
        measured >= floor,
        "simspeed regression: event x flat measured {measured:.1} Mcycles/s, \
         more than {:.0}% below the recorded {recorded:.1} in {PATH}",
        MAX_REGRESSION * 100.0
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps: usize = if smoke {
        1
    } else {
        std::env::var("REPS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(3)
            .max(1)
    };
    let kernel = bfs::kernel();
    let mut candidates: Vec<Vec<LoadId>> = enumerate_pipelines(&kernel, &SearchOptions::default())
        .into_iter()
        .map(|(cuts, _)| cuts)
        .collect();
    if smoke {
        candidates.truncate(6);
    }
    let graphs = training_graphs(scale());

    header("Sim throughput: BFS PGO search workload");
    println!(
        "  {} candidate pipelines x {} training graphs, {} reps each (best kept)",
        candidates.len(),
        graphs.len(),
        reps
    );

    let polling_tree = time_combo(
        "polling x tree (seed)",
        SchedulerKind::Polling,
        ExecEngine::Tree,
        WatchdogConfig::default(),
        &candidates,
        &graphs,
        reps,
        TraceMode::None,
    );
    let event_tree = time_combo(
        "event-driven x tree",
        SchedulerKind::EventDriven,
        ExecEngine::Tree,
        WatchdogConfig::default(),
        &candidates,
        &graphs,
        reps,
        TraceMode::None,
    );
    // Even in smoke mode the headline combo gets three repetitions: it
    // feeds the CI regression gate, and one-rep numbers on a noisy host
    // would trip a 15% threshold spuriously.
    let flat_reps = if smoke { 3 } else { reps };
    let event_flat = time_combo(
        "event-driven x flat",
        SchedulerKind::EventDriven,
        ExecEngine::Flat,
        WatchdogConfig::default(),
        &candidates,
        &graphs,
        flat_reps,
        TraceMode::None,
    );
    // Watchdog overhead: the fastest combo again with the watchdog
    // fully disabled. The checks run at round boundaries only, so the
    // target is well under 2% of host time.
    let event_flat_wd_off = time_combo(
        "event-driven x flat (watchdog off)",
        SchedulerKind::EventDriven,
        ExecEngine::Flat,
        WatchdogConfig::off(),
        &candidates,
        &graphs,
        reps,
        TraceMode::None,
    );
    // Tracing overhead. The off-overhead comparison (no sink vs. a
    // disabled sink) is the CI-pinned number, so the three tracing
    // modes are timed *interleaved*, rep by rep, with at least five
    // repetitions even in smoke mode: host drift (frequency scaling,
    // neighbors on a shared box) then hits all three modes alike, and
    // the best-of-reps comparison converges on the true delta instead
    // of on whichever block ran during a quiet spell.
    let trace_reps = reps.max(5);
    let (trio, trace_rep_secs) = time_trace_trio(&candidates, &graphs, trace_reps);
    let [trace_base, trace_off, trace_null] = trio;

    for t in [
        &event_tree,
        &event_flat,
        &event_flat_wd_off,
        &trace_base,
        &trace_off,
        &trace_null,
    ] {
        assert_eq!(
            t.per_candidate, polling_tree.per_candidate,
            "{} disagreed with the seed on simulated cycles",
            t.label
        );
    }

    for t in [
        &polling_tree,
        &event_tree,
        &event_flat,
        &event_flat_wd_off,
        &trace_base,
        &trace_off,
        &trace_null,
    ] {
        println!(
            "  {:<26}: {:>8.1} Mcycles/s  ({:.3} s, {} Mcycles)",
            t.label,
            t.mcps(),
            t.best_secs,
            t.sim_cycles / 1_000_000
        );
    }
    let flat_over_tree = event_flat.mcps() / event_tree.mcps();
    let event_over_polling = event_tree.mcps() / polling_tree.mcps();
    let total = event_flat.mcps() / polling_tree.mcps();
    let watchdog_overhead_pct =
        (event_flat_wd_off.mcps() / event_flat.mcps() - 1.0).max(0.0) * 100.0;
    // Tracing overhead estimator. The true cost is a constant, so every
    // noise source only ever *inflates* a measured ratio; the cleanest
    // observation is therefore the smallest. Two views, take the lower:
    // best-of-reps against best-of-reps (filters independent per-sweep
    // noise), and the best *same-repetition* pairing (filters host-load
    // drift that spans several adjacent sweeps — cgroup throttling
    // windows on a shared box routinely swallow a whole repetition and
    // would otherwise masquerade as multi-percent tracing overhead).
    let trace_overhead_pct = |col: usize| {
        let min_col = |c: usize| {
            trace_rep_secs
                .iter()
                .map(|r| r[c])
                .fold(f64::INFINITY, f64::min)
        };
        let best_of = min_col(col) / min_col(0);
        let paired = trace_rep_secs
            .iter()
            .map(|r| r[col] / r[0])
            .fold(f64::INFINITY, f64::min);
        (best_of.min(paired) - 1.0).max(0.0) * 100.0
    };
    let tracing_off_overhead_pct = trace_overhead_pct(1);
    let tracing_null_sink_overhead_pct = trace_overhead_pct(2);
    println!("  host speedup, flat engine over tree (event-driven): {flat_over_tree:.2}x");
    println!("  host speedup, event-driven over polling (tree)    : {event_over_polling:.2}x");
    println!("  cumulative over the seed simulator                : {total:.2}x");
    println!("  watchdog overhead (event-driven x flat, on vs off): {watchdog_overhead_pct:.2}%");
    println!(
        "  tracing-disabled overhead (mask-0 sink vs no sink): {tracing_off_overhead_pct:.2}%"
    );
    println!("  null-sink overhead (all events built, discarded)  : {tracing_null_sink_overhead_pct:.2}%");
    println!("  (identical simulated cycles in every combination)");
    assert!(
        tracing_off_overhead_pct < 1.0,
        "tracing-disabled overhead {tracing_off_overhead_pct:.2}% breaches the 1% budget"
    );

    // Engine-isolated: serial kernel, unit-latency world. More passes
    // than sweep reps so each timed run is long enough to be stable.
    let passes = if smoke { 1 } else { 20 };
    let interp_tree = time_interp(ExecEngine::Tree, &graphs, passes, reps);
    let interp_flat = time_interp(ExecEngine::Flat, &graphs, passes, reps);
    assert_eq!(
        interp_tree.atoms, interp_flat.atoms,
        "engines disagreed on the atom count of the serial kernel"
    );
    let interp_ratio = interp_tree.ns_per_atom() / interp_flat.ns_per_atom();
    header("Engine-isolated: serial BFS kernel, unit-latency world");
    println!(
        "  tree: {:>5.1} ns/atom   flat: {:>5.1} ns/atom   ({} atoms)",
        interp_tree.ns_per_atom(),
        interp_flat.ns_per_atom(),
        interp_tree.atoms
    );
    println!("  flat engine over tree, interpreter dispatch only  : {interp_ratio:.2}x");

    // World-isolated: the same serial kernel and atom sequence through
    // the full timing model. ns/atom here minus interp_flat's is the
    // per-atom host cost of the cycle-accurate World.
    let world_flat = time_world_isolated(&graphs, passes, reps);
    assert_eq!(
        world_flat.atoms, interp_flat.atoms,
        "the full world disagreed with the unit world on the serial kernel's atom count"
    );
    let world_over_interp = world_flat.ns_per_atom() / interp_flat.ns_per_atom();
    header("World-isolated: same serial kernel, full timing model");
    println!(
        "  full world: {:>5.1} ns/atom   unit world: {:>5.1} ns/atom   ({} atoms)",
        world_flat.ns_per_atom(),
        interp_flat.ns_per_atom(),
        world_flat.atoms
    );
    println!("  timing-model cost over interpreter dispatch       : {world_over_interp:.2}x");

    if smoke {
        println!("  smoke mode: cycle and atom equality held; OK");
        // Quiesced: no in-process fleet may run while the gate (and its
        // noise-guard re-measurements) time the simulator. Optional
        // pinning (PHLOEM_PIN=1) removes CPU migration as a noise
        // source on multi-core hosts.
        phloem_pool::quiesced(|| {
            if phloem_pool::pinning_requested() {
                let pinned = phloem_pool::pin_to_core(0);
                println!("  regression gate: pin to core 0: {pinned}");
            }
            gate_against_recorded(event_flat.mcps(), || {
                time_combo(
                    "event-driven x flat (gate retry)",
                    SchedulerKind::EventDriven,
                    ExecEngine::Flat,
                    WatchdogConfig::default(),
                    &candidates,
                    &graphs,
                    3,
                    TraceMode::None,
                )
                .mcps()
            });
        });
        return;
    }

    let combo_json = |t: &Timed| {
        format!(
            "{{ \"wall_s\": {:.6}, \"mcycles_per_s\": {:.3} }}",
            t.best_secs,
            t.mcps()
        )
    };
    let interp_json = |t: &InterpTimed| {
        format!(
            "{{ \"wall_s\": {:.6}, \"ns_per_atom\": {:.3} }}",
            t.best_secs,
            t.ns_per_atom()
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"simspeed\",\n  \"workload\": \"BFS PGO search over training graphs\",\n  \"scale\": \"{:?}\",\n  \"candidates\": {},\n  \"reps\": {},\n  \"sim_cycles_total\": {},\n  \"polling_tree\": {},\n  \"event_tree\": {},\n  \"event_flat\": {},\n  \"host_speedup_flat_over_tree\": {:.4},\n  \"host_speedup_event_over_polling\": {:.4},\n  \"host_speedup_total_over_seed\": {:.4},\n  \"interp_tree\": {},\n  \"interp_flat\": {},\n  \"interp_speedup_flat_over_tree\": {:.4},\n  \"event_flat_world_isolated\": {},\n  \"world_over_interp_ratio\": {:.4},\n  \"event_flat_watchdog_off\": {},\n  \"watchdog_overhead_pct\": {:.4},\n  \"event_flat_trace_disabled\": {},\n  \"event_flat_null_sink\": {},\n  \"tracing_off_overhead_pct\": {:.4},\n  \"tracing_null_sink_overhead_pct\": {:.4},\n  \"note\": \"host_speedup_flat_over_tree is end-to-end over the full sweep, where the shared cycle-accurate World model dominates host time; interp_speedup_flat_over_tree isolates the execution-engine swap (same kernel, unit-latency world, identical atom sequences). event_flat_world_isolated drives the identical serial kernel and atom sequence through the full cycle-accurate Session, so world_over_interp_ratio (its ns/atom over interp_flat's) is the per-atom host cost of the timing model itself. In --smoke mode the bench additionally gates the measured event_flat throughput against the value recorded here, failing on a >15 percent regression. watchdog_overhead_pct compares event_flat against the same combo with the watchdog disabled (target <2%); the interp_* rows bypass the scheduler entirely and so carry no watchdog checks by construction. tracing_off_overhead_pct compares a run with no trace sink against one with an installed sink whose interest mask is empty (every emit point reduces to one cached mask test; budget <1%, asserted); tracing_null_sink_overhead_pct is the same comparison against a sink subscribed to every event that discards them, isolating the emit-path cost from aggregation. The three tracing modes are timed interleaved within each repetition, and the reported ratio is the cleanest of best-of-reps and same-repetition pairings: the true cost is a constant, so host-load noise can only inflate a measured ratio.\"\n}}\n",
        scale(),
        candidates.len(),
        reps,
        event_flat.sim_cycles,
        combo_json(&polling_tree),
        combo_json(&event_tree),
        combo_json(&event_flat),
        flat_over_tree,
        event_over_polling,
        total,
        interp_json(&interp_tree),
        interp_json(&interp_flat),
        interp_ratio,
        interp_json(&world_flat),
        world_over_interp,
        combo_json(&event_flat_wd_off),
        watchdog_overhead_pct,
        combo_json(&trace_off),
        combo_json(&trace_null),
        tracing_off_overhead_pct,
        tracing_null_sink_overhead_pct,
    );
    std::fs::write("BENCH_simspeed.json", &json).expect("write BENCH_simspeed.json");
    println!("  wrote BENCH_simspeed.json");
}
