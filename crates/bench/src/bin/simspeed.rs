//! Host simulation throughput (`BENCH_simspeed.json`): simulated
//! megacycles per wall-clock second on the PGO search workload, for the
//! event-driven scheduler vs. the reference polling scheduler.
//!
//! The PGO search (Fig. 13) is the simulator's heaviest consumer — it
//! profiles every candidate pipeline over the training inputs — so it
//! is where simulator host-efficiency matters most. Both schedulers
//! produce bit-identical simulated cycles (asserted here per run); the
//! difference is purely host work. `Polling` is the seed simulator's
//! full host model (round-robin re-polling of blocked threads plus its
//! map-based issue tracker), so the ratio reported here is the host
//! speedup of the event-driven core over the seed.
//!
//! Output: a summary on stdout and `BENCH_simspeed.json` in the current
//! directory. Set `SCALE=tiny|small|full` as usual; `REPS=<n>` (default
//! 3) controls how many timed repetitions each scheduler gets (the best
//! repetition is reported, minimizing host noise).

use std::time::Instant;

use phloem_bench::{header, machine, scale};
use phloem_benchsuite::{bfs, Variant};
use phloem_compiler::search::{enumerate_pipelines, SearchOptions};
use phloem_compiler::PassConfig;
use phloem_ir::LoadId;
use phloem_workloads::training_graphs;
use pipette_sim::{MachineConfig, SchedulerKind};

/// Profiles one candidate cut set over the training graphs; returns the
/// total simulated cycles, or `None` if the candidate fails to compile
/// or run (the search skips such candidates in every scheduler mode
/// alike, so the workloads stay comparable).
fn profile_candidate(cuts: &[LoadId], cfg: &MachineConfig) -> Option<u64> {
    let v = Variant::Phloem {
        passes: PassConfig::all(),
        stages: 4,
        cuts: cuts.to_vec(),
    };
    let mut total = 0u64;
    for gi in training_graphs(scale()) {
        let m = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            bfs::run(&v, &gi.graph, 0, cfg, gi.name)
        }))
        .ok()?;
        total += m.cycles;
    }
    Some(total)
}

/// One timed sweep of the whole PGO search workload: every candidate,
/// every training graph. Returns `(total simulated cycles, per-candidate
/// cycle totals)` — the latter is compared across schedulers to assert
/// bit-identical timing.
fn sweep(candidates: &[Vec<LoadId>], cfg: &MachineConfig) -> (u64, Vec<Option<u64>>) {
    let mut per_candidate = Vec::with_capacity(candidates.len());
    let mut total = 0u64;
    for cuts in candidates {
        let c = profile_candidate(cuts, cfg);
        total += c.unwrap_or(0);
        per_candidate.push(c);
    }
    (total, per_candidate)
}

struct Timed {
    best_secs: f64,
    sim_cycles: u64,
    per_candidate: Vec<Option<u64>>,
}

fn time_scheduler(kind: SchedulerKind, candidates: &[Vec<LoadId>], reps: usize) -> Timed {
    let mut cfg = machine();
    cfg.scheduler = kind;
    // Warm-up (page cache, lazy allocations) outside the timed region.
    let _ = profile_candidate(&candidates[0], &cfg);
    let mut best_secs = f64::INFINITY;
    let mut sim_cycles = 0;
    let mut per_candidate = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        let (total, per) = sweep(candidates, &cfg);
        let secs = t0.elapsed().as_secs_f64();
        if secs < best_secs {
            best_secs = secs;
        }
        sim_cycles = total;
        per_candidate = per;
    }
    Timed {
        best_secs,
        sim_cycles,
        per_candidate,
    }
}

fn main() {
    let reps: usize = std::env::var("REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);
    let kernel = bfs::kernel();
    let candidates: Vec<Vec<LoadId>> = enumerate_pipelines(&kernel, &SearchOptions::default())
        .into_iter()
        .map(|(cuts, _)| cuts)
        .collect();

    header("Sim throughput: BFS PGO search workload");
    println!(
        "  {} candidate pipelines x {} training graphs, {} reps each (best kept)",
        candidates.len(),
        training_graphs(scale()).len(),
        reps
    );

    let polling = time_scheduler(SchedulerKind::Polling, &candidates, reps);
    let event = time_scheduler(SchedulerKind::EventDriven, &candidates, reps);

    assert_eq!(
        event.per_candidate, polling.per_candidate,
        "schedulers disagreed on simulated cycles"
    );

    let mcps = |t: &Timed| t.sim_cycles as f64 / 1e6 / t.best_secs;
    let (ev_mcps, po_mcps) = (mcps(&event), mcps(&polling));
    let speedup = ev_mcps / po_mcps;
    println!(
        "  polling (seed reference): {:>8.1} Mcycles/s  ({:.3} s, {} Mcycles)",
        po_mcps,
        polling.best_secs,
        polling.sim_cycles / 1_000_000
    );
    println!(
        "  event-driven            : {:>8.1} Mcycles/s  ({:.3} s, {} Mcycles)",
        ev_mcps,
        event.best_secs,
        event.sim_cycles / 1_000_000
    );
    println!("  host speedup : {speedup:.2}x (identical simulated cycles in both modes)");

    let json = format!(
        "{{\n  \"bench\": \"simspeed\",\n  \"workload\": \"BFS PGO search over training graphs\",\n  \"scale\": \"{:?}\",\n  \"candidates\": {},\n  \"reps\": {},\n  \"sim_cycles_total\": {},\n  \"polling\": {{ \"wall_s\": {:.6}, \"mcycles_per_s\": {:.3} }},\n  \"event_driven\": {{ \"wall_s\": {:.6}, \"mcycles_per_s\": {:.3} }},\n  \"host_speedup_event_over_polling\": {:.4}\n}}\n",
        scale(),
        candidates.len(),
        reps,
        event.sim_cycles,
        polling.best_secs,
        po_mcps,
        event.best_secs,
        ev_mcps,
        speedup
    );
    std::fs::write("BENCH_simspeed.json", &json).expect("write BENCH_simspeed.json");
    println!("  wrote BENCH_simspeed.json");
}
