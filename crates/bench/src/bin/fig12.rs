//! Fig. 12: Taco benchmark speedups over Taco's serial output, for the
//! data-parallel version and Phloem's *static* compilation flow (the
//! paper uses static mode for the Taco benchmarks; there are no manual
//! pipelines here).
//!
//! Paper shape: MTMul, Residual, SpMV gain ~1.5x from Phloem while
//! data-parallel barely helps; SDDMM is the opposite (regular dense
//! inner loop — conventional architectures already handle it well).

use phloem_bench::{header, machine, print_speedups, scale, SpeedupRow};
use phloem_benchsuite::taco::{self, TacoApp};
use phloem_benchsuite::{run_guarded, Measurement, Variant};
use phloem_workloads::taco_test_matrices;

fn main() {
    header("Fig. 12: Taco kernels, speedup over serial (gmean across inputs)");
    let cfg = machine();
    let inputs = taco_test_matrices(scale());
    let variants = [
        Variant::Serial,
        Variant::DataParallel(cfg.smt_threads),
        Variant::phloem(),
    ];
    let mut rows = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for app in TacoApp::all() {
        eprintln!("[fig12] {}...", app.name());
        let mut per_input = Vec::new();
        for mi in &inputs {
            eprintln!("[fig12]   {}", mi.name);
            let serial = taco::run(app, &Variant::Serial, &mi.matrix, &cfg, mi.name)
                .unwrap_or_else(|e| panic!("{} serial baseline on {}: {e}", app.name(), mi.name));
            let mut ms = vec![serial.clone()];
            for v in variants.iter().skip(1) {
                let label = format!("{}/{}/{}", app.name(), mi.name, v.label());
                match run_guarded(&label, || taco::run(app, v, &mi.matrix, &cfg, mi.name)) {
                    Ok(m) => ms.push(m),
                    Err(msg) => {
                        eprintln!("[fig12]   FAILED {msg}; falling back to serial baseline");
                        failures.push(msg);
                        ms.push(Measurement {
                            variant: format!("{} (failed; serial fallback)", v.label()),
                            ..serial.clone()
                        });
                    }
                }
            }
            per_input.push(ms);
        }
        rows.push(SpeedupRow {
            label: app.name().to_string(),
            values: phloem_bench::speedups_vs_serial(&per_input),
        });
    }
    print_speedups(&["data-parallel", "phloem-static"], &rows);
    if !failures.is_empty() {
        println!();
        println!(
            "{} variant(s) failed and fell back to serial:",
            failures.len()
        );
        for f in &failures {
            println!("  - {f}");
        }
    }
    println!();
    println!("paper: MTMul/Residual/SpMV ~1.5x for Phloem with flat data-parallel;");
    println!("       SDDMM ~1x for Phloem while data-parallel gains instead.");
}
