//! Core of the differential fuzzer (`fuzzdiff`): genome generation,
//! the exhaustive per-genome check over the cut-subset × pass-ablation
//! × scheduler/engine/fast-forward grid, delta-debugging minimization,
//! and the pool-parallel sweep driver.
//!
//! Lives in the library (rather than the `fuzzdiff` binary) so that the
//! determinism suite (`tests/pool_determinism.rs`) and the host-scaling
//! bench (`parallel`) can run the *same* sweep the CI smoke step runs
//! and assert its report is byte-identical at every worker count.

use phloem_compiler::{analyze, decouple_with_cuts, CompileOptions, PassConfig};
use phloem_ir::{
    interp, pretty, ArrayDecl, ArrayId, BinOp, Expr, Function, FunctionBuilder, LoadId, MemState,
    Pipeline, Value,
};
use phloem_pool::Pool;
use pipette_sim::{
    ChannelKind, ExecBackend, ExecEngine, MachineConfig, NativeConfig, SchedulerKind,
};
use std::sync::atomic::{AtomicU64, Ordering};

// ---------------------------------------------------------------------
// Deterministic RNG (xorshift64*): no external crates, stable across
// platforms, so a seed printed by a failing run reproduces it exactly.
// ---------------------------------------------------------------------

/// Seeded xorshift64* generator used by the fuzzer's genome stream.
pub struct Rng(u64);

impl Rng {
    /// Creates a generator (the seed's low bit is forced on so the
    /// state can never become zero).
    pub fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }
    /// Next raw 64 bits.
    #[allow(clippy::should_implement_trait)] // not an Iterator: infinite, never None
    pub fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }
    /// Uniform value below `n` (below 1 when `n` is 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
    /// True with probability `pct`/100.
    pub fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

// ---------------------------------------------------------------------
// Program genome: a compact recipe the generator expands into a
// Function + MemState. Minimization edits the genome, not the IR.
// ---------------------------------------------------------------------

/// One body segment of the outer loop, in PhloemC shapes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Segment {
    /// `x = idx[i]; y = data[x]; acc += y*3 + 1` — the paper's
    /// introductory kernel; with `filter`, the fetch+accumulate is
    /// guarded by `if (x % 2 == 0)`.
    IndirectSum {
        /// Guard the fetch+accumulate behind a parity filter.
        filter: bool,
    },
    /// `s = bounds[i]; e = bounds[i+1]; for (j in s..e) { v = items[j];
    /// acc += v; }` — the BFS/CSR nest.
    NestedSum,
    /// `h = idx[i]; atomic hist[h] += 1` — histogram RMW.
    Histogram,
    /// `wr[i] = acc; z = wr[widx[i]]; acc ^= z` — a same-array
    /// write-then-read hazard; cuts separating the store from the load
    /// must be rejected (the Fig. 4 race) or ordered correctly.
    WriteRace,
    /// `d = dense[i]; acc += d` — dense streaming (never a cut
    /// candidate; exercises adjacency/recompute paths).
    DenseAcc,
}

/// A compact recipe for one random PhloemC-shaped program.
#[derive(Clone, Debug)]
pub struct Genome {
    /// Seed of the program's input data.
    pub seed: u64,
    /// Outer trip count.
    pub n: i64,
    /// Indexable data/array length.
    pub data_len: i64,
    /// Body segments of the outer loop.
    pub segments: Vec<Segment>,
    /// Lower the outer loop as `while(1) { ...; k++; if (k>=n) break; }`.
    pub while_shape: bool,
    /// Add `if (acc > limit) break` at the end of the outer body.
    pub early_break: Option<i64>,
}

impl Genome {
    /// Draws one random genome from the seeded stream.
    pub fn random(rng: &mut Rng) -> Genome {
        let nsegs = 1 + rng.below(3) as usize;
        let mut segments = Vec::with_capacity(nsegs);
        for _ in 0..nsegs {
            segments.push(match rng.below(6) {
                0 => Segment::IndirectSum { filter: false },
                1 | 2 => Segment::IndirectSum { filter: true },
                3 => Segment::NestedSum,
                4 => Segment::Histogram,
                _ => {
                    if rng.chance(50) {
                        Segment::WriteRace
                    } else {
                        Segment::DenseAcc
                    }
                }
            });
        }
        Genome {
            seed: rng.next(),
            n: 8 + rng.below(40) as i64,
            data_len: 8 + rng.below(56) as i64,
            segments,
            while_shape: rng.chance(25),
            early_break: if rng.chance(20) {
                Some(1 + rng.below(5000) as i64)
            } else {
                None
            },
        }
    }

    /// Simpler variants for delta-debugging, most aggressive first.
    pub fn shrink_candidates(&self) -> Vec<Genome> {
        let mut out = Vec::new();
        for k in 0..self.segments.len() {
            if self.segments.len() > 1 {
                let mut g = self.clone();
                g.segments.remove(k);
                out.push(g);
            }
        }
        if self.early_break.is_some() {
            let mut g = self.clone();
            g.early_break = None;
            out.push(g);
        }
        if self.while_shape {
            let mut g = self.clone();
            g.while_shape = false;
            out.push(g);
        }
        if self.n > 2 {
            let mut g = self.clone();
            g.n /= 2;
            out.push(g);
        }
        if self.data_len > 2 {
            let mut g = self.clone();
            g.data_len /= 2;
            out.push(g);
        }
        out
    }
}

/// Arrays of the generated program, in declaration = allocation order.
struct Arrays {
    idx: ArrayId,
    data: ArrayId,
    bounds: ArrayId,
    items: ArrayId,
    hist: ArrayId,
    widx: ArrayId,
    wr: ArrayId,
    dense: ArrayId,
    out: ArrayId,
}

fn declare_arrays(b: &mut FunctionBuilder) -> Arrays {
    Arrays {
        idx: b.array_i64("idx"),
        data: b.array_i64("data"),
        bounds: b.array_i64("bounds"),
        items: b.array_i64("items"),
        hist: b.array_i64("hist"),
        widx: b.array_i64("widx"),
        wr: b.array_i64("wr"),
        dense: b.array_i64("dense"),
        out: b.array_i64("out"),
    }
}

/// Expands a genome's input data into a fresh memory image.
pub fn build_mem(g: &Genome) -> MemState {
    let mut rng = Rng::new(g.seed);
    let n = g.n as usize;
    let dl = g.data_len as usize;
    let items_len = dl.max(4);
    let mut mem = MemState::new();
    mem.alloc_i64(
        ArrayDecl::i64("idx"),
        (0..n).map(|_| rng.below(dl as u64) as i64),
    );
    mem.alloc_i64(
        ArrayDecl::i64("data"),
        (0..dl).map(|_| rng.below(1000) as i64 - 500),
    );
    // Nondecreasing CSR-style bounds into items.
    let mut acc = 0i64;
    let mut bounds = Vec::with_capacity(n + 1);
    bounds.push(0);
    for _ in 0..n {
        acc = (acc + rng.below(3) as i64).min(items_len as i64);
        bounds.push(acc);
    }
    mem.alloc_i64(ArrayDecl::i64("bounds"), bounds);
    mem.alloc_i64(
        ArrayDecl::i64("items"),
        (0..items_len).map(|_| rng.below(100) as i64),
    );
    mem.alloc(ArrayDecl::i64("hist"), dl);
    mem.alloc_i64(
        ArrayDecl::i64("widx"),
        (0..n).map(|_| rng.below(n as u64) as i64),
    );
    mem.alloc(ArrayDecl::i64("wr"), n.max(1));
    mem.alloc_i64(
        ArrayDecl::i64("dense"),
        (0..n).map(|_| rng.below(50) as i64),
    );
    mem.alloc(ArrayDecl::i64("out"), 2);
    mem
}

/// Expands a genome into its IR function.
pub fn build_func(g: &Genome) -> Function {
    let mut b = FunctionBuilder::new("fuzz");
    let n = b.param_i64("n");
    let a = declare_arrays(&mut b);
    let acc = b.var_i64("acc");
    let i = b.var_i64("i");
    let body = |f: &mut FunctionBuilder, iv: phloem_ir::VarId| {
        for (si, seg) in g.segments.iter().enumerate() {
            emit_segment(f, &a, *seg, si, iv, acc);
        }
        if let Some(limit) = g.early_break {
            f.if_then(
                Expr::bin(BinOp::Gt, Expr::var(acc), Expr::i64(limit)),
                |f| f.break_out(1),
            );
        }
    };
    if g.while_shape {
        b.while_true(|f| {
            body(f, i);
            f.assign(i, Expr::add(Expr::var(i), Expr::i64(1)));
            f.if_then(Expr::bin(BinOp::Ge, Expr::var(i), Expr::var(n)), |f| {
                f.break_out(1)
            });
        });
    } else {
        b.for_loop(i, Expr::i64(0), Expr::var(n), |f| body(f, i));
    }
    b.store(a.out, Expr::i64(0), Expr::var(acc));
    b.build()
}

fn emit_segment(
    f: &mut FunctionBuilder,
    a: &Arrays,
    seg: Segment,
    si: usize,
    i: phloem_ir::VarId,
    acc: phloem_ir::VarId,
) {
    match seg {
        Segment::IndirectSum { filter } => {
            let x = f.var_i64(format!("x{si}"));
            let y = f.var_i64(format!("y{si}"));
            let lx = f.load(a.idx, Expr::var(i));
            f.assign(x, lx);
            let fetch_acc = |f: &mut FunctionBuilder| {
                let ly = f.load(a.data, Expr::var(x));
                f.assign(y, ly);
                f.assign(
                    acc,
                    Expr::add(
                        Expr::var(acc),
                        Expr::add(Expr::mul(Expr::var(y), Expr::i64(3)), Expr::i64(1)),
                    ),
                );
            };
            if filter {
                f.if_then(
                    Expr::bin(
                        BinOp::Eq,
                        Expr::bin(BinOp::Rem, Expr::var(x), Expr::i64(2)),
                        Expr::i64(0),
                    ),
                    fetch_acc,
                );
            } else {
                fetch_acc(f);
            }
        }
        Segment::NestedSum => {
            let s = f.var_i64(format!("s{si}"));
            let e = f.var_i64(format!("e{si}"));
            let j = f.var_i64(format!("j{si}"));
            let v = f.var_i64(format!("v{si}"));
            let ls = f.load(a.bounds, Expr::var(i));
            f.assign(s, ls);
            let le = f.load(a.bounds, Expr::add(Expr::var(i), Expr::i64(1)));
            f.assign(e, le);
            f.for_loop(j, Expr::var(s), Expr::var(e), |f| {
                let lv = f.load(a.items, Expr::var(j));
                f.assign(v, lv);
                f.assign(acc, Expr::add(Expr::var(acc), Expr::var(v)));
            });
        }
        Segment::Histogram => {
            let h = f.var_i64(format!("h{si}"));
            let lh = f.load(a.idx, Expr::var(i));
            f.assign(h, lh);
            f.atomic_rmw(BinOp::Add, a.hist, Expr::var(h), Expr::i64(1), None);
        }
        Segment::WriteRace => {
            let w = f.var_i64(format!("w{si}"));
            let z = f.var_i64(format!("z{si}"));
            f.store(a.wr, Expr::var(i), Expr::var(acc));
            let lw = f.load(a.widx, Expr::var(i));
            f.assign(w, lw);
            let lz = f.load(a.wr, Expr::var(w));
            f.assign(z, lz);
            f.assign(
                acc,
                Expr::add(
                    Expr::var(acc),
                    Expr::bin(BinOp::And, Expr::var(z), Expr::i64(7)),
                ),
            );
        }
        Segment::DenseAcc => {
            let d = f.var_i64(format!("d{si}"));
            let ld = f.load(a.dense, Expr::var(i));
            f.assign(d, ld);
            f.assign(acc, Expr::add(Expr::var(acc), Expr::var(d)));
        }
    }
}

// ---------------------------------------------------------------------
// The differential check itself.
// ---------------------------------------------------------------------

/// The pass-ablation presets every cut subset is compiled under.
pub fn presets() -> Vec<PassConfig> {
    vec![
        PassConfig::queues_only(),
        PassConfig::with_recompute(),
        PassConfig::with_cv(),
        PassConfig::with_dce(),
        PassConfig::with_handlers(),
        PassConfig::all(),
        PassConfig::all_streaming(),
    ]
}

/// Scheduler × engine × fast-forward points that must all agree
/// bit-identically. Every sched/engine cell runs with the ring-based
/// issue calendar (fast-forward on, the default); two cells repeat with
/// the dense reference calendar, so any cycle the ring reclaims too
/// eagerly shows up as a grid divergence without doubling the sweep.
pub const GRID: [(SchedulerKind, ExecEngine, bool); 6] = [
    (SchedulerKind::EventDriven, ExecEngine::Tree, true),
    (SchedulerKind::EventDriven, ExecEngine::Flat, true),
    (SchedulerKind::Polling, ExecEngine::Tree, true),
    (SchedulerKind::Polling, ExecEngine::Flat, true),
    (SchedulerKind::EventDriven, ExecEngine::Flat, false),
    (SchedulerKind::Polling, ExecEngine::Tree, false),
];

/// Work counters of one sweep (or one genome's check).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Totals {
    /// Genomes checked.
    pub programs: u64,
    /// Compile attempts (cut subset × preset points).
    pub compiles: u64,
    /// Pipelines that compiled and were run.
    pub pipelines: u64,
    /// Timed simulator runs (pipelines × grid points).
    pub runs: u64,
}

impl Totals {
    /// Accumulates another counter set (index-ordered merging keeps the
    /// sweep summary independent of scheduling).
    pub fn merge(&mut self, o: &Totals) {
        self.programs += o.programs;
        self.compiles += o.compiles;
        self.pipelines += o.pipelines;
        self.runs += o.runs;
    }
}

/// Checks one genome exhaustively. Returns the first divergence as a
/// human-readable description, or `None` if everything agrees.
pub fn check(g: &Genome, totals: &mut Totals) -> Option<String> {
    let func = build_func(g);
    let mem = build_mem(g);
    let params = [("n", Value::I64(g.n))];

    let oracle = match interp::run_serial(&func, mem.clone(), &params) {
        Ok(r) => r,
        // A generator bug, not a compiler bug: surface it loudly.
        Err(t) => return Some(format!("oracle trapped on the serial program: {t}")),
    };

    // Cut subsets over the top-ranked candidates (the cost model orders
    // them; 3 keeps the sweep exponent small while covering 1-4 stage
    // pipelines, the paper's sweet spot).
    let cand: Vec<LoadId> = analyze(&func).candidates().into_iter().take(3).collect();
    let cfg = MachineConfig::paper_1core();
    for mask in 0u32..(1 << cand.len()) {
        let cuts: Vec<LoadId> = (0..cand.len())
            .filter(|b| mask & (1 << b) != 0)
            .map(|b| cand[b])
            .collect();
        for passes in presets() {
            let opts = CompileOptions {
                passes,
                ..CompileOptions::default()
            };
            totals.compiles += 1;
            let pipe = match decouple_with_cuts(&func, &cuts, &opts) {
                Ok(p) => p,
                Err(_) => continue, // rejecting a cut is legal
            };
            totals.pipelines += 1;
            if let Some(d) = diff_pipeline(&pipe, &mem, &params, &oracle, &cfg, totals) {
                return Some(format!(
                    "cuts {:?}, passes [{}]: {d}",
                    cuts.iter().map(|c| c.0).collect::<Vec<_>>(),
                    passes.label(),
                ));
            }
        }
    }
    None
}

/// Runs one compiled pipeline over the scheduler × engine ×
/// fast-forward grid and diffs memory against the oracle and cycles
/// across the grid.
fn diff_pipeline(
    pipe: &Pipeline,
    mem: &MemState,
    params: &[(&str, Value)],
    oracle: &interp::FunctionalRun,
    cfg: &MachineConfig,
    totals: &mut Totals,
) -> Option<String> {
    let mut cycles: Option<u64> = None;
    for (sched, engine, ff) in GRID {
        totals.runs += 1;
        let mut point_cfg = cfg.clone();
        point_cfg.fast_forward = ff;
        let mut session = pipette_sim::Session::new(point_cfg, mem.clone());
        if let Err(t) = session.run_with_engine(pipe, params, sched, engine) {
            return Some(format!("{sched:?}/{engine:?}/ff={ff} trapped: {t}"));
        }
        let (final_mem, stats) = session.finish();
        if !final_mem.same_contents(&oracle.mem) {
            return Some(format!(
                "{sched:?}/{engine:?}/ff={ff}: final memory differs from the serial oracle"
            ));
        }
        match cycles {
            None => cycles = Some(stats.cycles),
            Some(c) if c != stats.cycles => {
                return Some(format!(
                    "{sched:?}/{engine:?}/ff={ff}: {} cycles, other grid points took {c}",
                    stats.cycles
                ));
            }
            Some(_) => {}
        }
    }
    None
}

// ---------------------------------------------------------------------
// Native-backend differential check (`fuzzdiff --native`).
// ---------------------------------------------------------------------

/// Channel backend × worker-thread points every native run must agree
/// on: the full cross of the three channel implementations with thread
/// counts {1, 2, 4} (worker counts clamp to the stage count inside the
/// backend, so over-provisioned points still exercise the assignment
/// path).
pub const NATIVE_GRID: [(ChannelKind, usize); 9] = [
    (ChannelKind::Mpsc, 1),
    (ChannelKind::Mpsc, 2),
    (ChannelKind::Mpsc, 4),
    (ChannelKind::Ring, 1),
    (ChannelKind::Ring, 2),
    (ChannelKind::Ring, 4),
    (ChannelKind::Hybrid, 1),
    (ChannelKind::Hybrid, 2),
    (ChannelKind::Hybrid, 4),
];

/// Checks one genome through the *native* backend: every cut subset of
/// the top-ranked candidates × pass preset that compiles runs on real
/// threads at every [`NATIVE_GRID`] point, and the final memory must
/// equal the serial oracle's at all of them. A trap on a pipeline the
/// compiler accepted is a failure, exactly as in the simulator sweep.
///
/// Candidates are capped at 2 (vs the simulator sweep's 3): each
/// pipeline here fans out over 9 real-thread runs instead of 6
/// simulated ones, and the cut-subset exponent is the sweep's knob.
pub fn check_native(g: &Genome, totals: &mut Totals) -> Option<String> {
    let func = build_func(g);
    let mem = build_mem(g);
    let params = [("n", Value::I64(g.n))];

    let oracle = match interp::run_serial(&func, mem.clone(), &params) {
        Ok(r) => r,
        Err(t) => return Some(format!("oracle trapped on the serial program: {t}")),
    };

    let cand: Vec<LoadId> = analyze(&func).candidates().into_iter().take(2).collect();
    let cfg = MachineConfig::paper_1core();
    for mask in 0u32..(1 << cand.len()) {
        let cuts: Vec<LoadId> = (0..cand.len())
            .filter(|b| mask & (1 << b) != 0)
            .map(|b| cand[b])
            .collect();
        for passes in presets() {
            let opts = CompileOptions {
                passes,
                ..CompileOptions::default()
            };
            totals.compiles += 1;
            let pipe = match decouple_with_cuts(&func, &cuts, &opts) {
                Ok(p) => p,
                Err(_) => continue,
            };
            totals.pipelines += 1;
            for (channel, threads) in NATIVE_GRID {
                totals.runs += 1;
                let mut session = pipette_sim::Session::new(cfg.clone(), mem.clone());
                session.set_backend(ExecBackend::Native(NativeConfig { channel, threads }));
                if let Err(t) = session.run(&pipe, &params) {
                    return Some(format!(
                        "cuts {:?}, passes [{}], native {channel}/t{threads} trapped: {t}",
                        cuts.iter().map(|c| c.0).collect::<Vec<_>>(),
                        passes.label(),
                    ));
                }
                let (final_mem, _) = session.finish();
                if !final_mem.same_contents(&oracle.mem) {
                    return Some(format!(
                        "cuts {:?}, passes [{}], native {channel}/t{threads}: \
                         final memory differs from the serial oracle",
                        cuts.iter().map(|c| c.0).collect::<Vec<_>>(),
                        passes.label(),
                    ));
                }
            }
        }
    }
    None
}

/// Delta-debugs a failing genome to a local minimum, then returns it
/// with the (re-derived) divergence description.
pub fn minimize(g: Genome, why: String) -> (Genome, String) {
    minimize_with(g, why, check)
}

/// [`minimize`] against an arbitrary checker — the native sweep shrinks
/// its failures through [`check_native`] so the reproducer still fails
/// on the backend that flushed it.
pub fn minimize_with(
    mut g: Genome,
    mut why: String,
    checker: impl Fn(&Genome, &mut Totals) -> Option<String>,
) -> (Genome, String) {
    loop {
        let mut reduced = false;
        for cand in g.shrink_candidates() {
            if let Some(w) = checker(&cand, &mut Totals::default()) {
                g = cand;
                why = w;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return (g, why);
        }
    }
}

/// Renders one (minimized) failing genome as the ready-to-paste
/// regression report the fuzzer prints.
pub fn render_failure(g: &Genome, why: &str) -> String {
    format!(
        "\n=== DIVERGENCE ===\n{why}\ngenome: seed={seed:#x} n={n} data_len={dl} while={ws} \
         break={eb:?} segments={segs:?}\n\
         --- minimized program (paste into a regression test) ---\n{prog}",
        seed = g.seed,
        n = g.n,
        dl = g.data_len,
        ws = g.while_shape,
        eb = g.early_break,
        segs = g.segments,
        prog = pretty::function_to_string(&build_func(g))
    )
}

// ---------------------------------------------------------------------
// Pool-parallel sweep driver.
// ---------------------------------------------------------------------

/// Result of a fuzz sweep. Everything here is keyed or ordered by
/// genome index, so two sweeps with the same `(seed, count)` are
/// byte-identical however many workers ran them.
#[derive(Clone, Debug)]
pub struct FuzzOutcome {
    /// Merged work counters, accumulated in genome order.
    pub totals: Totals,
    /// `(genome index, genome, divergence)` for every failing genome,
    /// in genome order, un-minimized (minimization is interactive
    /// diagnostics, left to the caller).
    pub failures: Vec<(u64, Genome, String)>,
}

impl FuzzOutcome {
    /// Canonical one-line summary (byte-identical across worker counts;
    /// the determinism suite compares exactly this plus the failure
    /// renderings).
    pub fn summary(&self, seed: u64) -> String {
        format!(
            "fuzzdiff: seed {seed:#x}: {} programs, {} compile points, {} pipelines, \
             {} timed runs, {} divergences",
            self.totals.programs,
            self.totals.compiles,
            self.totals.pipelines,
            self.totals.runs,
            self.failures.len(),
        )
    }
}

/// Runs the differential sweep: `count` genomes drawn from `seed`'s
/// stream, each checked exhaustively, fanned out over `pool`. The
/// genome stream is drawn serially up front (identical to the old
/// serial loop), the per-genome checks are pure, and results merge in
/// genome order — so the outcome is bit-identical at every worker
/// count. `progress` (if given) is called with the number of completed
/// genomes at a coarse cadence, for unordered "... k/count" lines.
pub fn fuzz_sweep(
    seed: u64,
    count: u64,
    pool: &Pool,
    progress: Option<&(dyn Fn(u64) + Sync)>,
) -> FuzzOutcome {
    fuzz_sweep_with(seed, count, pool, progress, check)
}

/// [`fuzz_sweep`] against an arbitrary per-genome checker. The genome
/// stream is identical for every checker (same seed → same programs),
/// so `fuzzdiff --native` fuzzes exactly the programs the simulator
/// sweep fuzzes. Native checks spawn their own worker fleets inside the
/// pool's tasks; the pool's nested-fleet path makes that legal.
pub fn fuzz_sweep_with(
    seed: u64,
    count: u64,
    pool: &Pool,
    progress: Option<&(dyn Fn(u64) + Sync)>,
    checker: impl Fn(&Genome, &mut Totals) -> Option<String> + Sync,
) -> FuzzOutcome {
    let mut rng = Rng::new(seed);
    let genomes: Vec<Genome> = (0..count).map(|_| Genome::random(&mut rng)).collect();
    let done = AtomicU64::new(0);
    let per_genome = pool.map(&genomes, |_i, g| {
        let mut totals = Totals {
            programs: 1,
            ..Totals::default()
        };
        let why = checker(g, &mut totals);
        let k = done.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(p) = progress {
            if k.is_multiple_of(200) {
                p(k);
            }
        }
        (totals, why)
    });
    let mut out = FuzzOutcome {
        totals: Totals::default(),
        failures: Vec::new(),
    };
    for (i, r) in per_genome.into_iter().enumerate() {
        match r {
            Ok((totals, why)) => {
                out.totals.merge(&totals);
                if let Some(why) = why {
                    out.failures.push((i as u64, genomes[i].clone(), why));
                }
            }
            Err(panic) => {
                // A panicking check is itself a divergence-grade bug:
                // record it against the genome instead of dying.
                out.totals.merge(&Totals {
                    programs: 1,
                    ..Totals::default()
                });
                out.failures.push((
                    i as u64,
                    genomes[i].clone(),
                    format!("checker panicked: {}", panic.message),
                ));
            }
        }
    }
    out
}
