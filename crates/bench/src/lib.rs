//! # phloem-bench
//!
//! Experiment harnesses that regenerate every table and figure of the
//! Phloem paper's evaluation (Sec. VI-VII). One binary per artifact:
//!
//! | Binary   | Artifact | Contents |
//! |----------|----------|----------|
//! | `tables` | Tables I, III, IV, V | Pipette ISA, machine config, input catalogs |
//! | `fig6`   | Fig. 6  | BFS pass ablation on a road network |
//! | `fig9`   | Fig. 9  | Per-benchmark speedups (serial / data-parallel / Phloem static+PGO / manual) |
//! | `fig10`  | Fig. 10 | Cycle breakdowns normalized to serial |
//! | `fig11`  | Fig. 11 | Energy breakdowns normalized to serial |
//! | `fig12`  | Fig. 12 | Taco benchmark speedups |
//! | `fig13`  | Fig. 13 | Speedup distribution vs. pipeline length (PGO search) |
//! | `fig14`  | Fig. 14 | Replicated pipelines on 4 cores x 4 threads |
//!
//! Set `SCALE=tiny|small|full` to trade fidelity for runtime (default
//! `small`); set `PGO=0` to skip the profile-guided search in `fig9`.
//! Absolute cycle counts come from our simulator, not the authors'
//! testbed: compare *shapes* (who wins, by roughly what factor), which
//! each harness prints alongside the paper's reported numbers.

#![warn(missing_docs)]

pub mod fuzz;
pub mod microbench;

use phloem_benchsuite::{gmean, run_guarded, Measurement, Variant};
use phloem_workloads::Scale;
use pipette_sim::MachineConfig;

/// Reads the experiment scale from `SCALE` (default: small).
pub fn scale() -> Scale {
    match std::env::var("SCALE").as_deref() {
        Ok("tiny") => Scale::Tiny,
        Ok("full") => Scale::Full,
        _ => Scale::Small,
    }
}

/// Host worker count for fleet-shaped work (PGO searches, fuzz sweeps):
/// a `--jobs N` argument when the harness got one, else the shared
/// `PHLOEM_WORKERS` env override, else the host's available
/// parallelism. This is the single `--jobs` path `results/run_all.sh`
/// routes every figure harness through.
pub fn jobs() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(phloem_pool::default_workers)
}

/// True unless `PGO=0`.
pub fn pgo_enabled() -> bool {
    std::env::var("PGO").as_deref() != Ok("0")
}

/// The Table III single-core machine.
pub fn machine() -> MachineConfig {
    MachineConfig::paper_1core()
}

/// The Fig. 14 4-core machine.
pub fn machine4() -> MachineConfig {
    MachineConfig::paper_multicore(4)
}

/// Prints a section header.
pub fn header(title: &str) {
    println!();
    println!("== {title} ==");
}

/// One row of a speedup table.
#[derive(Clone, Debug)]
pub struct SpeedupRow {
    /// Row label (benchmark or variant).
    pub label: String,
    /// Speedups, one per column.
    pub values: Vec<f64>,
}

/// Prints a speedup table with aligned columns.
pub fn print_speedups(cols: &[&str], rows: &[SpeedupRow]) {
    print!("{:<12}", "");
    for c in cols {
        print!("{c:>16}");
    }
    println!();
    for r in rows {
        print!("{:<12}", r.label);
        for v in &r.values {
            print!("{:>15.2}x", v);
        }
        println!();
    }
    if rows.len() > 1 {
        print!("{:<12}", "gmean");
        for k in 0..cols.len() {
            let g = gmean(rows.iter().map(|r| r.values[k]));
            print!("{:>15.2}x", g);
        }
        println!();
    }
}

/// The standard Fig. 9 variant set (PGO cuts are decided separately).
pub fn fig9_variants(threads: usize) -> Vec<Variant> {
    vec![
        Variant::Serial,
        Variant::DataParallel(threads),
        Variant::phloem(),
        Variant::Manual,
    ]
}

/// Computes speedup-vs-serial columns from grouped measurements
/// (variant rows per input), gmean'd across inputs.
pub fn speedups_vs_serial(per_input: &[Vec<Measurement>]) -> Vec<f64> {
    let nvars = per_input[0].len();
    (1..nvars)
        .map(|k| {
            gmean(
                per_input
                    .iter()
                    .map(|ms| ms[0].cycles as f64 / ms[k].cycles.max(1) as f64),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------
// Shared experiment drivers (fig9 / fig10 / fig11 / fig13 reuse these)
// ---------------------------------------------------------------------

use phloem_compiler::search::{
    search_profiled, CandidateProfile, ProfileBudget, ProfileOutcome, SearchOptions,
};
use phloem_ir::{LoadId, Trap};
use phloem_workloads::{spmm_test_matrices, spmm_training_matrices, test_graphs, training_graphs};
use pipette_sim::{MetricsSink, TraceSink};

/// The graph applications of the C-path evaluation.
pub const GRAPH_APPS: [&str; 4] = ["BFS", "CC", "PRD", "Radii"];

/// Runs one graph app variant on one input. Runtime traps (watchdog,
/// faults, convergence stalls) come back as `Err`; oracle mismatches
/// still panic (results are always verified inside).
pub fn run_graph_app(
    app: &str,
    v: &Variant,
    g: &phloem_workloads::Graph,
    cfg: &MachineConfig,
    input: &str,
) -> Result<Measurement, Trap> {
    match app {
        "BFS" => phloem_benchsuite::bfs::run(v, g, 0, cfg, input),
        "CC" => phloem_benchsuite::cc::run(v, g, cfg, input),
        "PRD" => phloem_benchsuite::prd::run(v, g, cfg, input),
        "Radii" => phloem_benchsuite::radii::run(v, g, cfg, input),
        other => panic!("unknown app {other}"),
    }
}

/// Like [`run_graph_app`], with a [`TraceSink`] observing every
/// pipeline invocation; the sink is returned even when the run traps.
pub fn run_graph_app_traced(
    app: &str,
    v: &Variant,
    g: &phloem_workloads::Graph,
    cfg: &MachineConfig,
    input: &str,
    sink: Box<dyn TraceSink>,
) -> (Result<Measurement, Trap>, Box<dyn TraceSink>) {
    match app {
        "BFS" => phloem_benchsuite::bfs::run_traced(v, g, 0, cfg, input, sink),
        "CC" => phloem_benchsuite::cc::run_traced(v, g, cfg, input, sink),
        "PRD" => phloem_benchsuite::prd::run_traced(v, g, cfg, input, sink),
        "Radii" => phloem_benchsuite::radii::run_traced(v, g, cfg, input, sink),
        other => panic!("unknown app {other}"),
    }
}

/// Reduces a metrics aggregate to the per-candidate profile the PGO
/// search report carries: critical-stage attribution, per-stage
/// utilization, and the critical stage's dominant stall kind.
pub fn candidate_profile(m: &MetricsSink) -> CandidateProfile {
    let stage_utilization = m
        .stages
        .iter()
        .map(|s| (s.name.clone(), s.utilization()))
        .collect();
    match m.critical_stage() {
        Some(i) => CandidateProfile {
            critical_stage: m.stages[i].name.clone(),
            stage_utilization,
            dominant_stall: m.stages[i].dominant_stall().to_string(),
        },
        None => CandidateProfile {
            stage_utilization,
            ..Default::default()
        },
    }
}

/// Runs one graph-app variant on one input under a metrics aggregator
/// and reduces it to a [`CandidateProfile`]; `None` if the run traps.
pub fn profile_graph_app(
    app: &str,
    v: &Variant,
    g: &phloem_workloads::Graph,
    cfg: &MachineConfig,
    input: &str,
) -> Option<CandidateProfile> {
    let (r, sink) = run_graph_app_traced(app, v, g, cfg, input, Box::new(MetricsSink::new()));
    r.ok()?;
    let m = sink.downcast_ref::<MetricsSink>().expect("metrics sink");
    Some(candidate_profile(m))
}

/// The serial kernel of a graph app (for PGO enumeration).
pub fn graph_app_kernel(app: &str) -> phloem_ir::Function {
    match app {
        "BFS" => phloem_benchsuite::bfs::kernel(),
        "CC" => phloem_benchsuite::cc::kernel(),
        "PRD" => phloem_benchsuite::prd::scatter_kernel(),
        "Radii" => phloem_benchsuite::radii::kernel(),
        other => panic!("unknown app {other}"),
    }
}

/// Outcome of the profile-guided search for one benchmark.
pub struct PgoOutcome {
    /// Cuts of the best-profiling pipeline; empty when the search found
    /// no viable candidate (the caller then falls back to the static
    /// cost model, which empty cuts encode).
    pub best_cuts: Vec<LoadId>,
    /// Trace-derived profile of the best candidate (when the profiling
    /// closure produced one; `None` under plain [`pgo_search`]).
    pub best_profile: Option<CandidateProfile>,
    /// `(total stages incl. RAs, gmean training speedup)` per candidate.
    pub points: Vec<(usize, f64)>,
    /// Candidates (or the whole search) that trapped or timed out,
    /// rendered for the harness's failure summary.
    pub failures: Vec<String>,
}

/// Enumerates candidate pipelines for `kernel` and profiles each with
/// `profile` under the search's per-candidate watchdog budget. The
/// serial training cycles normalize the Fig. 13 speedups.
///
/// Built on [`phloem_compiler::search::search`]: candidates that trap
/// or panic are recorded, timed-out ones get one retry at an enlarged
/// budget, and a fully failed search degrades to empty `best_cuts`
/// (static compilation) instead of aborting the harness.
pub fn pgo_search(
    kernel: &phloem_ir::Function,
    serial_train_cycles: f64,
    profile: impl Fn(&[LoadId], &ProfileBudget) -> ProfileOutcome + Sync,
) -> PgoOutcome {
    pgo_search_profiled(kernel, serial_train_cycles, |cuts, budget| {
        (profile(cuts, budget), None)
    })
}

/// [`pgo_search`] with a profiling closure that also returns a
/// trace-derived [`CandidateProfile`] per candidate (usually built with
/// [`candidate_profile`] from a [`MetricsSink`] run); the best
/// candidate's profile surfaces in [`PgoOutcome::best_profile`].
pub fn pgo_search_profiled(
    kernel: &phloem_ir::Function,
    serial_train_cycles: f64,
    profile: impl Fn(&[LoadId], &ProfileBudget) -> (ProfileOutcome, Option<CandidateProfile>) + Sync,
) -> PgoOutcome {
    let opts = SearchOptions {
        workers: jobs(),
        ..SearchOptions::default()
    };
    pgo_search_with(&opts, kernel, serial_train_cycles, profile)
}

/// [`pgo_search_profiled`] with explicit [`SearchOptions`] — the
/// determinism suite uses this to run the same fig-style sweep at
/// several worker counts without touching env/argv.
pub fn pgo_search_with(
    opts: &SearchOptions,
    kernel: &phloem_ir::Function,
    serial_train_cycles: f64,
    profile: impl Fn(&[LoadId], &ProfileBudget) -> (ProfileOutcome, Option<CandidateProfile>) + Sync,
) -> PgoOutcome {
    match search_profiled(kernel, opts, |cuts, _pipe, budget| profile(cuts, budget)) {
        Ok(report) => {
            let mut points = Vec::new();
            let mut failures = Vec::new();
            for c in &report.candidates {
                match &c.outcome {
                    ProfileOutcome::Ok(cycles) => {
                        points.push((c.total_stages, serial_train_cycles / cycles));
                    }
                    ProfileOutcome::Trapped(msg) => {
                        failures.push(format!("candidate {:?}: {msg}", c.cuts));
                    }
                    ProfileOutcome::TimedOut => {
                        failures.push(format!("candidate {:?}: timed out", c.cuts));
                    }
                }
            }
            PgoOutcome {
                best_cuts: report.candidates[report.best].cuts.clone(),
                best_profile: report.candidates[report.best].profile.clone(),
                points,
                failures,
            }
        }
        Err(e) => PgoOutcome {
            best_cuts: Vec::new(),
            best_profile: None,
            points: Vec::new(),
            failures: vec![format!("search failed, using static cuts: {e}")],
        },
    }
}

/// Classifies one guarded profiling invocation: `Ok` carries the
/// measured cycles; watchdog expirations become `TimedOut` (retryable
/// at a larger budget); any other trap or panic becomes `Trapped`.
fn profiled_cycles(f: impl FnOnce() -> Result<Measurement, Trap>) -> Result<f64, ProfileOutcome> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(Ok(m)) => Ok(m.cycles as f64),
        Ok(Err(Trap::CycleLimit { .. } | Trap::Livelock { .. })) => Err(ProfileOutcome::TimedOut),
        Ok(Err(trap)) => Err(ProfileOutcome::Trapped(trap.to_string())),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "unknown panic".into());
            Err(ProfileOutcome::Trapped(format!("panicked: {msg}")))
        }
    }
}

/// Applies a profiling budget to the simulator config: the budget's
/// cycle cap becomes the watchdog's.
fn budgeted(cfg: &MachineConfig, budget: &ProfileBudget) -> MachineConfig {
    let mut cfg = cfg.clone();
    cfg.watchdog.cycle_cap = budget.cycle_cap;
    cfg
}

/// Profiles a graph-app variant over the training graphs under the
/// given watchdog budget (gmean cycles on success).
pub fn train_graph_outcome(
    app: &str,
    v: &Variant,
    cfg: &MachineConfig,
    budget: &ProfileBudget,
) -> ProfileOutcome {
    let cfg = budgeted(cfg, budget);
    let mut vals = Vec::new();
    for gi in training_graphs(scale()) {
        match profiled_cycles(|| run_graph_app(app, v, &gi.graph, &cfg, gi.name)) {
            Ok(c) => vals.push(c),
            Err(outcome) => return outcome,
        }
    }
    ProfileOutcome::Ok(gmean(vals))
}

/// [`train_graph_outcome`] plus a [`CandidateProfile`] built by
/// re-running the first training graph under a metrics aggregator
/// (the extra traced run only happens for viable candidates).
pub fn train_graph_profiled(
    app: &str,
    v: &Variant,
    cfg: &MachineConfig,
    budget: &ProfileBudget,
) -> (ProfileOutcome, Option<CandidateProfile>) {
    let outcome = train_graph_outcome(app, v, cfg, budget);
    if !matches!(outcome, ProfileOutcome::Ok(_)) {
        return (outcome, None);
    }
    let cfg = budgeted(cfg, budget);
    let profile = training_graphs(scale())
        .into_iter()
        .next()
        .and_then(|gi| profile_graph_app(app, v, &gi.graph, &cfg, gi.name));
    (outcome, profile)
}

/// Profiles a SpMM variant over the training matrices under the given
/// watchdog budget (gmean cycles on success).
pub fn train_spmm_outcome(
    v: &Variant,
    cfg: &MachineConfig,
    budget: &ProfileBudget,
) -> ProfileOutcome {
    let cfg = budgeted(cfg, budget);
    let mut vals = Vec::new();
    for mi in &spmm_training_matrices(scale()) {
        let bt = mi.matrix.transpose();
        match profiled_cycles(|| phloem_benchsuite::spmm::run(v, &mi.matrix, &bt, &cfg, mi.name)) {
            Ok(c) => vals.push(c),
            Err(outcome) => return outcome,
        }
    }
    ProfileOutcome::Ok(gmean(vals))
}

/// Gmean cycles of a graph-app variant over the training graphs, under
/// the config's own watchdog; `None` on any trap, timeout, or panic.
pub fn train_graph_cycles(app: &str, v: &Variant, cfg: &MachineConfig) -> Option<f64> {
    let budget = ProfileBudget {
        cycle_cap: cfg.watchdog.cycle_cap,
    };
    train_graph_outcome(app, v, cfg, &budget).cycles()
}

/// Gmean cycles of a SpMM variant over the training matrices, under the
/// config's own watchdog; `None` on any trap, timeout, or panic.
pub fn train_spmm_cycles(v: &Variant, cfg: &MachineConfig) -> Option<f64> {
    let budget = ProfileBudget {
        cycle_cap: cfg.watchdog.cycle_cap,
    };
    train_spmm_outcome(v, cfg, &budget).cycles()
}

/// The complete Fig. 9/10/11 measurement matrix plus every failure the
/// sweep absorbed along the way.
pub struct Fig9Matrix {
    /// `(app, per-input rows of [serial, data-parallel, phloem, manual,
    /// phloem-pgo?])`. PGO adds a fifth column when enabled.
    pub rows: Vec<(String, Vec<Vec<Measurement>>)>,
    /// Variants (or PGO candidates) that trapped, timed out, or
    /// panicked. A failed variant falls back to the serial baseline
    /// measurement so speedup columns stay comparable (speedup 1.0x).
    pub failures: Vec<String>,
}

/// Runs the non-serial variants of one input row, degrading each
/// failure to the serial baseline and recording it.
fn guarded_row(
    app: &str,
    input: &str,
    serial: Measurement,
    variants: &[Variant],
    failures: &mut Vec<String>,
    run: impl Fn(&Variant) -> Result<Measurement, Trap>,
) -> Vec<Measurement> {
    let mut ms = vec![serial.clone()];
    for v in variants.iter().skip(1) {
        let label = format!("{app}/{input}/{}", v.label());
        match run_guarded(&label, || run(v)) {
            Ok(m) => ms.push(m),
            Err(msg) => {
                eprintln!("[fig9]   FAILED {msg}; falling back to serial baseline");
                failures.push(msg);
                ms.push(Measurement {
                    variant: format!("{} (failed; serial fallback)", v.label()),
                    ..serial.clone()
                });
            }
        }
    }
    ms
}

/// The complete Fig. 9/10/11 measurement matrix:
/// `(app, per-input rows of [serial, data-parallel, phloem, manual,
/// phloem-pgo?])`. PGO adds a fifth column when enabled.
///
/// Robust by construction: any variant that traps or panics is recorded
/// in [`Fig9Matrix::failures`] and replaced by the serial baseline, so
/// one bad pipeline cannot abort the whole figure. Only a failing
/// *serial* run (the normalizer) is fatal.
pub fn fig9_matrix(with_pgo: bool) -> Fig9Matrix {
    let cfg = machine();
    let graphs = test_graphs(scale());
    let mut out = Vec::new();
    let mut failures = Vec::new();
    for app in GRAPH_APPS {
        eprintln!("[fig9] {app}...");
        let mut variants = fig9_variants(cfg.smt_threads);
        if with_pgo {
            let kernel = graph_app_kernel(app);
            let serial =
                train_graph_cycles(app, &Variant::Serial, &cfg).expect("serial training run");
            let pgo = pgo_search_profiled(&kernel, serial, |cuts, budget| {
                train_graph_profiled(
                    app,
                    &Variant::Phloem {
                        passes: phloem_compiler::PassConfig::all(),
                        stages: 4,
                        cuts: cuts.to_vec(),
                    },
                    &cfg,
                    budget,
                )
            });
            if let Some(p) = &pgo.best_profile {
                eprintln!(
                    "[fig9]   {app} pgo best candidate: critical stage `{}`, dominant stall {}",
                    p.critical_stage, p.dominant_stall
                );
            }
            failures.extend(pgo.failures.iter().map(|f| format!("{app} pgo: {f}")));
            variants.push(Variant::Phloem {
                passes: phloem_compiler::PassConfig::all(),
                stages: 4,
                cuts: pgo.best_cuts,
            });
        }
        let mut rows = Vec::new();
        for gi in &graphs {
            eprintln!("[fig9]   {} ({} edges)", gi.name, gi.graph.num_edges());
            let serial = run_graph_app(app, &Variant::Serial, &gi.graph, &cfg, gi.name)
                .unwrap_or_else(|e| panic!("{app} serial baseline on {}: {e}", gi.name));
            rows.push(guarded_row(
                app,
                gi.name,
                serial,
                &variants,
                &mut failures,
                |v| run_graph_app(app, v, &gi.graph, &cfg, gi.name),
            ));
        }
        out.push((app.to_string(), rows));
    }
    // SpMM.
    eprintln!("[fig9] SpMM...");
    let mut variants = fig9_variants(cfg.smt_threads);
    if with_pgo {
        let kernel = phloem_benchsuite::spmm::kernel();
        let serial = train_spmm_cycles(&Variant::Serial, &cfg).expect("serial SpMM training");
        let pgo = pgo_search(&kernel, serial, |cuts, budget| {
            train_spmm_outcome(
                &Variant::Phloem {
                    passes: phloem_compiler::PassConfig::all(),
                    stages: 4,
                    cuts: cuts.to_vec(),
                },
                &cfg,
                budget,
            )
        });
        failures.extend(pgo.failures.iter().map(|f| format!("SpMM pgo: {f}")));
        variants.push(Variant::Phloem {
            passes: phloem_compiler::PassConfig::all(),
            stages: 4,
            cuts: pgo.best_cuts,
        });
    }
    let mut rows = Vec::new();
    for mi in spmm_test_matrices(scale()) {
        eprintln!("[fig9]   {} ({} nnz)", mi.name, mi.matrix.nnz());
        let bt = mi.matrix.transpose();
        let serial = phloem_benchsuite::spmm::run(&Variant::Serial, &mi.matrix, &bt, &cfg, mi.name)
            .unwrap_or_else(|e| panic!("SpMM serial baseline on {}: {e}", mi.name));
        rows.push(guarded_row(
            "SpMM",
            mi.name,
            serial,
            &variants,
            &mut failures,
            |v| phloem_benchsuite::spmm::run(v, &mi.matrix, &bt, &cfg, mi.name),
        ));
    }
    out.push(("SpMM".to_string(), rows));
    if !failures.is_empty() {
        eprintln!("[fig9] {} variant(s) fell back to serial:", failures.len());
        for f in &failures {
            eprintln!("[fig9]   - {f}");
        }
    }
    Fig9Matrix {
        rows: out,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_math() {
        let mk = |cycles: u64| Measurement {
            variant: "v".into(),
            input: "i".into(),
            cycles,
            stats: Default::default(),
        };
        let per_input = vec![vec![mk(100), mk(50)], vec![mk(200), mk(50)]];
        let s = speedups_vs_serial(&per_input);
        assert!((s[0] - (2.0f64 * 4.0).sqrt()).abs() < 1e-9);
    }
}
