//! # phloem-bench
//!
//! Experiment harnesses that regenerate every table and figure of the
//! Phloem paper's evaluation (Sec. VI-VII). One binary per artifact:
//!
//! | Binary   | Artifact | Contents |
//! |----------|----------|----------|
//! | `tables` | Tables I, III, IV, V | Pipette ISA, machine config, input catalogs |
//! | `fig6`   | Fig. 6  | BFS pass ablation on a road network |
//! | `fig9`   | Fig. 9  | Per-benchmark speedups (serial / data-parallel / Phloem static+PGO / manual) |
//! | `fig10`  | Fig. 10 | Cycle breakdowns normalized to serial |
//! | `fig11`  | Fig. 11 | Energy breakdowns normalized to serial |
//! | `fig12`  | Fig. 12 | Taco benchmark speedups |
//! | `fig13`  | Fig. 13 | Speedup distribution vs. pipeline length (PGO search) |
//! | `fig14`  | Fig. 14 | Replicated pipelines on 4 cores x 4 threads |
//!
//! Set `SCALE=tiny|small|full` to trade fidelity for runtime (default
//! `small`); set `PGO=0` to skip the profile-guided search in `fig9`.
//! Absolute cycle counts come from our simulator, not the authors'
//! testbed: compare *shapes* (who wins, by roughly what factor), which
//! each harness prints alongside the paper's reported numbers.

#![warn(missing_docs)]

pub mod microbench;

use phloem_benchsuite::{gmean, Measurement, Variant};
use phloem_workloads::Scale;
use pipette_sim::MachineConfig;

/// Reads the experiment scale from `SCALE` (default: small).
pub fn scale() -> Scale {
    match std::env::var("SCALE").as_deref() {
        Ok("tiny") => Scale::Tiny,
        Ok("full") => Scale::Full,
        _ => Scale::Small,
    }
}

/// True unless `PGO=0`.
pub fn pgo_enabled() -> bool {
    std::env::var("PGO").as_deref() != Ok("0")
}

/// The Table III single-core machine.
pub fn machine() -> MachineConfig {
    MachineConfig::paper_1core()
}

/// The Fig. 14 4-core machine.
pub fn machine4() -> MachineConfig {
    MachineConfig::paper_multicore(4)
}

/// Prints a section header.
pub fn header(title: &str) {
    println!();
    println!("== {title} ==");
}

/// One row of a speedup table.
#[derive(Clone, Debug)]
pub struct SpeedupRow {
    /// Row label (benchmark or variant).
    pub label: String,
    /// Speedups, one per column.
    pub values: Vec<f64>,
}

/// Prints a speedup table with aligned columns.
pub fn print_speedups(cols: &[&str], rows: &[SpeedupRow]) {
    print!("{:<12}", "");
    for c in cols {
        print!("{c:>16}");
    }
    println!();
    for r in rows {
        print!("{:<12}", r.label);
        for v in &r.values {
            print!("{:>15.2}x", v);
        }
        println!();
    }
    if rows.len() > 1 {
        print!("{:<12}", "gmean");
        for k in 0..cols.len() {
            let g = gmean(rows.iter().map(|r| r.values[k]));
            print!("{:>15.2}x", g);
        }
        println!();
    }
}

/// The standard Fig. 9 variant set (PGO cuts are decided separately).
pub fn fig9_variants(threads: usize) -> Vec<Variant> {
    vec![
        Variant::Serial,
        Variant::DataParallel(threads),
        Variant::phloem(),
        Variant::Manual,
    ]
}

/// Computes speedup-vs-serial columns from grouped measurements
/// (variant rows per input), gmean'd across inputs.
pub fn speedups_vs_serial(per_input: &[Vec<Measurement>]) -> Vec<f64> {
    let nvars = per_input[0].len();
    (1..nvars)
        .map(|k| {
            gmean(
                per_input
                    .iter()
                    .map(|ms| ms[0].cycles as f64 / ms[k].cycles.max(1) as f64),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------
// Shared experiment drivers (fig9 / fig10 / fig11 / fig13 reuse these)
// ---------------------------------------------------------------------

use phloem_compiler::search::{enumerate_pipelines, SearchOptions};
use phloem_ir::LoadId;
use phloem_workloads::{spmm_test_matrices, spmm_training_matrices, test_graphs, training_graphs};

/// The graph applications of the C-path evaluation.
pub const GRAPH_APPS: [&str; 4] = ["BFS", "CC", "PRD", "Radii"];

/// Runs one graph app variant on one input; panics bubble up (results
/// are always verified against the oracle inside).
pub fn run_graph_app(
    app: &str,
    v: &Variant,
    g: &phloem_workloads::Graph,
    cfg: &MachineConfig,
    input: &str,
) -> Measurement {
    match app {
        "BFS" => phloem_benchsuite::bfs::run(v, g, 0, cfg, input),
        "CC" => phloem_benchsuite::cc::run(v, g, cfg, input),
        "PRD" => phloem_benchsuite::prd::run(v, g, cfg, input),
        "Radii" => phloem_benchsuite::radii::run(v, g, cfg, input),
        other => panic!("unknown app {other}"),
    }
}

/// The serial kernel of a graph app (for PGO enumeration).
pub fn graph_app_kernel(app: &str) -> phloem_ir::Function {
    match app {
        "BFS" => phloem_benchsuite::bfs::kernel(),
        "CC" => phloem_benchsuite::cc::kernel(),
        "PRD" => phloem_benchsuite::prd::scatter_kernel(),
        "Radii" => phloem_benchsuite::radii::kernel(),
        other => panic!("unknown app {other}"),
    }
}

/// Outcome of the profile-guided search for one benchmark.
pub struct PgoOutcome {
    /// Cuts of the best-profiling pipeline.
    pub best_cuts: Vec<LoadId>,
    /// `(total stages incl. RAs, gmean training speedup)` per candidate.
    pub points: Vec<(usize, f64)>,
}

/// Enumerates candidate pipelines for `kernel` and profiles each with
/// `run_cuts` (gmean training cycles; `None` on failure). The serial
/// training cycles normalize the Fig. 13 speedups.
pub fn pgo_search(
    kernel: &phloem_ir::Function,
    serial_train_cycles: f64,
    run_cuts: impl Fn(&[LoadId]) -> Option<f64>,
) -> PgoOutcome {
    let opts = SearchOptions::default();
    let cands = enumerate_pipelines(kernel, &opts);
    let mut points = Vec::new();
    let mut best: Option<(Vec<LoadId>, f64)> = None;
    for (cuts, pipe) in &cands {
        let cycles = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_cuts(cuts)))
            .ok()
            .flatten();
        if let Some(c) = cycles {
            points.push((pipe.total_stages(), serial_train_cycles / c));
            if best.as_ref().map(|(_, b)| c < *b).unwrap_or(true) {
                best = Some((cuts.clone(), c));
            }
        }
    }
    let best_cuts = best.map(|(c, _)| c).unwrap_or_default();
    PgoOutcome { best_cuts, points }
}

/// Gmean cycles of a graph-app variant over the training graphs.
pub fn train_graph_cycles(app: &str, v: &Variant, cfg: &MachineConfig) -> Option<f64> {
    let mut vals = Vec::new();
    for gi in training_graphs(scale()) {
        let m = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_graph_app(app, v, &gi.graph, cfg, gi.name)
        }))
        .ok()?;
        vals.push(m.cycles as f64);
    }
    Some(gmean(vals))
}

/// Gmean cycles of a SpMM variant over the training matrices.
pub fn train_spmm_cycles(v: &Variant, cfg: &MachineConfig) -> Option<f64> {
    let mut vals = Vec::new();
    let inputs = spmm_training_matrices(scale());
    for mi in &inputs {
        let bt = mi.matrix.transpose();
        let m = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            phloem_benchsuite::spmm::run(v, &mi.matrix, &bt, cfg, mi.name)
        }))
        .ok()?;
        vals.push(m.cycles as f64);
    }
    Some(gmean(vals))
}

/// The complete Fig. 9/10/11 measurement matrix:
/// `(app, per-input rows of [serial, data-parallel, phloem, manual,
/// phloem-pgo?])`. PGO adds a fifth column when enabled.
pub fn fig9_matrix(with_pgo: bool) -> Vec<(String, Vec<Vec<Measurement>>)> {
    let cfg = machine();
    let graphs = test_graphs(scale());
    let mut out = Vec::new();
    for app in GRAPH_APPS {
        eprintln!("[fig9] {app}...");
        let mut variants = fig9_variants(cfg.smt_threads);
        if with_pgo {
            let kernel = graph_app_kernel(app);
            let serial =
                train_graph_cycles(app, &Variant::Serial, &cfg).expect("serial training run");
            let pgo = pgo_search(&kernel, serial, |cuts| {
                train_graph_cycles(
                    app,
                    &Variant::Phloem {
                        passes: phloem_compiler::PassConfig::all(),
                        stages: 4,
                        cuts: cuts.to_vec(),
                    },
                    &cfg,
                )
            });
            variants.push(Variant::Phloem {
                passes: phloem_compiler::PassConfig::all(),
                stages: 4,
                cuts: pgo.best_cuts,
            });
        }
        let mut rows = Vec::new();
        for gi in &graphs {
            eprintln!("[fig9]   {} ({} edges)", gi.name, gi.graph.num_edges());
            let ms: Vec<Measurement> = variants
                .iter()
                .map(|v| run_graph_app(app, v, &gi.graph, &cfg, gi.name))
                .collect();
            rows.push(ms);
        }
        out.push((app.to_string(), rows));
    }
    // SpMM.
    eprintln!("[fig9] SpMM...");
    let mut variants = fig9_variants(cfg.smt_threads);
    if with_pgo {
        let kernel = phloem_benchsuite::spmm::kernel();
        let serial = train_spmm_cycles(&Variant::Serial, &cfg).expect("serial SpMM training");
        let pgo = pgo_search(&kernel, serial, |cuts| {
            train_spmm_cycles(
                &Variant::Phloem {
                    passes: phloem_compiler::PassConfig::all(),
                    stages: 4,
                    cuts: cuts.to_vec(),
                },
                &cfg,
            )
        });
        variants.push(Variant::Phloem {
            passes: phloem_compiler::PassConfig::all(),
            stages: 4,
            cuts: pgo.best_cuts,
        });
    }
    let mut rows = Vec::new();
    for mi in spmm_test_matrices(scale()) {
        eprintln!("[fig9]   {} ({} nnz)", mi.name, mi.matrix.nnz());
        let bt = mi.matrix.transpose();
        let ms: Vec<Measurement> = variants
            .iter()
            .map(|v| phloem_benchsuite::spmm::run(v, &mi.matrix, &bt, &cfg, mi.name))
            .collect();
        rows.push(ms);
    }
    out.push(("SpMM".to_string(), rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_math() {
        let mk = |cycles: u64| Measurement {
            variant: "v".into(),
            input: "i".into(),
            cycles,
            stats: Default::default(),
        };
        let per_input = vec![vec![mk(100), mk(50)], vec![mk(200), mk(50)]];
        let s = speedups_vs_serial(&per_input);
        assert!((s[0] - (2.0f64 * 4.0).sqrt()).abs() < 1e-9);
    }
}
