//! Structured statements of the Phloem IR.
//!
//! The IR is a statement *tree*, not a CFG: Phloem's passes (decoupling
//! across loop levels, control-value insertion, handler setup) are natural
//! tree transformations. `For` loops evaluate their bounds once on entry
//! (the frontend lowers anything fancier to `While`).

use crate::expr::{ArrayId, BranchId, Expr, QueueId, VarId};
use crate::value::BinOp;
use serde::{Deserialize, Serialize};

/// A statement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `var = expr`.
    Assign {
        /// Destination variable.
        var: VarId,
        /// Right-hand side.
        expr: Expr,
    },
    /// `array[index] = value`.
    Store {
        /// Array written.
        array: ArrayId,
        /// Index expression.
        index: Expr,
        /// Value expression.
        value: Expr,
    },
    /// Atomic read-modify-write `old = array[index]; array[index] = op(old, value)`.
    /// Used by the data-parallel baselines (e.g. atomic-min distance updates).
    AtomicRmw {
        /// Combining operator (e.g. [`BinOp::Min`], [`BinOp::Add`]).
        op: BinOp,
        /// Array updated.
        array: ArrayId,
        /// Index expression.
        index: Expr,
        /// Operand expression.
        value: Expr,
        /// If set, receives the *old* value.
        old: Option<VarId>,
    },
    /// `if (cond) { then_body } else { else_body }`.
    If {
        /// Static branch site.
        id: BranchId,
        /// Condition (nonzero = taken).
        cond: Expr,
        /// Taken branch.
        then_body: Vec<Stmt>,
        /// Not-taken branch.
        else_body: Vec<Stmt>,
    },
    /// `for (var = start; var < end; var += 1) { body }`.
    /// `start` and `end` are evaluated once at loop entry.
    For {
        /// Static branch site of the loop's backedge/exit branch.
        id: BranchId,
        /// Induction variable.
        var: VarId,
        /// Inclusive start.
        start: Expr,
        /// Exclusive end.
        end: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `while (cond) { body }`; condition re-evaluated each iteration.
    While {
        /// Static branch site.
        id: BranchId,
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Break out of `levels` enclosing loops (1 = innermost).
    Break {
        /// Number of loop levels to exit.
        levels: u32,
    },
    /// Enqueue a data value: Pipette's `enq(q, v)`.
    Enq {
        /// Destination queue.
        queue: QueueId,
        /// Value to enqueue.
        value: Expr,
    },
    /// Enqueue to one of several queues chosen by a selector expression
    /// (`queues[select % queues.len()]`). This is how Phloem's
    /// `#pragma distribute` routes work to the matching stage of another
    /// pipeline replica (Sec. IV-C).
    EnqSel {
        /// Candidate destination queues, one per replica.
        queues: Vec<QueueId>,
        /// Selector; reduced modulo the queue count.
        select: Expr,
        /// Value to enqueue.
        value: Expr,
    },
    /// Enqueue a control value: Pipette's `enq_ctrl(q, cv)`.
    EnqCtrl {
        /// Destination queue.
        queue: QueueId,
        /// Control-value tag.
        ctrl: u32,
    },
    /// Dequeue into a variable: `var = deq(q)`.
    ///
    /// If the stage registers a [`CtrlHandler`] for `queue` and the head of
    /// the queue is a control value, the hardware diverts execution to the
    /// handler instead of delivering the CV into `var`.
    Deq {
        /// Destination variable.
        var: VarId,
        /// Source queue.
        queue: QueueId,
    },
}

impl Stmt {
    /// Convenience constructor for `if` without an else branch.
    pub fn if_then(id: BranchId, cond: Expr, then_body: Vec<Stmt>) -> Stmt {
        Stmt::If {
            id,
            cond,
            then_body,
            else_body: Vec::new(),
        }
    }

    /// Visits this statement and all nested statements, pre-order.
    pub fn for_each(&self, f: &mut impl FnMut(&Stmt)) {
        f(self);
        match self {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                for s in then_body.iter().chain(else_body) {
                    s.for_each(f);
                }
            }
            Stmt::For { body, .. } | Stmt::While { body, .. } => {
                for s in body {
                    s.for_each(f);
                }
            }
            _ => {}
        }
    }

    /// Variables read by this statement (not including nested statements'
    /// reads for compound statements — only the header expressions).
    pub fn header_reads(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        match self {
            Stmt::Assign { expr, .. } => expr.collect_vars(&mut out),
            Stmt::Store { index, value, .. } => {
                index.collect_vars(&mut out);
                value.collect_vars(&mut out);
            }
            Stmt::AtomicRmw { index, value, .. } => {
                index.collect_vars(&mut out);
                value.collect_vars(&mut out);
            }
            Stmt::If { cond, .. } | Stmt::While { cond, .. } => cond.collect_vars(&mut out),
            Stmt::For { start, end, .. } => {
                start.collect_vars(&mut out);
                end.collect_vars(&mut out);
            }
            Stmt::Enq { value, .. } => value.collect_vars(&mut out),
            Stmt::EnqSel { select, value, .. } => {
                select.collect_vars(&mut out);
                value.collect_vars(&mut out);
            }
            Stmt::EnqCtrl { .. } | Stmt::Break { .. } | Stmt::Deq { .. } => {}
        }
        out
    }

    /// The variable this statement writes, if any.
    pub fn write(&self) -> Option<VarId> {
        match self {
            Stmt::Assign { var, .. } | Stmt::Deq { var, .. } => Some(*var),
            Stmt::For { var, .. } => Some(*var),
            Stmt::AtomicRmw { old, .. } => *old,
            _ => None,
        }
    }
}

/// What a control-value handler does after its body runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HandlerEnd {
    /// Break out of `n` loops enclosing the interrupted `deq`.
    BreakLoops(u32),
    /// Terminate the stage program.
    FinishStage,
    /// Re-attempt the interrupted `deq` (the CV is consumed).
    Resume,
    /// Terminate the stage if `var >= target`, else re-attempt the `deq`.
    /// Used by replicated pipelines, where a merged stage must observe
    /// one end-of-stream CV from *each* upstream replica (the handler
    /// body increments `var`).
    FinishWhen(VarId, i64),
    /// Break out of `.2` loops if `var >= target`, else re-attempt the
    /// `deq`. Like [`HandlerEnd::FinishWhen`] but lets the stage run its
    /// post-loop epilogue (e.g. storing an output length).
    BreakWhen(VarId, i64, u32),
}

/// A hardware control-value handler (Pipette's
/// `setup_control_value_handler`), registered per (queue, control value).
///
/// When a `deq` on `queue` is about to deliver a control value matched by
/// `ctrl`, the core consumes the CV, optionally binds it to `bind`, runs
/// `body` (statements without `break`), then applies `end`. A handler with
/// an exact `ctrl` tag takes precedence over a wildcard (`ctrl: None`)
/// handler on the same queue.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CtrlHandler {
    /// Queue whose dequeues are intercepted.
    pub queue: QueueId,
    /// Control-value tag that triggers this handler; `None` matches any CV.
    pub ctrl: Option<u32>,
    /// If set, the intercepted CV is stored (as a `Ctrl` word) in this
    /// variable before the body runs — used to forward arbitrary CVs.
    pub bind: Option<VarId>,
    /// Handler body (typically forwards CVs downstream).
    pub body: Vec<Stmt>,
    /// Control transfer applied after the body.
    pub end: HandlerEnd,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LoadId;

    #[test]
    fn for_each_visits_nested() {
        let s = Stmt::For {
            id: BranchId(0),
            var: VarId(0),
            start: Expr::i64(0),
            end: Expr::i64(10),
            body: vec![Stmt::if_then(
                BranchId(1),
                Expr::lt(Expr::var(VarId(0)), Expr::i64(5)),
                vec![Stmt::Break { levels: 1 }],
            )],
        };
        let mut n = 0;
        s.for_each(&mut |_| n += 1);
        assert_eq!(n, 3);
    }

    #[test]
    fn header_reads_and_writes() {
        let s = Stmt::Assign {
            var: VarId(2),
            expr: Expr::Load {
                id: LoadId(0),
                array: ArrayId(0),
                index: Box::new(Expr::var(VarId(1))),
            },
        };
        assert_eq!(s.header_reads(), vec![VarId(1)]);
        assert_eq!(s.write(), Some(VarId(2)));
    }
}
