//! Functions, array/variable declarations, and validation.

use crate::expr::{ArrayId, BranchId, Expr, LoadId, QueueId, VarId};
use crate::stmt::Stmt;
use crate::value::Ty;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Declaration of a scalar variable.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VarDecl {
    /// Human-readable name (for diagnostics and pretty-printing).
    pub name: String,
    /// Scalar type.
    pub ty: Ty,
}

/// Declaration of a memory array.
///
/// Arrays model the `restrict`-qualified pointers of the paper's C
/// interface: distinct arrays never alias. The element size in bytes
/// affects cache behaviour (32-bit graph ids pack 16 per line).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArrayDecl {
    /// Human-readable name.
    pub name: String,
    /// Element scalar type.
    pub ty: Ty,
    /// Element size in bytes (4 or 8).
    pub elem_bytes: u8,
}

impl ArrayDecl {
    /// A 4-byte integer array (e.g. vertex ids, CSR offsets).
    pub fn i32(name: impl Into<String>) -> ArrayDecl {
        ArrayDecl {
            name: name.into(),
            ty: Ty::I64,
            elem_bytes: 4,
        }
    }

    /// An 8-byte integer array.
    pub fn i64(name: impl Into<String>) -> ArrayDecl {
        ArrayDecl {
            name: name.into(),
            ty: Ty::I64,
            elem_bytes: 8,
        }
    }

    /// An 8-byte float array.
    pub fn f64(name: impl Into<String>) -> ArrayDecl {
        ArrayDecl {
            name: name.into(),
            ty: Ty::F64,
            elem_bytes: 8,
        }
    }
}

/// A single function: the unit Phloem transforms.
///
/// A `Function` is also the program of one pipeline *stage* after
/// compilation; stages of one pipeline share the same array id space.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Function/stage name.
    pub name: String,
    /// Variable declarations; `VarId(i)` indexes this vector.
    pub vars: Vec<VarDecl>,
    /// Array declarations; `ArrayId(i)` indexes this vector.
    pub arrays: Vec<ArrayDecl>,
    /// Scalar parameters, set by the host at launch.
    pub params: Vec<VarId>,
    /// Function body.
    pub body: Vec<Stmt>,
}

/// A validation problem found in a [`Function`].
#[derive(Clone, Debug, PartialEq)]
pub enum ValidateError {
    /// A variable id out of range.
    BadVar(VarId),
    /// An array id out of range.
    BadArray(ArrayId),
    /// `break N` with N exceeding the enclosing loop depth.
    BadBreak(u32, u32),
    /// Two load sites share a [`LoadId`].
    DuplicateLoadId(LoadId),
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::BadVar(v) => write!(f, "undeclared variable {v:?}"),
            ValidateError::BadArray(a) => write!(f, "undeclared array {a:?}"),
            ValidateError::BadBreak(levels, depth) => {
                write!(f, "break {levels} at loop depth {depth}")
            }
            ValidateError::DuplicateLoadId(id) => write!(f, "duplicate load id {id:?}"),
        }
    }
}

impl std::error::Error for ValidateError {}

impl Function {
    /// Creates an empty function.
    pub fn new(name: impl Into<String>) -> Function {
        Function {
            name: name.into(),
            vars: Vec::new(),
            arrays: Vec::new(),
            params: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Checks structural well-formedness.
    ///
    /// # Errors
    /// Returns the first [`ValidateError`] found.
    pub fn validate(&self) -> Result<(), ValidateError> {
        let mut seen_loads = Vec::new();
        for p in &self.params {
            if p.0 as usize >= self.vars.len() {
                return Err(ValidateError::BadVar(*p));
            }
        }
        self.visit_validate(&self.body, 0, &mut seen_loads)
    }

    fn check_expr(&self, e: &Expr, seen_loads: &mut Vec<LoadId>) -> Result<(), ValidateError> {
        match e {
            Expr::Const(_) => Ok(()),
            Expr::Var(v) => {
                if v.0 as usize >= self.vars.len() {
                    Err(ValidateError::BadVar(*v))
                } else {
                    Ok(())
                }
            }
            Expr::Unary(_, a) => self.check_expr(a, seen_loads),
            Expr::Binary(_, a, b) => {
                self.check_expr(a, seen_loads)?;
                self.check_expr(b, seen_loads)
            }
            Expr::Load { id, array, index } => {
                if array.0 as usize >= self.arrays.len() {
                    return Err(ValidateError::BadArray(*array));
                }
                if seen_loads.contains(id) {
                    return Err(ValidateError::DuplicateLoadId(*id));
                }
                seen_loads.push(*id);
                self.check_expr(index, seen_loads)
            }
        }
    }

    fn check_var(&self, v: VarId) -> Result<(), ValidateError> {
        if v.0 as usize >= self.vars.len() {
            Err(ValidateError::BadVar(v))
        } else {
            Ok(())
        }
    }

    fn check_array(&self, a: ArrayId) -> Result<(), ValidateError> {
        if a.0 as usize >= self.arrays.len() {
            Err(ValidateError::BadArray(a))
        } else {
            Ok(())
        }
    }

    fn visit_validate(
        &self,
        body: &[Stmt],
        depth: u32,
        seen_loads: &mut Vec<LoadId>,
    ) -> Result<(), ValidateError> {
        for s in body {
            match s {
                Stmt::Assign { var, expr } => {
                    self.check_var(*var)?;
                    self.check_expr(expr, seen_loads)?;
                }
                Stmt::Store {
                    array,
                    index,
                    value,
                } => {
                    self.check_array(*array)?;
                    self.check_expr(index, seen_loads)?;
                    self.check_expr(value, seen_loads)?;
                }
                Stmt::AtomicRmw {
                    array,
                    index,
                    value,
                    old,
                    ..
                } => {
                    self.check_array(*array)?;
                    self.check_expr(index, seen_loads)?;
                    self.check_expr(value, seen_loads)?;
                    if let Some(v) = old {
                        self.check_var(*v)?;
                    }
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    ..
                } => {
                    self.check_expr(cond, seen_loads)?;
                    self.visit_validate(then_body, depth, seen_loads)?;
                    self.visit_validate(else_body, depth, seen_loads)?;
                }
                Stmt::For {
                    var,
                    start,
                    end,
                    body,
                    ..
                } => {
                    self.check_var(*var)?;
                    self.check_expr(start, seen_loads)?;
                    self.check_expr(end, seen_loads)?;
                    self.visit_validate(body, depth + 1, seen_loads)?;
                }
                Stmt::While { cond, body, .. } => {
                    self.check_expr(cond, seen_loads)?;
                    self.visit_validate(body, depth + 1, seen_loads)?;
                }
                Stmt::Break { levels } => {
                    if *levels == 0 || *levels > depth {
                        return Err(ValidateError::BadBreak(*levels, depth));
                    }
                }
                Stmt::Enq { value, .. } => self.check_expr(value, seen_loads)?,
                Stmt::EnqSel { select, value, .. } => {
                    self.check_expr(select, seen_loads)?;
                    self.check_expr(value, seen_loads)?;
                }
                Stmt::EnqCtrl { .. } => {}
                Stmt::Deq { var, .. } => self.check_var(*var)?,
            }
        }
        Ok(())
    }

    /// The largest [`LoadId`] in use plus one (for allocating fresh ids).
    pub fn next_load_id(&self) -> LoadId {
        let mut max = 0;
        for s in &self.body {
            s.for_each(&mut |s| {
                let mut visit = |e: &Expr| {
                    e.for_each_load(&mut |id, _| max = max.max(id.0 + 1));
                };
                match s {
                    Stmt::Assign { expr, .. } => visit(expr),
                    Stmt::Store { index, value, .. } => {
                        visit(index);
                        visit(value);
                    }
                    Stmt::AtomicRmw { index, value, .. } => {
                        visit(index);
                        visit(value);
                    }
                    Stmt::If { cond, .. } | Stmt::While { cond, .. } => visit(cond),
                    Stmt::For { start, end, .. } => {
                        visit(start);
                        visit(end);
                    }
                    Stmt::Enq { value, .. } => visit(value),
                    _ => {}
                }
            });
        }
        LoadId(max)
    }

    /// The largest [`BranchId`] in use plus one.
    pub fn next_branch_id(&self) -> BranchId {
        let mut max = 0;
        for s in &self.body {
            s.for_each(&mut |s| match s {
                Stmt::If { id, .. } | Stmt::For { id, .. } | Stmt::While { id, .. } => {
                    max = max.max(id.0 + 1)
                }
                _ => {}
            });
        }
        BranchId(max)
    }

    /// All queue ids referenced by this function.
    pub fn queues_used(&self) -> Vec<QueueId> {
        let mut out = Vec::new();
        for s in &self.body {
            s.for_each(&mut |s| match s {
                Stmt::Enq { queue, .. } | Stmt::EnqCtrl { queue, .. } | Stmt::Deq { queue, .. }
                    if !out.contains(queue) =>
                {
                    out.push(*queue);
                }
                Stmt::EnqSel { queues, .. } => {
                    for queue in queues {
                        if !out.contains(queue) {
                            out.push(*queue);
                        }
                    }
                }
                _ => {}
            });
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn validate_catches_bad_ids() {
        let mut f = Function::new("t");
        f.body.push(Stmt::Assign {
            var: VarId(0),
            expr: Expr::i64(1),
        });
        assert_eq!(f.validate(), Err(ValidateError::BadVar(VarId(0))));
        f.vars.push(VarDecl {
            name: "x".into(),
            ty: Ty::I64,
        });
        assert_eq!(f.validate(), Ok(()));
    }

    #[test]
    fn validate_catches_bad_break() {
        let mut f = Function::new("t");
        f.body.push(Stmt::Break { levels: 1 });
        assert!(matches!(f.validate(), Err(ValidateError::BadBreak(1, 0))));
    }

    #[test]
    fn fresh_ids() {
        let mut f = Function::new("t");
        f.vars.push(VarDecl {
            name: "x".into(),
            ty: Ty::I64,
        });
        f.arrays.push(ArrayDecl::i32("a"));
        f.body.push(Stmt::Assign {
            var: VarId(0),
            expr: Expr::Load {
                id: LoadId(4),
                array: ArrayId(0),
                index: Box::new(Expr::i64(0)),
            },
        });
        assert_eq!(f.next_load_id(), LoadId(5));
        assert_eq!(f.next_branch_id(), BranchId(0));
    }
}
