//! # Phloem IR
//!
//! The intermediate representation used throughout this reproduction of
//! *Phloem: Automatic Acceleration of Irregular Applications with
//! Fine-Grain Pipeline Parallelism* (HPCA 2023).
//!
//! The paper notes that conventional IRs (e.g. LLVM's) lack support for
//! queue operations and for conveying control-flow changes between
//! decoupled stages; Phloem therefore uses a custom fine-grain IR. This
//! crate provides that IR:
//!
//! * [`Expr`] / [`Stmt`]: a *structured* program representation (loops
//!   as trees, not CFGs), with three-address-style micro-op accounting.
//! * Queue operations (`enq`, `enq_ctrl`, `deq`) and in-band
//!   [control values](Value::Ctrl) with hardware-handler semantics
//!   ([`CtrlHandler`]), mirroring Pipette's ISA (Table I of the paper).
//! * [`Pipeline`]: stage programs plus reference-accelerator
//!   configurations ([`RaConfig`]) and queue topology.
//! * A resumable [stepping interpreter](StepInterp) that drives both the
//!   functional oracle in this crate ([`interp`]) and the cycle-level
//!   timing model in `pipette-sim` through the same [`World`] trait.
//!
//! ## Quick example
//!
//! ```
//! use phloem_ir::{ArrayDecl, Expr, FunctionBuilder, MemState, Value};
//!
//! // sum = sum of a[0..n]
//! let mut b = FunctionBuilder::new("sum");
//! let n = b.param_i64("n");
//! let a = b.array_i64("a");
//! let i = b.var_i64("i");
//! let sum = b.var_i64("sum");
//! b.for_loop(i, Expr::i64(0), Expr::var(n), |b| {
//!     let l = b.load(a, Expr::var(i));
//!     b.assign(sum, Expr::add(Expr::var(sum), l));
//! });
//! let f = b.build();
//!
//! let mut mem = MemState::new();
//! mem.alloc_i64(ArrayDecl::i64("a"), [1, 2, 3]);
//! let run = phloem_ir::interp::run_serial(&f, mem, &[("n", Value::I64(3))])?;
//! assert_eq!(run.total().loads, 3);
//! # Ok::<(), phloem_ir::Trap>(())
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod bytecode;
pub mod expr;
pub mod flat;
pub mod func;
pub mod interp;
pub mod mem;
pub mod pipeline;
pub mod pretty;
pub mod step;
pub mod stmt;
pub mod validate;
pub mod value;
pub mod world;

pub use builder::FunctionBuilder;
pub use bytecode::{compile, BytecodeProgram, ExecEngine};
pub use expr::{ArrayId, BranchId, Expr, LoadId, QueueId, VarId};
pub use flat::FlatInterp;
pub use func::{ArrayDecl, Function, ValidateError, VarDecl};
pub use mem::MemState;
pub use pipeline::{Pipeline, RaConfig, RaMode, Stage, StageKind, StageProgram};
pub use step::{bind_params, StageExec, StageSpec, StepInterp};
pub use stmt::{CtrlHandler, HandlerEnd, Stmt};
pub use validate::{
    queue_topology, validate_pipeline, PipelineError, QueueEndpoints, ValidateLimits, Violation,
};
pub use value::{eval_binop, eval_unop, BinOp, Trap, Ty, UnOp, Value};
pub use world::{BlockReason, FunctionalWorld, OpCounts, StepResult, Tid, Time, UopClass, World};
