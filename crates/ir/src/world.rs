//! The [`World`] trait: the boundary between the stepping interpreter and
//! an execution substrate.
//!
//! The same interpreter drives both the *functional* world defined here
//! (all timestamps zero; used as the correctness oracle and for fast
//! profiling) and the cycle-level Pipette timing model in `pipette-sim`.

use crate::expr::{ArrayId, BranchId, QueueId};
use crate::mem::MemState;
use crate::value::{eval_binop, BinOp, Trap, Value};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Simulated time in core cycles.
pub type Time = u64;

/// A hardware thread id (one pipeline stage or RA occupies one).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tid(pub u32);

/// Micro-op classes, used by timing and energy models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UopClass {
    /// Integer ALU op (add, compare, logic).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide / remainder.
    IntDiv,
    /// FP add/compare.
    FpAlu,
    /// FP multiply.
    FpMul,
    /// FP divide.
    FpDiv,
    /// Queue enqueue.
    QueuePush,
    /// Queue dequeue.
    QueuePop,
    /// Jump into a control-value handler.
    CtrlJump,
}

impl UopClass {
    /// The class for a binary operator applied to the given operands.
    pub fn for_binop(op: BinOp, a: Value, b: Value) -> UopClass {
        let float = matches!(a, Value::F64(_)) || matches!(b, Value::F64(_));
        match (op, float) {
            (BinOp::Mul, false) => UopClass::IntMul,
            (BinOp::Mul, true) => UopClass::FpMul,
            (BinOp::Div | BinOp::Rem, false) => UopClass::IntDiv,
            (BinOp::Div | BinOp::Rem, true) => UopClass::FpDiv,
            (_, false) => UopClass::IntAlu,
            (_, true) => UopClass::FpAlu,
        }
    }
}

/// Why a thread could not make progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockReason {
    /// Enqueue to a full queue.
    QueueFull(QueueId),
    /// Dequeue from an empty queue.
    QueueEmpty(QueueId),
    /// The scheduler's step budget for this slice ran out (preemption —
    /// the thread is still runnable, unlike the queue reasons).
    Budget,
}

impl BlockReason {
    /// The queue this reason waits on, if any.
    pub fn queue(&self) -> Option<QueueId> {
        match self {
            BlockReason::QueueFull(q) | BlockReason::QueueEmpty(q) => Some(*q),
            BlockReason::Budget => None,
        }
    }
}

/// Result of a single interpreter step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepResult {
    /// One atom executed.
    Progress,
    /// The thread is blocked on a queue; retry after the queue changes.
    Blocked(BlockReason),
    /// The stage program has terminated.
    Finished,
}

/// Execution substrate: functional memory plus (optionally) timing.
///
/// All `dep` arguments are the readiness time of the operation's inputs;
/// implementations return the operation's completion time. Functional
/// implementations simply return 0.
pub trait World {
    /// Executes a compute micro-op.
    fn uop(&mut self, t: Tid, class: UopClass, dep: Time) -> Time;

    /// Resolves a branch; returns the time at which control-dependent
    /// fetch may resume (models misprediction penalties).
    fn branch(&mut self, t: Tid, site: BranchId, taken: bool, cond_ready: Time) -> Time;

    /// Performs a load.
    ///
    /// # Errors
    /// Traps on out-of-bounds accesses.
    fn load(
        &mut self,
        t: Tid,
        array: ArrayId,
        index: i64,
        dep: Time,
    ) -> Result<(Value, Time), Trap>;

    /// Performs a store.
    ///
    /// # Errors
    /// Traps on out-of-bounds accesses.
    fn store(
        &mut self,
        t: Tid,
        array: ArrayId,
        index: i64,
        value: Value,
        dep: Time,
    ) -> Result<Time, Trap>;

    /// Performs an atomic read-modify-write; returns the old value.
    ///
    /// # Errors
    /// Traps on out-of-bounds accesses or control-value operands.
    fn atomic_rmw(
        &mut self,
        t: Tid,
        op: BinOp,
        array: ArrayId,
        index: i64,
        value: Value,
        dep: Time,
    ) -> Result<(Value, Time), Trap>;

    /// Attempts to enqueue; returns `None` if the queue is full.
    ///
    /// # Errors
    /// Traps on bad queue ids.
    fn try_enq(&mut self, t: Tid, q: QueueId, w: Value, dep: Time) -> Result<Option<Time>, Trap>;

    /// Attempts to dequeue; returns `None` if the queue is empty.
    ///
    /// # Errors
    /// Traps on bad queue ids.
    fn try_deq(&mut self, t: Tid, q: QueueId, dep: Time) -> Result<Option<(Value, Time)>, Trap>;

    /// Observability hook: a control-value handler on `q` (matching
    /// `tag`) began executing at `at` (the completion time of its
    /// dispatch jump). Purely informational — the default is a no-op and
    /// timing worlds must not let it affect simulated time.
    fn note_ctrl_handler(&mut self, _t: Tid, _q: QueueId, _tag: u32, _at: Time) {}

    /// Access to functional memory.
    fn mem(&self) -> &MemState;

    /// Mutable access to functional memory.
    fn mem_mut(&mut self) -> &mut MemState;
}

/// Dynamic-operation counters gathered by [`FunctionalWorld`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// Compute micro-ops.
    pub uops: u64,
    /// Conditional branches.
    pub branches: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Atomic RMWs.
    pub atomics: u64,
    /// Queue enqueues.
    pub enqs: u64,
    /// Queue dequeues.
    pub deqs: u64,
}

impl OpCounts {
    /// Total dynamic operations of all kinds.
    pub fn total(&self) -> u64 {
        self.uops + self.branches + self.loads + self.stores + self.atomics + self.enqs + self.deqs
    }
}

/// A purely functional [`World`]: no timing, bounded FIFO queues, and
/// dynamic-op statistics. This is the correctness oracle.
#[derive(Clone, Debug)]
pub struct FunctionalWorld {
    mem: MemState,
    queues: Vec<VecDeque<Value>>,
    capacity: usize,
    /// Operation counters, indexed by thread id.
    pub counts: Vec<OpCounts>,
}

impl FunctionalWorld {
    /// Creates a functional world over `mem` with `nqueues` queues of the
    /// given capacity and `nthreads` stat slots.
    pub fn new(mem: MemState, nqueues: usize, capacity: usize, nthreads: usize) -> Self {
        FunctionalWorld {
            mem,
            queues: (0..nqueues).map(|_| VecDeque::new()).collect(),
            capacity,
            counts: vec![OpCounts::default(); nthreads],
        }
    }

    /// Consumes the world, returning the final memory.
    pub fn into_mem(self) -> MemState {
        self.mem
    }

    /// Total op counts summed across threads.
    pub fn total_counts(&self) -> OpCounts {
        let mut t = OpCounts::default();
        for c in &self.counts {
            t.uops += c.uops;
            t.branches += c.branches;
            t.loads += c.loads;
            t.stores += c.stores;
            t.atomics += c.atomics;
            t.enqs += c.enqs;
            t.deqs += c.deqs;
        }
        t
    }

    /// Current occupancy of a queue (tests / diagnostics).
    pub fn queue_len(&self, q: QueueId) -> usize {
        self.queues[q.0 as usize].len()
    }

    fn counts_mut(&mut self, t: Tid) -> &mut OpCounts {
        let idx = t.0 as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, OpCounts::default());
        }
        &mut self.counts[idx]
    }
}

impl World for FunctionalWorld {
    fn uop(&mut self, t: Tid, _class: UopClass, _dep: Time) -> Time {
        self.counts_mut(t).uops += 1;
        0
    }

    fn branch(&mut self, t: Tid, _site: BranchId, _taken: bool, _dep: Time) -> Time {
        self.counts_mut(t).branches += 1;
        0
    }

    fn load(
        &mut self,
        t: Tid,
        array: ArrayId,
        index: i64,
        _dep: Time,
    ) -> Result<(Value, Time), Trap> {
        self.counts_mut(t).loads += 1;
        Ok((self.mem.load(array, index)?, 0))
    }

    fn store(
        &mut self,
        t: Tid,
        array: ArrayId,
        index: i64,
        value: Value,
        _dep: Time,
    ) -> Result<Time, Trap> {
        self.counts_mut(t).stores += 1;
        self.mem.store(array, index, value)?;
        Ok(0)
    }

    fn atomic_rmw(
        &mut self,
        t: Tid,
        op: BinOp,
        array: ArrayId,
        index: i64,
        value: Value,
        _dep: Time,
    ) -> Result<(Value, Time), Trap> {
        self.counts_mut(t).atomics += 1;
        let old = self.mem.load(array, index)?;
        let new = eval_binop(op, old, value)?;
        self.mem.store(array, index, new)?;
        Ok((old, 0))
    }

    fn try_enq(&mut self, t: Tid, q: QueueId, w: Value, _dep: Time) -> Result<Option<Time>, Trap> {
        let cap = self.capacity;
        let queue = self
            .queues
            .get_mut(q.0 as usize)
            .ok_or_else(|| Trap::BadId(format!("queue {}", q.0)))?;
        if queue.len() >= cap {
            return Ok(None);
        }
        queue.push_back(w);
        self.counts_mut(t).enqs += 1;
        Ok(Some(0))
    }

    fn try_deq(&mut self, t: Tid, q: QueueId, _dep: Time) -> Result<Option<(Value, Time)>, Trap> {
        let queue = self
            .queues
            .get_mut(q.0 as usize)
            .ok_or_else(|| Trap::BadId(format!("queue {}", q.0)))?;
        match queue.pop_front() {
            Some(w) => {
                self.counts_mut(t).deqs += 1;
                Ok(Some((w, 0)))
            }
            None => Ok(None),
        }
    }

    fn mem(&self) -> &MemState {
        &self.mem
    }

    fn mem_mut(&mut self) -> &mut MemState {
        &mut self.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::ArrayDecl;

    #[test]
    fn queues_are_fifo_and_bounded() {
        let mut w = FunctionalWorld::new(MemState::new(), 1, 2, 1);
        let q = QueueId(0);
        let t = Tid(0);
        assert!(w.try_enq(t, q, Value::I64(1), 0).unwrap().is_some());
        assert!(w.try_enq(t, q, Value::I64(2), 0).unwrap().is_some());
        assert!(w.try_enq(t, q, Value::I64(3), 0).unwrap().is_none());
        assert_eq!(w.try_deq(t, q, 0).unwrap().unwrap().0, Value::I64(1));
        assert_eq!(w.try_deq(t, q, 0).unwrap().unwrap().0, Value::I64(2));
        assert!(w.try_deq(t, q, 0).unwrap().is_none());
    }

    #[test]
    fn atomic_rmw_returns_old_value() {
        let mut mem = MemState::new();
        let a = mem.alloc_i64(ArrayDecl::i64("a"), [10]);
        let mut w = FunctionalWorld::new(mem, 0, 0, 1);
        let (old, _) = w
            .atomic_rmw(Tid(0), BinOp::Min, a, 0, Value::I64(3), 0)
            .unwrap();
        assert_eq!(old, Value::I64(10));
        assert_eq!(w.mem().load(a, 0).unwrap(), Value::I64(3));
    }

    #[test]
    fn bad_queue_id_traps() {
        let mut w = FunctionalWorld::new(MemState::new(), 1, 4, 1);
        assert!(w.try_enq(Tid(0), QueueId(5), Value::I64(0), 0).is_err());
    }
}
