//! Pipelines: collections of stage programs, reference accelerators, and
//! queue topology — the unit the Pipette machine executes.

use crate::builder::FunctionBuilder;
use crate::expr::{ArrayId, QueueId};
use crate::func::{ArrayDecl, Function};
use crate::stmt::{CtrlHandler, HandlerEnd, Stmt};
use crate::value::Trap;
use serde::{Deserialize, Serialize};

/// One stage's code: a function plus registered control-value handlers.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StageProgram {
    /// The stage's function body.
    pub func: Function,
    /// Registered control-value handlers.
    pub handlers: Vec<CtrlHandler>,
}

impl StageProgram {
    /// A stage with no handlers.
    pub fn plain(func: Function) -> StageProgram {
        StageProgram {
            func,
            handlers: Vec::new(),
        }
    }
}

/// Access mode of a reference accelerator (Table I of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RaMode {
    /// Each input word is an index into the base array.
    Indirect,
    /// Input words come in (start, end) pairs; the RA streams
    /// `base[start..end]`.
    Scan,
}

/// Configuration of one reference accelerator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RaConfig {
    /// Display name.
    pub name: String,
    /// Access mode.
    pub mode: RaMode,
    /// Array the RA indirects into / scans.
    pub base: ArrayId,
    /// Queue the RA consumes indices (or ranges) from.
    pub in_queue: QueueId,
    /// Queue the RA delivers loaded values to.
    pub out_queue: QueueId,
    /// Whether control values arriving on the input are forwarded to the
    /// output (chained RAs and downstream stages rely on this).
    pub forward_ctrl: bool,
    /// For [`RaMode::Scan`]: emit this control value after each range.
    pub scan_end_ctrl: Option<u32>,
}

/// What kind of execution resource a stage occupies.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum StageKind {
    /// An SMT thread of an OOO core.
    Compute,
    /// A reference accelerator engine.
    Ra(RaConfig),
}

/// A placed stage.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// Code.
    pub program: StageProgram,
    /// Resource kind.
    pub kind: StageKind,
    /// Core index the stage is placed on.
    pub core: usize,
}

/// A complete pipeline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize, Default)]
pub struct Pipeline {
    /// Display name.
    pub name: String,
    /// Stages in dataflow order (producers before consumers by
    /// convention; execution does not rely on the order).
    pub stages: Vec<Stage>,
    /// Number of queue ids used (ids `0..num_queues`).
    pub num_queues: u16,
}

impl Pipeline {
    /// An empty pipeline.
    pub fn new(name: impl Into<String>) -> Pipeline {
        Pipeline {
            name: name.into(),
            stages: Vec::new(),
            num_queues: 0,
        }
    }

    /// Adds a compute stage on `core`; returns its index.
    pub fn add_stage(&mut self, program: StageProgram, core: usize) -> usize {
        self.bump_queues(&program.func);
        self.stages.push(Stage {
            program,
            kind: StageKind::Compute,
            core,
        });
        self.stages.len() - 1
    }

    /// Adds a reference accelerator on `core`; its stage program is
    /// generated from the configuration. Returns its index.
    pub fn add_ra(&mut self, cfg: RaConfig, arrays: &[ArrayDecl], core: usize) -> usize {
        let program = ra_stage_program(&cfg, arrays);
        self.bump_queues(&program.func);
        self.stages.push(Stage {
            program,
            kind: StageKind::Ra(cfg),
            core,
        });
        self.stages.len() - 1
    }

    fn bump_queues(&mut self, func: &Function) {
        for q in func.queues_used() {
            self.num_queues = self.num_queues.max(q.0 + 1);
        }
    }

    /// Number of compute (SMT-thread) stages.
    pub fn compute_stages(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| matches!(s.kind, StageKind::Compute))
            .count()
    }

    /// Number of reference accelerators.
    pub fn ra_stages(&self) -> usize {
        self.stages.len() - self.compute_stages()
    }

    /// Total stage count including RAs (the metric of Fig. 13).
    pub fn total_stages(&self) -> usize {
        self.stages.len()
    }

    /// Cores referenced by the placement.
    pub fn cores_used(&self) -> usize {
        self.stages.iter().map(|s| s.core + 1).max().unwrap_or(0)
    }

    /// Structural checks: stage programs validate; queue ids fit the
    /// hardware limit; per-core thread and RA counts fit.
    ///
    /// # Errors
    /// Returns a descriptive trap for the first violation.
    pub fn check(
        &self,
        max_queues: u16,
        smt_threads: usize,
        ras_per_core: usize,
    ) -> Result<(), Trap> {
        if self.num_queues > max_queues {
            return Err(Trap::Malformed(format!(
                "pipeline uses {} queues but hardware has {max_queues}",
                self.num_queues
            )));
        }
        for core in 0..self.cores_used() {
            let threads = self
                .stages
                .iter()
                .filter(|s| s.core == core && matches!(s.kind, StageKind::Compute))
                .count();
            let ras = self
                .stages
                .iter()
                .filter(|s| s.core == core && matches!(s.kind, StageKind::Ra(_)))
                .count();
            if threads > smt_threads {
                return Err(Trap::Malformed(format!(
                    "core {core} has {threads} compute stages but only {smt_threads} SMT threads"
                )));
            }
            if ras > ras_per_core {
                return Err(Trap::Malformed(format!(
                    "core {core} has {ras} RAs but only {ras_per_core} RA engines"
                )));
            }
        }
        for s in &self.stages {
            s.program
                .func
                .validate()
                .map_err(|e| Trap::Malformed(format!("stage {}: {e}", s.program.func.name)))?;
        }
        Ok(())
    }
}

/// Generates the stage program equivalent to a reference accelerator's
/// FSM. The generated program is executed with RA timing parameters by
/// the machine (no core issue bandwidth, fixed concurrency).
pub fn ra_stage_program(cfg: &RaConfig, arrays: &[ArrayDecl]) -> StageProgram {
    use crate::expr::Expr;
    let mut b = FunctionBuilder::new(format!("ra:{}", cfg.name));
    for decl in arrays {
        b.array(decl.clone());
    }
    let mut handlers = Vec::new();
    match cfg.mode {
        RaMode::Indirect => {
            let v = b.var_i64("ra_idx");
            let x = b.var(
                "ra_val",
                arrays
                    .get(cfg.base.0 as usize)
                    .map(|d| d.ty)
                    .unwrap_or(crate::value::Ty::I64),
            );
            b.while_true(|b| {
                b.deq(v, cfg.in_queue);
                let l = b.load(cfg.base, Expr::var(v));
                b.assign(x, l);
                b.enq(cfg.out_queue, Expr::var(x));
            });
            let cv = b.var_i64("ra_cv");
            if cfg.forward_ctrl {
                handlers.push(CtrlHandler {
                    queue: cfg.in_queue,
                    ctrl: None,
                    bind: Some(cv),
                    body: vec![Stmt::Enq {
                        queue: cfg.out_queue,
                        value: Expr::var(cv),
                    }],
                    end: HandlerEnd::Resume,
                });
            } else {
                handlers.push(CtrlHandler {
                    queue: cfg.in_queue,
                    ctrl: None,
                    bind: Some(cv),
                    body: Vec::new(),
                    end: HandlerEnd::Resume,
                });
            }
        }
        RaMode::Scan => {
            let s = b.var_i64("ra_start");
            let e = b.var_i64("ra_end");
            let i = b.var_i64("ra_i");
            let x = b.var(
                "ra_val",
                arrays
                    .get(cfg.base.0 as usize)
                    .map(|d| d.ty)
                    .unwrap_or(crate::value::Ty::I64),
            );
            let end_ctrl = cfg.scan_end_ctrl;
            b.while_true(|b| {
                b.deq(s, cfg.in_queue);
                b.deq(e, cfg.in_queue);
                b.for_loop(i, Expr::var(s), Expr::var(e), |b| {
                    let l = b.load(cfg.base, Expr::var(i));
                    b.assign(x, l);
                    b.enq(cfg.out_queue, Expr::var(x));
                });
                if let Some(cv) = end_ctrl {
                    b.enq_ctrl(cfg.out_queue, cv);
                }
            });
            let cv = b.var_i64("ra_cv");
            let body = if cfg.forward_ctrl {
                vec![Stmt::Enq {
                    queue: cfg.out_queue,
                    value: Expr::var(cv),
                }]
            } else {
                Vec::new()
            };
            handlers.push(CtrlHandler {
                queue: cfg.in_queue,
                ctrl: None,
                bind: Some(cv),
                body,
                end: HandlerEnd::Resume,
            });
        }
    }
    StageProgram {
        func: b.build(),
        handlers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn dummy_stage(name: &str, q_out: Option<QueueId>) -> StageProgram {
        let mut b = FunctionBuilder::new(name);
        let i = b.var_i64("i");
        b.for_loop(i, Expr::i64(0), Expr::i64(4), |b| {
            if let Some(q) = q_out {
                b.enq(q, Expr::var(i));
            }
        });
        StageProgram::plain(b.build())
    }

    #[test]
    fn queue_count_tracks_usage() {
        let mut p = Pipeline::new("t");
        p.add_stage(dummy_stage("a", Some(QueueId(3))), 0);
        assert_eq!(p.num_queues, 4);
    }

    #[test]
    fn check_rejects_oversubscribed_core() {
        let mut p = Pipeline::new("t");
        for k in 0..5 {
            p.add_stage(dummy_stage(&format!("s{k}"), None), 0);
        }
        assert!(p.check(16, 4, 4).is_err());
        let mut p2 = Pipeline::new("t2");
        for k in 0..4 {
            p2.add_stage(dummy_stage(&format!("s{k}"), None), 0);
        }
        assert!(p2.check(16, 4, 4).is_ok());
    }

    #[test]
    fn ra_programs_validate() {
        let arrays = vec![ArrayDecl::i32("edges")];
        for mode in [RaMode::Indirect, RaMode::Scan] {
            let cfg = RaConfig {
                name: "r".into(),
                mode,
                base: ArrayId(0),
                in_queue: QueueId(0),
                out_queue: QueueId(1),
                forward_ctrl: true,
                scan_end_ctrl: Some(1),
            };
            let prog = ra_stage_program(&cfg, &arrays);
            assert!(prog.func.validate().is_ok(), "{mode:?}");
            assert_eq!(prog.handlers.len(), 1);
        }
    }
}
