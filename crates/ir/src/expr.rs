//! Expression trees of the Phloem IR.
//!
//! Expressions are pure except for [`Expr::Load`], which reads memory.
//! Every load site carries a unique [`LoadId`] so the compiler can name
//! individual loads when choosing decoupling points (Sec. V of the paper).

use crate::value::{BinOp, UnOp, Value};
use serde::{Deserialize, Serialize};

/// A scalar variable (virtual register) within one function/stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarId(pub u32);

/// A memory array (a `restrict`-qualified pointer in the source program).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ArrayId(pub u32);

/// A hardware queue number (Pipette supports 16 per core cluster).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueueId(pub u16);

/// Unique identifier of a static load site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LoadId(pub u32);

/// Unique identifier of a static branch site (used by the branch predictor
/// model and for diagnostics).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BranchId(pub u32);

/// An expression tree.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A compile-time constant.
    Const(Value),
    /// A variable read.
    Var(VarId),
    /// A unary operation.
    Unary(UnOp, Box<Expr>),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// A memory load `array[index]`, tagged with its static site id.
    Load {
        /// Static load-site identifier, unique within a function.
        id: LoadId,
        /// Array being read.
        array: ArrayId,
        /// Index expression.
        index: Box<Expr>,
    },
}

impl Expr {
    /// Integer constant.
    pub fn i64(v: i64) -> Expr {
        Expr::Const(Value::I64(v))
    }

    /// Float constant.
    pub fn f64(v: f64) -> Expr {
        Expr::Const(Value::F64(v))
    }

    /// Variable reference.
    pub fn var(v: VarId) -> Expr {
        Expr::Var(v)
    }

    /// Binary operation.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Binary(op, Box::new(a), Box::new(b))
    }

    /// Unary operation.
    pub fn un(op: UnOp, a: Expr) -> Expr {
        Expr::Unary(op, Box::new(a))
    }

    /// `a + b`.
    // Not `std::ops::Add`: these are static two-argument constructors,
    // not methods on `self` (same below for `sub`/`mul`).
    #[allow(clippy::should_implement_trait)]
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Add, a, b)
    }

    /// `a - b`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Sub, a, b)
    }

    /// `a * b`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Mul, a, b)
    }

    /// `a < b`.
    pub fn lt(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Lt, a, b)
    }

    /// `a == b`.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Eq, a, b)
    }

    /// `a != b`.
    pub fn ne(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Ne, a, b)
    }

    /// `is_control(a)`.
    pub fn is_ctrl(a: Expr) -> Expr {
        Expr::un(UnOp::IsCtrl, a)
    }

    /// True if this expression contains no loads (is pure w.r.t. memory).
    pub fn is_pure(&self) -> bool {
        let mut pure = true;
        self.for_each_load(&mut |_, _| pure = false);
        pure
    }

    /// Visits every load site in this expression, innermost first.
    pub fn for_each_load(&self, f: &mut impl FnMut(LoadId, ArrayId)) {
        match self {
            Expr::Const(_) | Expr::Var(_) => {}
            Expr::Unary(_, a) => a.for_each_load(f),
            Expr::Binary(_, a, b) => {
                a.for_each_load(f);
                b.for_each_load(f);
            }
            Expr::Load { id, array, index } => {
                index.for_each_load(f);
                f(*id, *array);
            }
        }
    }

    /// Collects the set of variables read by this expression into `out`.
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Expr::Unary(_, a) => a.collect_vars(out),
            Expr::Binary(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Load { index, .. } => index.collect_vars(out),
        }
    }

    /// Number of expression nodes that cost a micro-op when executed
    /// (constants and variable reads are free; loads, unary and binary ops
    /// each cost one).
    pub fn uop_count(&self) -> u32 {
        match self {
            Expr::Const(_) | Expr::Var(_) => 0,
            Expr::Unary(_, a) => 1 + a.uop_count(),
            Expr::Binary(_, a, b) => 1 + a.uop_count() + b.uop_count(),
            Expr::Load { index, .. } => 1 + index.uop_count(),
        }
    }

    /// Rewrites every subexpression bottom-up with `f`.
    pub fn map(self, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
        let e = match self {
            Expr::Const(_) | Expr::Var(_) => self,
            Expr::Unary(op, a) => Expr::Unary(op, Box::new(a.map(f))),
            Expr::Binary(op, a, b) => Expr::Binary(op, Box::new(a.map(f)), Box::new(b.map(f))),
            Expr::Load { id, array, index } => Expr::Load {
                id,
                array,
                index: Box::new(index.map(f)),
            },
        };
        f(e)
    }

    /// Replaces the load with the given id by an expression (used when the
    /// compiler routes a load through a queue or reference accelerator).
    /// Returns the rewritten expression and whether a replacement happened.
    pub fn replace_load(self, target: LoadId, replacement: &Expr) -> (Expr, bool) {
        let mut hit = false;
        let out = self.map(&mut |e| match e {
            Expr::Load { id, .. } if id == target => {
                hit = true;
                replacement.clone()
            }
            other => other,
        });
        (out, hit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Expr {
        // B[A[i] + 1] * 2
        Expr::mul(
            Expr::Load {
                id: LoadId(1),
                array: ArrayId(1),
                index: Box::new(Expr::add(
                    Expr::Load {
                        id: LoadId(0),
                        array: ArrayId(0),
                        index: Box::new(Expr::var(VarId(0))),
                    },
                    Expr::i64(1),
                )),
            },
            Expr::i64(2),
        )
    }

    #[test]
    fn load_visitation_is_innermost_first() {
        let mut seen = Vec::new();
        sample().for_each_load(&mut |id, a| seen.push((id, a)));
        assert_eq!(seen, vec![(LoadId(0), ArrayId(0)), (LoadId(1), ArrayId(1))]);
    }

    #[test]
    fn uop_count_skips_leaves() {
        // loads: 2, add: 1, mul: 1 => 4
        assert_eq!(sample().uop_count(), 4);
    }

    #[test]
    fn replace_load_substitutes_once() {
        let (e, hit) = sample().replace_load(LoadId(0), &Expr::var(VarId(9)));
        assert!(hit);
        let mut loads = Vec::new();
        e.for_each_load(&mut |id, _| loads.push(id));
        assert_eq!(loads, vec![LoadId(1)]);
        let mut vars = Vec::new();
        e.collect_vars(&mut vars);
        assert!(vars.contains(&VarId(9)));
    }

    #[test]
    fn collect_vars_dedups() {
        let e = Expr::add(Expr::var(VarId(3)), Expr::var(VarId(3)));
        let mut vars = Vec::new();
        e.collect_vars(&mut vars);
        assert_eq!(vars, vec![VarId(3)]);
    }
}
