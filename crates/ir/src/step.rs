//! The resumable stepping interpreter.
//!
//! [`StepInterp`] walks one stage program, executing one *atom* (a simple
//! statement or one control-flow decision) per [`StepInterp::step`] call
//! against a [`World`]. Queue operations that cannot proceed return
//! [`StepResult::Blocked`] without consuming the atom, so a scheduler can
//! interleave many threads and retry blocked ones — exactly how the
//! Pipette SMT core time-multiplexes stages.
//!
//! The interpreter carries per-variable *readiness times* alongside
//! values: a timing [`World`] returns completion times for each micro-op
//! and the interpreter threads them through the dataflow, which is how
//! the cycle-level model sees true dependence chains (e.g. pointer
//! chases) without a separate register-renaming model.

use crate::expr::{Expr, QueueId, VarId};
use crate::func::Function;
use crate::stmt::{CtrlHandler, HandlerEnd, Stmt};
use crate::value::{eval_binop, eval_unop, Trap, Value};
use crate::world::{BlockReason, StepResult, Tid, Time, UopClass, World};

/// A stage program: a function body plus its registered control-value
/// handlers.
#[derive(Clone, Copy, Debug)]
pub struct StageSpec<'p> {
    /// The stage's code.
    pub func: &'p Function,
    /// Control-value handlers registered for this stage.
    pub handlers: &'p [CtrlHandler],
}

enum Frame<'p> {
    Seq {
        stmts: &'p [Stmt],
        idx: usize,
    },
    For {
        stmt: &'p Stmt,
        cur: i64,
        end: i64,
        cur_time: Time,
        end_time: Time,
        entered: bool,
    },
    While {
        stmt: &'p Stmt,
    },
    /// Marker pushed below a handler body; applies `end` when reached.
    HandlerEnd {
        end: HandlerEnd,
    },
}

/// Resumable interpreter for one stage program.
pub struct StepInterp<'p> {
    stage: StageSpec<'p>,
    tid: Tid,
    env: Vec<Value>,
    env_time: Vec<Time>,
    flow_time: Time,
    frames: Vec<Frame<'p>>,
    finished: bool,
    pending_enq: Option<(Value, Time)>,
    pending_enq_sel: Option<(Value, Time, QueueId)>,
    steps: u64,
    budget: u64,
}

impl<'p> StepInterp<'p> {
    /// Creates an interpreter for `stage` running as hardware thread
    /// `tid`, with the given parameter bindings.
    ///
    /// # Panics
    /// Panics if a parameter id is out of range (call
    /// [`Function::validate`] first).
    pub fn new(stage: StageSpec<'p>, tid: Tid, params: &[(VarId, Value)]) -> StepInterp<'p> {
        let nvars = stage.func.vars.len();
        let mut env = Vec::with_capacity(nvars);
        for decl in &stage.func.vars {
            env.push(decl.ty.zero());
        }
        for (var, val) in params {
            env[var.0 as usize] = *val;
        }
        let frames = vec![Frame::Seq {
            stmts: &stage.func.body,
            idx: 0,
        }];
        StepInterp {
            stage,
            tid,
            env,
            env_time: vec![0; nvars],
            flow_time: 0,
            frames,
            finished: stage.func.body.is_empty(),
            pending_enq: None,
            pending_enq_sel: None,
            steps: 0,
            budget: u64::MAX,
        }
    }

    /// Limits the number of interpreter steps (guards against runaway
    /// loops in generated code); exceeding it traps.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// True once the stage program has terminated.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Committed atoms executed so far. Blocked attempts are not
    /// counted, so the value is identical across engines *and*
    /// schedulers (the polling scheduler re-polls blocked threads; the
    /// event-driven one parks them).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Name of the stage (diagnostics).
    pub fn name(&self) -> &str {
        &self.stage.func.name
    }

    /// Current value of a variable (for reading scalar results).
    pub fn var(&self, v: VarId) -> Value {
        self.env[v.0 as usize]
    }

    /// The thread's control-flow readiness time (diagnostics).
    pub fn flow_time(&self) -> Time {
        self.flow_time
    }

    fn read_var(&self, v: VarId) -> Result<(Value, Time), Trap> {
        let i = v.0 as usize;
        if i >= self.env.len() {
            return Err(Trap::BadId(format!("var {i}")));
        }
        Ok((self.env[i], self.env_time[i].max(self.flow_time)))
    }

    fn write_var(&mut self, v: VarId, val: Value, t: Time) {
        let i = v.0 as usize;
        self.env[i] = val;
        self.env_time[i] = t;
    }

    fn eval<W: World + ?Sized>(&mut self, world: &mut W, e: &Expr) -> Result<(Value, Time), Trap> {
        match e {
            Expr::Const(v) => Ok((*v, self.flow_time)),
            Expr::Var(v) => self.read_var(*v),
            Expr::Unary(op, a) => {
                let (va, ta) = self.eval(world, a)?;
                let res = eval_unop(*op, va)?;
                let class = if matches!(va, Value::F64(_)) {
                    UopClass::FpAlu
                } else {
                    UopClass::IntAlu
                };
                let t = world.uop(self.tid, class, ta);
                Ok((res, t))
            }
            Expr::Binary(op, a, b) => {
                let (va, ta) = self.eval(world, a)?;
                let (vb, tb) = self.eval(world, b)?;
                let res = eval_binop(*op, va, vb)?;
                let class = UopClass::for_binop(*op, va, vb);
                let t = world.uop(self.tid, class, ta.max(tb));
                Ok((res, t))
            }
            Expr::Load { array, index, .. } => {
                let (vi, ti) = self.eval(world, index)?;
                let idx = vi.as_i64()?;
                world.load(self.tid, *array, idx, ti)
            }
        }
    }

    fn find_handler(&self, q: QueueId, tag: u32) -> Option<&'p CtrlHandler> {
        // Exact tag match wins over a wildcard handler.
        self.stage
            .handlers
            .iter()
            .find(|h| h.queue == q && h.ctrl == Some(tag))
            .or_else(|| {
                self.stage
                    .handlers
                    .iter()
                    .find(|h| h.queue == q && h.ctrl.is_none())
            })
    }

    /// Pops `levels` loop frames (and everything above them).
    ///
    /// # Errors
    /// Traps if there are not enough loop frames, or a handler boundary
    /// is crossed.
    fn pop_loops(&mut self, levels: u32) -> Result<(), Trap> {
        let mut remaining = levels;
        while remaining > 0 {
            match self.frames.pop() {
                Some(Frame::For { .. }) | Some(Frame::While { .. }) => remaining -= 1,
                Some(Frame::Seq { .. }) => {}
                Some(Frame::HandlerEnd { .. }) | None => {
                    return Err(Trap::Malformed(format!(
                        "break {levels} crosses a handler or function boundary"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Executes one atom. See [`StepResult`] for outcomes.
    ///
    /// # Errors
    /// Propagates runtime traps (bounds, control-value misuse, budget).
    pub fn step<W: World + ?Sized>(&mut self, world: &mut W) -> Result<StepResult, Trap> {
        if self.finished {
            return Ok(StepResult::Finished);
        }
        self.steps += 1;
        if self.steps > self.budget {
            return Err(Trap::OpBudgetExceeded(self.budget));
        }
        loop {
            let Some(top) = self.frames.len().checked_sub(1) else {
                self.finished = true;
                return Ok(StepResult::Finished);
            };
            match &self.frames[top] {
                Frame::Seq { stmts, idx } => {
                    let (stmts, idx) = (*stmts, *idx);
                    if idx >= stmts.len() {
                        self.frames.pop();
                        continue;
                    }
                    let stmt = &stmts[idx];
                    match stmt {
                        Stmt::If {
                            id,
                            cond,
                            then_body,
                            else_body,
                        } => {
                            self.advance_seq(top);
                            let (v, t) = self.eval(world, cond)?;
                            let taken = v.as_bool()?;
                            let resume = world.branch(self.tid, *id, taken, t);
                            self.flow_time = self.flow_time.max(resume);
                            let body: &'p [Stmt] = if taken { then_body } else { else_body };
                            if !body.is_empty() {
                                self.frames.push(Frame::Seq {
                                    stmts: body,
                                    idx: 0,
                                });
                            }
                            return Ok(StepResult::Progress);
                        }
                        Stmt::For { start, end, .. } => {
                            self.advance_seq(top);
                            let (vs, ts) = self.eval(world, start)?;
                            let (ve, te) = self.eval(world, end)?;
                            self.frames.push(Frame::For {
                                stmt,
                                cur: vs.as_i64()?,
                                end: ve.as_i64()?,
                                cur_time: ts,
                                end_time: te,
                                entered: false,
                            });
                            continue;
                        }
                        Stmt::While { .. } => {
                            self.advance_seq(top);
                            self.frames.push(Frame::While { stmt });
                            continue;
                        }
                        Stmt::Break { levels } => {
                            self.pop_loops(*levels)?;
                            return Ok(StepResult::Progress);
                        }
                        atom => {
                            return match self.exec_atom(world, atom)? {
                                AtomOutcome::Done => {
                                    self.advance_seq(top);
                                    Ok(StepResult::Progress)
                                }
                                AtomOutcome::Blocked(b) => {
                                    // A blocked attempt is not a committed
                                    // atom: un-count it, or `steps` would
                                    // depend on how often the scheduler
                                    // re-polls a blocked thread.
                                    self.steps -= 1;
                                    Ok(StepResult::Blocked(b))
                                }
                                AtomOutcome::Dispatched => Ok(StepResult::Progress),
                            };
                        }
                    }
                }
                Frame::While { stmt } => {
                    let stmt: &'p Stmt = stmt;
                    let Stmt::While { id, cond, body } = stmt else {
                        unreachable!("While frame holds a While stmt");
                    };
                    let (v, t) = self.eval(world, cond)?;
                    let taken = v.as_bool()?;
                    let resume = world.branch(self.tid, *id, taken, t);
                    self.flow_time = self.flow_time.max(resume);
                    if taken {
                        self.frames.push(Frame::Seq {
                            stmts: body,
                            idx: 0,
                        });
                    } else {
                        self.frames.pop();
                    }
                    return Ok(StepResult::Progress);
                }
                Frame::For {
                    stmt,
                    cur,
                    end,
                    cur_time,
                    end_time,
                    entered,
                } => {
                    let stmt: &'p Stmt = stmt;
                    let (mut cur, end, mut cur_time, end_time, entered) =
                        (*cur, *end, *cur_time, *end_time, *entered);
                    let Stmt::For { id, var, body, .. } = stmt else {
                        unreachable!("For frame holds a For stmt");
                    };
                    if entered {
                        // Increment: a 1-cycle loop-carried dependence.
                        let t = world.uop(self.tid, UopClass::IntAlu, cur_time.max(self.flow_time));
                        cur += 1;
                        cur_time = t;
                    }
                    // Exit test + branch.
                    let t_cmp = world.uop(
                        self.tid,
                        UopClass::IntAlu,
                        cur_time.max(end_time).max(self.flow_time),
                    );
                    let taken = cur < end;
                    let resume = world.branch(self.tid, *id, taken, t_cmp);
                    self.flow_time = self.flow_time.max(resume);
                    if taken {
                        self.write_var(*var, Value::I64(cur), cur_time.max(self.flow_time));
                        if let Some(Frame::For {
                            cur: c,
                            cur_time: ct,
                            entered: e,
                            ..
                        }) = self.frames.last_mut()
                        {
                            *c = cur;
                            *ct = cur_time;
                            *e = true;
                        }
                        self.frames.push(Frame::Seq {
                            stmts: body,
                            idx: 0,
                        });
                    } else {
                        self.frames.pop();
                    }
                    return Ok(StepResult::Progress);
                }
                Frame::HandlerEnd { end } => {
                    let end = *end;
                    self.frames.pop();
                    match end {
                        HandlerEnd::Resume => {}
                        HandlerEnd::BreakLoops(n) => self.pop_loops(n)?,
                        HandlerEnd::FinishStage => {
                            self.frames.clear();
                            self.finished = true;
                            return Ok(StepResult::Finished);
                        }
                        HandlerEnd::FinishWhen(var, target) => {
                            let (v, _) = self.read_var(var)?;
                            if v.as_i64()? >= target {
                                self.frames.clear();
                                self.finished = true;
                                return Ok(StepResult::Finished);
                            }
                        }
                        HandlerEnd::BreakWhen(var, target, levels) => {
                            let (v, _) = self.read_var(var)?;
                            if v.as_i64()? >= target {
                                self.pop_loops(levels)?;
                            }
                        }
                    }
                    return Ok(StepResult::Progress);
                }
            }
        }
    }

    /// Runs up to `max` progress-making steps, stopping early if the
    /// thread blocks or finishes. Returns the number of atoms executed
    /// and the stop condition: [`StepResult::Finished`], a queue
    /// [`StepResult::Blocked`], or `Blocked(BlockReason::Budget)` when
    /// the slice was exhausted with the thread still runnable.
    ///
    /// This is the scheduler's time-slice primitive: the sequence of
    /// [`World`] calls is exactly what `max` consecutive [`Self::step`]
    /// calls would make, so timing-model behaviour is identical.
    ///
    /// # Errors
    /// Propagates runtime traps (bounds, control-value misuse, budget).
    pub fn run_slice<W: World + ?Sized>(
        &mut self,
        world: &mut W,
        max: u32,
    ) -> Result<(u32, StepResult), Trap> {
        let mut n = 0;
        loop {
            match self.step(world)? {
                StepResult::Progress => {
                    n += 1;
                    if n >= max {
                        return Ok((n, StepResult::Blocked(BlockReason::Budget)));
                    }
                }
                StepResult::Blocked(b) => return Ok((n, StepResult::Blocked(b))),
                StepResult::Finished => return Ok((n, StepResult::Finished)),
            }
        }
    }

    fn advance_seq(&mut self, frame_idx: usize) {
        if let Frame::Seq { idx, .. } = &mut self.frames[frame_idx] {
            *idx += 1;
        }
    }

    fn exec_atom<W: World + ?Sized>(
        &mut self,
        world: &mut W,
        stmt: &'p Stmt,
    ) -> Result<AtomOutcome, Trap> {
        match stmt {
            Stmt::Assign { var, expr } => {
                let (v, t) = self.eval(world, expr)?;
                self.write_var(*var, v, t);
                Ok(AtomOutcome::Done)
            }
            Stmt::Store {
                array,
                index,
                value,
            } => {
                let (vi, ti) = self.eval(world, index)?;
                let (vv, tv) = self.eval(world, value)?;
                world.store(self.tid, *array, vi.as_i64()?, vv, ti.max(tv))?;
                Ok(AtomOutcome::Done)
            }
            Stmt::AtomicRmw {
                op,
                array,
                index,
                value,
                old,
            } => {
                let (vi, ti) = self.eval(world, index)?;
                let (vv, tv) = self.eval(world, value)?;
                let (prev, t) =
                    world.atomic_rmw(self.tid, *op, *array, vi.as_i64()?, vv, ti.max(tv))?;
                if let Some(o) = old {
                    self.write_var(*o, prev, t);
                }
                Ok(AtomOutcome::Done)
            }
            Stmt::Enq { queue, value } => {
                let (v, t) = match self.pending_enq.take() {
                    Some(p) => p,
                    None => self.eval(world, value)?,
                };
                match world.try_enq(self.tid, *queue, v, t)? {
                    Some(_t_done) => Ok(AtomOutcome::Done),
                    None => {
                        self.pending_enq = Some((v, t));
                        Ok(AtomOutcome::Blocked(BlockReason::QueueFull(*queue)))
                    }
                }
            }
            Stmt::EnqSel {
                queues,
                select,
                value,
            } => {
                let (v, t, qsel) = match self.pending_enq_sel.take() {
                    Some(p) => p,
                    None => {
                        let (sv, st) = self.eval(world, select)?;
                        let (v, vt) = self.eval(world, value)?;
                        let n = queues.len() as i64;
                        let idx = sv.as_i64()?.rem_euclid(n) as usize;
                        // Selecting the queue costs one ALU op.
                        let t_sel = world.uop(self.tid, UopClass::IntAlu, st);
                        (v, vt.max(t_sel), queues[idx])
                    }
                };
                match world.try_enq(self.tid, qsel, v, t)? {
                    Some(_) => Ok(AtomOutcome::Done),
                    None => {
                        self.pending_enq_sel = Some((v, t, qsel));
                        Ok(AtomOutcome::Blocked(BlockReason::QueueFull(qsel)))
                    }
                }
            }
            Stmt::EnqCtrl { queue, ctrl } => {
                match world.try_enq(self.tid, *queue, Value::Ctrl(*ctrl), self.flow_time)? {
                    Some(_) => Ok(AtomOutcome::Done),
                    None => Ok(AtomOutcome::Blocked(BlockReason::QueueFull(*queue))),
                }
            }
            Stmt::Deq { var, queue } => match world.try_deq(self.tid, *queue, self.flow_time)? {
                None => Ok(AtomOutcome::Blocked(BlockReason::QueueEmpty(*queue))),
                Some((w, t)) => {
                    if let Value::Ctrl(tag) = w {
                        if let Some(h) = self.find_handler(*queue, tag) {
                            let t_jump = world.uop(self.tid, UopClass::CtrlJump, t);
                            world.note_ctrl_handler(self.tid, *queue, tag, t_jump);
                            self.flow_time = self.flow_time.max(t_jump);
                            if let Some(bind) = h.bind {
                                self.write_var(bind, w, t_jump);
                            }
                            self.frames.push(Frame::HandlerEnd { end: h.end });
                            if !h.body.is_empty() {
                                self.frames.push(Frame::Seq {
                                    stmts: &h.body,
                                    idx: 0,
                                });
                            }
                            return Ok(AtomOutcome::Dispatched);
                        }
                    }
                    self.write_var(*var, w, t);
                    Ok(AtomOutcome::Done)
                }
            },
            other => Err(Trap::Malformed(format!(
                "compound statement in atom position: {other:?}"
            ))),
        }
    }
}

enum AtomOutcome {
    Done,
    Blocked(BlockReason),
    Dispatched,
}

/// Common interface over the stage-program execution engines
/// ([`StepInterp`] and [`crate::flat::FlatInterp`]): exactly the surface
/// a scheduler needs to time-multiplex stages.
///
/// Both implementations guarantee the same [`World`] call sequence for
/// the same program, so a scheduler generic over `StageExec` produces
/// bit-identical simulated timing with either engine.
pub trait StageExec {
    /// Executes one atom. See [`StepResult`] for outcomes.
    ///
    /// # Errors
    /// Propagates runtime traps (bounds, control-value misuse, budget).
    fn step<W: World + ?Sized>(&mut self, world: &mut W) -> Result<StepResult, Trap>;

    /// True once the stage program has terminated.
    fn is_finished(&self) -> bool;

    /// Name of the stage (diagnostics).
    fn name(&self) -> &str;

    /// Atoms executed so far. Both engines count the identical atom
    /// sequence, so this is an engine-independent measure of how far a
    /// stage program has run — usable for deterministic fault triggers
    /// and diagnostics snapshots.
    fn steps(&self) -> u64;

    /// Runs up to `max` progress-making steps, stopping early if the
    /// thread blocks or finishes; returns the number of atoms executed
    /// and the stop condition (`Blocked(BlockReason::Budget)` when the
    /// slice was exhausted with the thread still runnable). This is the
    /// scheduler's time-slice primitive.
    ///
    /// # Errors
    /// Propagates runtime traps (bounds, control-value misuse, budget).
    fn run_slice<W: World + ?Sized>(
        &mut self,
        world: &mut W,
        max: u32,
    ) -> Result<(u32, StepResult), Trap> {
        let mut n = 0;
        loop {
            match self.step(world)? {
                StepResult::Progress => {
                    n += 1;
                    if n >= max {
                        return Ok((n, StepResult::Blocked(BlockReason::Budget)));
                    }
                }
                StepResult::Blocked(b) => return Ok((n, StepResult::Blocked(b))),
                StepResult::Finished => return Ok((n, StepResult::Finished)),
            }
        }
    }
}

impl StageExec for StepInterp<'_> {
    fn step<W: World + ?Sized>(&mut self, world: &mut W) -> Result<StepResult, Trap> {
        StepInterp::step(self, world)
    }

    fn is_finished(&self) -> bool {
        StepInterp::is_finished(self)
    }

    fn name(&self) -> &str {
        StepInterp::name(self)
    }

    fn steps(&self) -> u64 {
        StepInterp::steps(self)
    }
}

impl StageExec for crate::flat::FlatInterp<'_> {
    fn step<W: World + ?Sized>(&mut self, world: &mut W) -> Result<StepResult, Trap> {
        crate::flat::FlatInterp::step(self, world)
    }

    fn run_slice<W: World + ?Sized>(
        &mut self,
        world: &mut W,
        max: u32,
    ) -> Result<(u32, StepResult), Trap> {
        // The fused dispatch loop: locals across the whole slice.
        crate::flat::FlatInterp::run_slice(self, world, max)
    }

    fn is_finished(&self) -> bool {
        crate::flat::FlatInterp::is_finished(self)
    }

    fn name(&self) -> &str {
        crate::flat::FlatInterp::name(self)
    }

    fn steps(&self) -> u64 {
        crate::flat::FlatInterp::steps(self)
    }
}

/// Resolves named parameter bindings against a function's declarations.
///
/// Unknown names are ignored (a pipeline's stages each keep only the
/// parameters they use), and only the function's declared params are
/// bound.
pub fn bind_params(func: &Function, named: &[(&str, Value)]) -> Vec<(VarId, Value)> {
    let mut out = Vec::new();
    for p in &func.params {
        let name = &func.vars[p.0 as usize].name;
        if let Some((_, v)) = named.iter().find(|(n, _)| n == name) {
            out.push((*p, *v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::expr::Expr;
    use crate::mem::MemState;
    use crate::value::BinOp;
    use crate::world::FunctionalWorld;

    fn run_to_end(interp: &mut StepInterp<'_>, world: &mut FunctionalWorld) {
        loop {
            match interp.step(world).expect("no trap") {
                StepResult::Finished => break,
                StepResult::Progress => {}
                StepResult::Blocked(b) => panic!("unexpected block: {b:?}"),
            }
        }
    }

    #[test]
    fn sum_loop() {
        // sum = 0; for i in 0..10 { sum += i }
        let mut b = FunctionBuilder::new("sum");
        let sum = b.var_i64("sum");
        let i = b.var_i64("i");
        b.assign(sum, Expr::i64(0));
        b.for_loop(i, Expr::i64(0), Expr::i64(10), |b| {
            b.assign(sum, Expr::bin(BinOp::Add, Expr::var(sum), Expr::var(i)));
        });
        let f = b.build();
        f.validate().unwrap();
        let mut world = FunctionalWorld::new(MemState::new(), 0, 0, 1);
        let spec = StageSpec {
            func: &f,
            handlers: &[],
        };
        let mut interp = StepInterp::new(spec, Tid(0), &[]);
        run_to_end(&mut interp, &mut world);
        assert_eq!(interp.var(sum), Value::I64(45));
    }

    #[test]
    fn nested_break() {
        // found = -1; for i in 0..5 { for j in 0..5 { if i*5+j == 7 { found = j; break 2 } } }
        let mut b = FunctionBuilder::new("find");
        let found = b.var_i64("found");
        let i = b.var_i64("i");
        let j = b.var_i64("j");
        b.assign(found, Expr::i64(-1));
        b.for_loop(i, Expr::i64(0), Expr::i64(5), |b| {
            b.for_loop(j, Expr::i64(0), Expr::i64(5), |b| {
                let cond = Expr::eq(
                    Expr::add(Expr::mul(Expr::var(i), Expr::i64(5)), Expr::var(j)),
                    Expr::i64(7),
                );
                b.if_then(cond, |b| {
                    b.assign(found, Expr::var(j));
                    b.break_out(2);
                });
            });
        });
        let f = b.build();
        f.validate().unwrap();
        let mut world = FunctionalWorld::new(MemState::new(), 0, 0, 1);
        let mut interp = StepInterp::new(
            StageSpec {
                func: &f,
                handlers: &[],
            },
            Tid(0),
            &[],
        );
        run_to_end(&mut interp, &mut world);
        assert_eq!(interp.var(found), Value::I64(2));
    }

    #[test]
    fn enq_blocks_on_full_queue_and_resumes() {
        let mut b = FunctionBuilder::new("producer");
        let i = b.var_i64("i");
        let q = QueueId(0);
        b.for_loop(i, Expr::i64(0), Expr::i64(4), |b| {
            b.enq(q, Expr::var(i));
        });
        let f = b.build();
        let mut world = FunctionalWorld::new(MemState::new(), 1, 2, 1);
        let mut interp = StepInterp::new(
            StageSpec {
                func: &f,
                handlers: &[],
            },
            Tid(0),
            &[],
        );
        let mut blocked = false;
        loop {
            match interp.step(&mut world).unwrap() {
                StepResult::Blocked(BlockReason::QueueFull(qq)) => {
                    assert_eq!(qq, q);
                    blocked = true;
                    // Drain one element and retry.
                    let (v, _) = world.try_deq(Tid(1), q, 0).unwrap().unwrap();
                    assert!(matches!(v, Value::I64(_)));
                }
                StepResult::Blocked(other) => panic!("unexpected block: {other:?}"),
                StepResult::Finished => break,
                StepResult::Progress => {}
            }
        }
        assert!(blocked, "capacity-2 queue must block a 4-element producer");
    }

    #[test]
    fn budget_trap() {
        let mut b = FunctionBuilder::new("spin");
        let x = b.var_i64("x");
        b.while_loop(Expr::i64(1), |b| {
            b.assign(x, Expr::add(Expr::var(x), Expr::i64(1)));
        });
        let f = b.build();
        let mut world = FunctionalWorld::new(MemState::new(), 0, 0, 1);
        let mut interp = StepInterp::new(
            StageSpec {
                func: &f,
                handlers: &[],
            },
            Tid(0),
            &[],
        )
        .with_budget(100);
        let err = loop {
            match interp.step(&mut world) {
                Ok(_) => {}
                Err(e) => break e,
            }
        };
        assert!(matches!(err, Trap::OpBudgetExceeded(100)));
    }

    #[test]
    fn ctrl_handler_breaks_inner_loop() {
        // Consumer: while(true) { deq x; sum += x }  with handler on CV 7 -> break 1
        // enclosing... here the deq's enclosing loop is the while; handler breaks it.
        let qin = QueueId(0);
        let mut b = FunctionBuilder::new("consumer");
        let x = b.var_i64("x");
        let sum = b.var_i64("sum");
        b.while_loop(Expr::i64(1), |b| {
            b.deq(x, qin);
            b.assign(sum, Expr::add(Expr::var(sum), Expr::var(x)));
        });
        let f = b.build();
        let handlers = vec![CtrlHandler {
            queue: qin,
            ctrl: Some(7),
            bind: None,
            body: vec![],
            end: HandlerEnd::BreakLoops(1),
        }];
        let mut world = FunctionalWorld::new(MemState::new(), 1, 8, 2);
        for v in [1, 2, 3] {
            world.try_enq(Tid(1), qin, Value::I64(v), 0).unwrap();
        }
        world.try_enq(Tid(1), qin, Value::Ctrl(7), 0).unwrap();
        let mut interp = StepInterp::new(
            StageSpec {
                func: &f,
                handlers: &handlers,
            },
            Tid(0),
            &[],
        );
        loop {
            match interp.step(&mut world).unwrap() {
                StepResult::Finished => break,
                StepResult::Progress => {}
                StepResult::Blocked(_) => panic!("should not block"),
            }
        }
        assert_eq!(interp.var(sum), Value::I64(6));
    }

    #[test]
    fn deq_without_handler_delivers_ctrl_value() {
        let qin = QueueId(0);
        let mut b = FunctionBuilder::new("consumer");
        let x = b.var_i64("x");
        let saw = b.var_i64("saw_ctrl");
        b.deq(x, qin);
        b.assign(saw, Expr::is_ctrl(Expr::var(x)));
        let f = b.build();
        let mut world = FunctionalWorld::new(MemState::new(), 1, 8, 2);
        world.try_enq(Tid(1), qin, Value::Ctrl(3), 0).unwrap();
        let mut interp = StepInterp::new(
            StageSpec {
                func: &f,
                handlers: &[],
            },
            Tid(0),
            &[],
        );
        while !matches!(interp.step(&mut world).unwrap(), StepResult::Finished) {}
        assert_eq!(interp.var(saw), Value::I64(1));
    }
}
