//! The flat bytecode interpreter.
//!
//! [`FlatInterp`] executes a [`BytecodeProgram`] (see [`crate::bytecode`])
//! with a program counter and a flat register file instead of the
//! [`crate::StepInterp`] frame stack. It makes exactly the same
//! [`World`] calls in the same order with the same arguments as the tree
//! interpreter would for the same program, so simulated cycles,
//! statistics, and memory state are bit-identical across engines — a
//! property pinned by differential tests. Only host-side work differs:
//! no frame-stack push/pop per atom, no recursive expression walk, no
//! statement dispatch on the structured AST.
//!
//! The hot entry point is [`FlatInterp::run_slice`]: it executes a whole
//! scheduler slice inside a single dispatch loop, keeping the program
//! counter, control-flow time, and step counter in locals across atoms
//! (the tree interpreter re-enters its frame machinery per atom).
//! Interpreter state is written back once per slice, not once per atom.
//!
//! Step accounting matches the tree interpreter exactly: every
//! *committed* atom counts against the budget (plus the final step that
//! discovers termination), blocked retries are un-counted so the step
//! counter is scheduler-independent, and a program with an empty body is
//! born finished.

use crate::bytecode::{BytecodeProgram, Instr, Opd};
use crate::expr::{QueueId, VarId};
use crate::stmt::HandlerEnd;
use crate::value::{eval_binop, eval_unop, Trap, Value};
use crate::world::{BlockReason, StepResult, Tid, Time, UopClass, World};

/// One register slot: a value and its readiness time, kept adjacent so
/// the common read-value-and-time access touches one location.
#[derive(Clone, Copy, Debug)]
struct Slot {
    v: Value,
    t: Time,
}

/// Program-counter interpreter for one compiled stage program.
pub struct FlatInterp<'p> {
    prog: &'p BytecodeProgram,
    tid: Tid,
    /// Register file: variables (slots `0..nvars`), then temporaries and
    /// loop state.
    slots: Vec<Slot>,
    flow_time: Time,
    pc: u32,
    /// Dispatch records: the pc of the dequeue instruction that jumped
    /// into each currently-active handler.
    ret_stack: Vec<u32>,
    finished: bool,
    /// A select-enqueue whose queue choice has been made (and its
    /// select micro-op issued) but whose enqueue is still blocked.
    pending_enq_sel: Option<(Value, Time, QueueId)>,
    steps: u64,
    budget: u64,
}

impl<'p> FlatInterp<'p> {
    /// Creates an interpreter for a compiled stage program running as
    /// hardware thread `tid`, with the given parameter bindings.
    ///
    /// # Panics
    /// Panics if a parameter id is out of range (call
    /// [`crate::Function::validate`] before compiling).
    pub fn new(prog: &'p BytecodeProgram, tid: Tid, params: &[(VarId, Value)]) -> FlatInterp<'p> {
        let nslots = prog.nslots as usize;
        let mut slots = vec![
            Slot {
                v: Value::I64(0),
                t: 0
            };
            nslots
        ];
        for (slot, zero) in slots.iter_mut().zip(&prog.var_zero) {
            slot.v = *zero;
        }
        for (var, val) in params {
            assert!(var.0 < prog.nvars, "param id {} out of range", var.0);
            slots[var.0 as usize].v = *val;
        }
        FlatInterp {
            prog,
            tid,
            slots,
            flow_time: 0,
            pc: 0,
            ret_stack: Vec::new(),
            finished: prog.body_empty,
            pending_enq_sel: None,
            steps: 0,
            budget: u64::MAX,
        }
    }

    /// Limits the number of interpreter steps (guards against runaway
    /// loops in generated code); exceeding it traps.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// True once the stage program has terminated.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Committed atoms executed so far. Blocked attempts are not
    /// counted, so the value is identical across engines *and*
    /// schedulers (the polling scheduler re-polls blocked threads; the
    /// event-driven one parks them).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Name of the stage (diagnostics).
    pub fn name(&self) -> &str {
        self.prog.name()
    }

    /// Current value of a variable (for reading scalar results).
    pub fn var(&self, v: VarId) -> Value {
        self.slots[v.0 as usize].v
    }

    /// The thread's control-flow readiness time (diagnostics).
    pub fn flow_time(&self) -> Time {
        self.flow_time
    }

    /// Reads an operand with the tree interpreter's timing rules.
    /// `flow` is the caller's (local) control-flow time.
    #[inline]
    fn read(&self, o: Opd, flow: Time) -> (Value, Time) {
        match o {
            Opd::Const(i) => (self.prog.consts[i as usize], flow),
            Opd::Var(i) => {
                let s = self.slots[i as usize];
                (s.v, s.t.max(flow))
            }
            Opd::Tmp(i) => {
                let s = self.slots[i as usize];
                (s.v, s.t)
            }
        }
    }

    #[inline]
    fn set(&mut self, slot: u32, v: Value, t: Time) {
        self.slots[slot as usize] = Slot { v, t };
    }

    /// Resolves a handler's `break N` relative to the dispatching
    /// dequeue site, mirroring the tree interpreter's `pop_loops`;
    /// returns the pc to continue at.
    fn break_target(&self, deq_pc: u32, levels: u32) -> Result<u32, Trap> {
        if levels == 0 {
            return Ok(deq_pc);
        }
        let Instr::Deq { breaks, .. } = &self.prog.code[deq_pc as usize] else {
            unreachable!("dispatch record points at a non-deq instruction");
        };
        match breaks.get(levels as usize - 1) {
            Some(t) => Ok(*t),
            None => Err(Trap::Malformed(format!(
                "break {levels} crosses a handler or function boundary"
            ))),
        }
    }

    /// Executes one atom: runs free instructions until an atom-ending
    /// instruction completes (or blocks). See [`StepResult`].
    ///
    /// # Errors
    /// Propagates runtime traps (bounds, control-value misuse, budget).
    pub fn step<W: World + ?Sized>(&mut self, world: &mut W) -> Result<StepResult, Trap> {
        match self.run_slice(world, 1)? {
            (_, StepResult::Blocked(BlockReason::Budget)) => Ok(StepResult::Progress),
            (_, r) => Ok(r),
        }
    }

    /// Runs up to `max` progress-making atoms in one dispatch-loop
    /// activation, stopping early if the thread blocks or finishes;
    /// returns the number of atoms executed and the stop condition
    /// (`Blocked(BlockReason::Budget)` when the slice was exhausted with
    /// the thread still runnable). The [`World`] call sequence is
    /// exactly what `max` consecutive [`Self::step`] calls would make.
    ///
    /// # Errors
    /// Propagates runtime traps (bounds, control-value misuse, budget).
    pub fn run_slice<W: World + ?Sized>(
        &mut self,
        world: &mut W,
        max: u32,
    ) -> Result<(u32, StepResult), Trap> {
        if self.finished {
            return Ok((0, StepResult::Finished));
        }
        let prog = self.prog;
        let tid = self.tid;
        let mut pc = self.pc;
        let mut flow = self.flow_time;
        let mut steps = self.steps;
        let mut n: u32 = 0;
        let result = 'slice: loop {
            steps += 1;
            if steps > self.budget {
                self.pc = pc;
                self.flow_time = flow;
                self.steps = steps;
                return Err(Trap::OpBudgetExceeded(self.budget));
            }
            // One atom: free instructions fall through; an atom-ending
            // instruction `break`s (progress) or `break 'slice`s
            // (blocked / finished).
            loop {
                match &prog.code[pc as usize] {
                    // ----- free instructions: fall through in the atom -----
                    Instr::Un { op, a, dst } => {
                        let (op, a, dst) = (*op, *a, *dst);
                        let (va, ta) = self.read(a, flow);
                        let res = eval_unop(op, va)?;
                        let class = if matches!(va, Value::F64(_)) {
                            UopClass::FpAlu
                        } else {
                            UopClass::IntAlu
                        };
                        let t = world.uop(tid, class, ta);
                        self.set(dst, res, t);
                        pc += 1;
                    }
                    Instr::Bin { op, a, b, dst } => {
                        let (op, a, b, dst) = (*op, *a, *b, *dst);
                        let (va, ta) = self.read(a, flow);
                        let (vb, tb) = self.read(b, flow);
                        let res = eval_binop(op, va, vb)?;
                        let class = UopClass::for_binop(op, va, vb);
                        let t = world.uop(tid, class, ta.max(tb));
                        self.set(dst, res, t);
                        pc += 1;
                    }
                    Instr::Load { array, index, dst } => {
                        let (array, index, dst) = (*array, *index, *dst);
                        let (vi, ti) = self.read(index, flow);
                        let idx = vi.as_i64()?;
                        let (v, t) = world.load(tid, array, idx, ti)?;
                        self.set(dst, v, t);
                        pc += 1;
                    }
                    Instr::Jump(target) => {
                        pc = *target;
                    }
                    Instr::ForEnter {
                        start,
                        end,
                        cur,
                        lim,
                    } => {
                        let (start, end, cur, lim) = (*start, *end, *cur, *lim);
                        let (vs, ts) = self.read(start, flow);
                        let (ve, te) = self.read(end, flow);
                        let c = vs.as_i64()?;
                        let l = ve.as_i64()?;
                        self.set(cur, Value::I64(c), ts);
                        self.set(lim, Value::I64(l), te);
                        pc += 1;
                    }
                    // ----- atom-ending instructions -----
                    Instr::Assign { var, src } => {
                        let (var, src) = (*var, *src);
                        let (v, t) = self.read(src, flow);
                        self.set(var, v, t);
                        pc += 1;
                        break;
                    }
                    Instr::UnA { op, a, var } => {
                        let (op, a, var) = (*op, *a, *var);
                        let (va, ta) = self.read(a, flow);
                        let res = eval_unop(op, va)?;
                        let class = if matches!(va, Value::F64(_)) {
                            UopClass::FpAlu
                        } else {
                            UopClass::IntAlu
                        };
                        let t = world.uop(tid, class, ta);
                        self.set(var, res, t);
                        pc += 1;
                        break;
                    }
                    Instr::BinA { op, a, b, var } => {
                        let (op, a, b, var) = (*op, *a, *b, *var);
                        let (va, ta) = self.read(a, flow);
                        let (vb, tb) = self.read(b, flow);
                        let res = eval_binop(op, va, vb)?;
                        let class = UopClass::for_binop(op, va, vb);
                        let t = world.uop(tid, class, ta.max(tb));
                        self.set(var, res, t);
                        pc += 1;
                        break;
                    }
                    Instr::LoadA { array, index, var } => {
                        let (array, index, var) = (*array, *index, *var);
                        let (vi, ti) = self.read(index, flow);
                        let idx = vi.as_i64()?;
                        let (v, t) = world.load(tid, array, idx, ti)?;
                        self.set(var, v, t);
                        pc += 1;
                        break;
                    }
                    Instr::Store {
                        array,
                        index,
                        value,
                    } => {
                        let (array, index, value) = (*array, *index, *value);
                        let (vi, ti) = self.read(index, flow);
                        let (vv, tv) = self.read(value, flow);
                        world.store(tid, array, vi.as_i64()?, vv, ti.max(tv))?;
                        pc += 1;
                        break;
                    }
                    Instr::AtomicRmw {
                        op,
                        array,
                        index,
                        value,
                        old,
                    } => {
                        let (op, array, index, value, old) = (*op, *array, *index, *value, *old);
                        let (vi, ti) = self.read(index, flow);
                        let (vv, tv) = self.read(value, flow);
                        let (prev, t) =
                            world.atomic_rmw(tid, op, array, vi.as_i64()?, vv, ti.max(tv))?;
                        if let Some(o) = old {
                            self.set(o, prev, t);
                        }
                        pc += 1;
                        break;
                    }
                    Instr::Enq { queue, value } => {
                        let (queue, value) = (*queue, *value);
                        // Re-reading the operand on a blocked retry is
                        // pure: its micro-ops ran before this instruction
                        // and the registers are untouched while blocked.
                        let (v, t) = self.read(value, flow);
                        match world.try_enq(tid, queue, v, t)? {
                            Some(_) => {
                                pc += 1;
                                break;
                            }
                            None => {
                                break 'slice (
                                    n,
                                    StepResult::Blocked(BlockReason::QueueFull(queue)),
                                );
                            }
                        }
                    }
                    Instr::EnqSel {
                        queues,
                        select,
                        value,
                    } => {
                        let (v, t, qsel) = match self.pending_enq_sel.take() {
                            Some(p) => p,
                            None => {
                                let (sv, st) = self.read(*select, flow);
                                let (v, vt) = self.read(*value, flow);
                                let count = queues.len() as i64;
                                let idx = sv.as_i64()?.rem_euclid(count) as usize;
                                // Selecting the queue costs one ALU op.
                                let t_sel = world.uop(tid, UopClass::IntAlu, st);
                                (v, vt.max(t_sel), queues[idx])
                            }
                        };
                        match world.try_enq(tid, qsel, v, t)? {
                            Some(_) => {
                                pc += 1;
                                break;
                            }
                            None => {
                                self.pending_enq_sel = Some((v, t, qsel));
                                break 'slice (
                                    n,
                                    StepResult::Blocked(BlockReason::QueueFull(qsel)),
                                );
                            }
                        }
                    }
                    Instr::EnqCtrl { queue, ctrl } => {
                        let (queue, ctrl) = (*queue, *ctrl);
                        match world.try_enq(tid, queue, Value::Ctrl(ctrl), flow)? {
                            Some(_) => {
                                pc += 1;
                                break;
                            }
                            None => {
                                break 'slice (
                                    n,
                                    StepResult::Blocked(BlockReason::QueueFull(queue)),
                                );
                            }
                        }
                    }
                    Instr::Deq { var, queue, .. } => {
                        let (var, queue) = (*var, *queue);
                        match world.try_deq(tid, queue, flow)? {
                            None => {
                                break 'slice (
                                    n,
                                    StepResult::Blocked(BlockReason::QueueEmpty(queue)),
                                );
                            }
                            Some((w, t)) => {
                                if let Value::Ctrl(tag) = w {
                                    if let Some(h) = prog.find_handler(queue, tag) {
                                        let t_jump = world.uop(tid, UopClass::CtrlJump, t);
                                        world.note_ctrl_handler(tid, queue, tag, t_jump);
                                        flow = flow.max(t_jump);
                                        if let Some(bind) = h.bind {
                                            self.set(bind, w, t_jump);
                                        }
                                        // The pc stays on the deq in the
                                        // record: Resume retries it.
                                        self.ret_stack.push(pc);
                                        pc = h.entry;
                                        break;
                                    }
                                }
                                self.set(var, w, t);
                                pc += 1;
                                break;
                            }
                        }
                    }
                    Instr::IfBranch { id, cond, else_t } => {
                        let (id, cond, else_t) = (*id, *cond, *else_t);
                        let (v, t) = self.read(cond, flow);
                        let taken = v.as_bool()?;
                        let resume = world.branch(tid, id, taken, t);
                        flow = flow.max(resume);
                        pc = if taken { pc + 1 } else { else_t };
                        break;
                    }
                    Instr::WhileBranch { id, cond, exit } => {
                        let (id, cond, exit) = (*id, *cond, *exit);
                        let (v, t) = self.read(cond, flow);
                        let taken = v.as_bool()?;
                        let resume = world.branch(tid, id, taken, t);
                        flow = flow.max(resume);
                        pc = if taken { pc + 1 } else { exit };
                        break;
                    }
                    Instr::BinIf {
                        op,
                        a,
                        b,
                        id,
                        else_t,
                    } => {
                        let (op, a, b, id, else_t) = (*op, *a, *b, *id, *else_t);
                        let (va, ta) = self.read(a, flow);
                        let (vb, tb) = self.read(b, flow);
                        let res = eval_binop(op, va, vb)?;
                        let class = UopClass::for_binop(op, va, vb);
                        let t_cmp = world.uop(tid, class, ta.max(tb));
                        let taken = res.as_bool()?;
                        let resume = world.branch(tid, id, taken, t_cmp);
                        flow = flow.max(resume);
                        pc = if taken { pc + 1 } else { else_t };
                        break;
                    }
                    Instr::BinWhile { op, a, b, id, exit } => {
                        let (op, a, b, id, exit) = (*op, *a, *b, *id, *exit);
                        let (va, ta) = self.read(a, flow);
                        let (vb, tb) = self.read(b, flow);
                        let res = eval_binop(op, va, vb)?;
                        let class = UopClass::for_binop(op, va, vb);
                        let t_cmp = world.uop(tid, class, ta.max(tb));
                        let taken = res.as_bool()?;
                        let resume = world.branch(tid, id, taken, t_cmp);
                        flow = flow.max(resume);
                        pc = if taken { pc + 1 } else { exit };
                        break;
                    }
                    Instr::ForTest {
                        id,
                        var,
                        cur,
                        lim,
                        exit,
                    } => {
                        let (id, var, cur, lim, exit) = (*id, *var, *cur, *lim, *exit);
                        let body = pc + 1;
                        pc = self.for_test(world, id, var, cur, lim, body, exit, &mut flow)?;
                        break;
                    }
                    Instr::ForStep {
                        id,
                        var,
                        cur,
                        lim,
                        body,
                        exit,
                    } => {
                        let (id, var, cur, lim, body, exit) = (*id, *var, *cur, *lim, *body, *exit);
                        // Increment: a 1-cycle loop-carried dependence.
                        let t =
                            world.uop(tid, UopClass::IntAlu, self.slots[cur as usize].t.max(flow));
                        let c = self.slots[cur as usize].v.as_i64()? + 1;
                        self.set(cur, Value::I64(c), t);
                        pc = self.for_test(world, id, var, cur, lim, body, exit, &mut flow)?;
                        break;
                    }
                    Instr::BreakJump(target) => {
                        pc = *target;
                        break;
                    }
                    Instr::HandlerRet(end) => {
                        let end = *end;
                        let deq_pc = self
                            .ret_stack
                            .pop()
                            .expect("handler return without a dispatch record");
                        match end {
                            HandlerEnd::Resume => pc = deq_pc,
                            HandlerEnd::BreakLoops(levels) => {
                                pc = self.break_target(deq_pc, levels)?;
                            }
                            HandlerEnd::FinishStage => {
                                self.finished = true;
                                break 'slice (n, StepResult::Finished);
                            }
                            HandlerEnd::FinishWhen(var, target) => {
                                if self.slots[var.0 as usize].v.as_i64()? >= target {
                                    self.finished = true;
                                    break 'slice (n, StepResult::Finished);
                                }
                                pc = deq_pc;
                            }
                            HandlerEnd::BreakWhen(var, target, levels) => {
                                if self.slots[var.0 as usize].v.as_i64()? >= target {
                                    pc = self.break_target(deq_pc, levels)?;
                                } else {
                                    pc = deq_pc;
                                }
                            }
                        }
                        break;
                    }
                    Instr::Halt => {
                        self.finished = true;
                        break 'slice (n, StepResult::Finished);
                    }
                    Instr::Fault(msg) => {
                        return Err(Trap::Malformed(msg.to_string()));
                    }
                }
            }
            // The atom made progress.
            n += 1;
            if n >= max {
                break 'slice (n, StepResult::Blocked(BlockReason::Budget));
            }
        };
        if let (_, StepResult::Blocked(b)) = &result {
            if !matches!(b, BlockReason::Budget) {
                // A blocked attempt is not a committed atom: un-count it,
                // or `steps` would depend on how often the scheduler
                // re-polls a blocked thread. (A `Budget` stop follows a
                // completed atom, so its count stands.)
                steps -= 1;
            }
        }
        self.pc = pc;
        self.flow_time = flow;
        self.steps = steps;
        Ok(result)
    }

    /// The shared for-loop exit test + branch + induction-variable
    /// commit (the tail of both [`Instr::ForTest`] and
    /// [`Instr::ForStep`]); returns the pc to continue at.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn for_test<W: World + ?Sized>(
        &mut self,
        world: &mut W,
        id: crate::expr::BranchId,
        var: u32,
        cur: u32,
        lim: u32,
        body: u32,
        exit: u32,
        flow: &mut Time,
    ) -> Result<u32, Trap> {
        let cur_time = self.slots[cur as usize].t;
        let t_cmp = world.uop(
            self.tid,
            UopClass::IntAlu,
            cur_time.max(self.slots[lim as usize].t).max(*flow),
        );
        let c = self.slots[cur as usize].v.as_i64()?;
        let taken = c < self.slots[lim as usize].v.as_i64()?;
        let resume = world.branch(self.tid, id, taken, t_cmp);
        *flow = (*flow).max(resume);
        if taken {
            self.set(var, Value::I64(c), cur_time.max(*flow));
            Ok(body)
        } else {
            Ok(exit)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::bytecode::compile;
    use crate::expr::Expr;
    use crate::mem::MemState;
    use crate::stmt::CtrlHandler;
    use crate::value::BinOp;
    use crate::world::FunctionalWorld;

    fn run_to_end(interp: &mut FlatInterp<'_>, world: &mut FunctionalWorld) {
        loop {
            match interp.step(world).expect("no trap") {
                StepResult::Finished => break,
                StepResult::Progress => {}
                StepResult::Blocked(b) => panic!("unexpected block: {b:?}"),
            }
        }
    }

    #[test]
    fn sum_loop() {
        let mut b = FunctionBuilder::new("sum");
        let sum = b.var_i64("sum");
        let i = b.var_i64("i");
        b.assign(sum, Expr::i64(0));
        b.for_loop(i, Expr::i64(0), Expr::i64(10), |b| {
            b.assign(sum, Expr::bin(BinOp::Add, Expr::var(sum), Expr::var(i)));
        });
        let f = b.build();
        f.validate().unwrap();
        let prog = compile(&f, &[]).unwrap();
        let mut world = FunctionalWorld::new(MemState::new(), 0, 0, 1);
        let mut interp = FlatInterp::new(&prog, Tid(0), &[]);
        run_to_end(&mut interp, &mut world);
        assert_eq!(interp.var(sum), Value::I64(45));
    }

    #[test]
    fn nested_break() {
        let mut b = FunctionBuilder::new("find");
        let found = b.var_i64("found");
        let i = b.var_i64("i");
        let j = b.var_i64("j");
        b.assign(found, Expr::i64(-1));
        b.for_loop(i, Expr::i64(0), Expr::i64(5), |b| {
            b.for_loop(j, Expr::i64(0), Expr::i64(5), |b| {
                let cond = Expr::eq(
                    Expr::add(Expr::mul(Expr::var(i), Expr::i64(5)), Expr::var(j)),
                    Expr::i64(7),
                );
                b.if_then(cond, |b| {
                    b.assign(found, Expr::var(j));
                    b.break_out(2);
                });
            });
        });
        let f = b.build();
        f.validate().unwrap();
        let prog = compile(&f, &[]).unwrap();
        let mut world = FunctionalWorld::new(MemState::new(), 0, 0, 1);
        let mut interp = FlatInterp::new(&prog, Tid(0), &[]);
        run_to_end(&mut interp, &mut world);
        assert_eq!(interp.var(found), Value::I64(2));
    }

    #[test]
    fn enq_blocks_on_full_queue_and_resumes() {
        let mut b = FunctionBuilder::new("producer");
        let i = b.var_i64("i");
        let q = QueueId(0);
        b.for_loop(i, Expr::i64(0), Expr::i64(4), |b| {
            b.enq(q, Expr::var(i));
        });
        let f = b.build();
        let prog = compile(&f, &[]).unwrap();
        let mut world = FunctionalWorld::new(MemState::new(), 1, 2, 1);
        let mut interp = FlatInterp::new(&prog, Tid(0), &[]);
        let mut blocked = false;
        loop {
            match interp.step(&mut world).unwrap() {
                StepResult::Blocked(BlockReason::QueueFull(qq)) => {
                    assert_eq!(qq, q);
                    blocked = true;
                    let (v, _) = world.try_deq(Tid(1), q, 0).unwrap().unwrap();
                    assert!(matches!(v, Value::I64(_)));
                }
                StepResult::Blocked(other) => panic!("unexpected block: {other:?}"),
                StepResult::Finished => break,
                StepResult::Progress => {}
            }
        }
        assert!(blocked, "capacity-2 queue must block a 4-element producer");
    }

    #[test]
    fn budget_trap() {
        let mut b = FunctionBuilder::new("spin");
        let x = b.var_i64("x");
        b.while_loop(Expr::i64(1), |b| {
            b.assign(x, Expr::add(Expr::var(x), Expr::i64(1)));
        });
        let f = b.build();
        let prog = compile(&f, &[]).unwrap();
        let mut world = FunctionalWorld::new(MemState::new(), 0, 0, 1);
        let mut interp = FlatInterp::new(&prog, Tid(0), &[]).with_budget(100);
        let err = loop {
            match interp.step(&mut world) {
                Ok(_) => {}
                Err(e) => break e,
            }
        };
        assert!(matches!(err, Trap::OpBudgetExceeded(100)));
    }

    #[test]
    fn slice_budget_trap_matches_stepwise_budget_trap() {
        // The fused slice loop must count budget steps exactly like
        // repeated single steps (including the trapping attempt).
        let mut b = FunctionBuilder::new("spin");
        let x = b.var_i64("x");
        b.while_loop(Expr::i64(1), |b| {
            b.assign(x, Expr::add(Expr::var(x), Expr::i64(1)));
        });
        let f = b.build();
        let prog = compile(&f, &[]).unwrap();
        let mut world = FunctionalWorld::new(MemState::new(), 0, 0, 1);
        let mut interp = FlatInterp::new(&prog, Tid(0), &[]).with_budget(100);
        let err = loop {
            match interp.run_slice(&mut world, 64) {
                Ok(_) => {}
                Err(e) => break e,
            }
        };
        assert!(matches!(err, Trap::OpBudgetExceeded(100)));
        assert_eq!(interp.steps(), 101);
    }

    #[test]
    fn ctrl_handler_breaks_inner_loop() {
        let qin = QueueId(0);
        let mut b = FunctionBuilder::new("consumer");
        let x = b.var_i64("x");
        let sum = b.var_i64("sum");
        b.while_loop(Expr::i64(1), |b| {
            b.deq(x, qin);
            b.assign(sum, Expr::add(Expr::var(sum), Expr::var(x)));
        });
        let f = b.build();
        let handlers = vec![CtrlHandler {
            queue: qin,
            ctrl: Some(7),
            bind: None,
            body: vec![],
            end: HandlerEnd::BreakLoops(1),
        }];
        let prog = compile(&f, &handlers).unwrap();
        let mut world = FunctionalWorld::new(MemState::new(), 1, 8, 2);
        for v in [1, 2, 3] {
            world.try_enq(Tid(1), qin, Value::I64(v), 0).unwrap();
        }
        world.try_enq(Tid(1), qin, Value::Ctrl(7), 0).unwrap();
        let mut interp = FlatInterp::new(&prog, Tid(0), &[]);
        loop {
            match interp.step(&mut world).unwrap() {
                StepResult::Finished => break,
                StepResult::Progress => {}
                StepResult::Blocked(_) => panic!("should not block"),
            }
        }
        assert_eq!(interp.var(sum), Value::I64(6));
    }

    #[test]
    fn deq_without_handler_delivers_ctrl_value() {
        let qin = QueueId(0);
        let mut b = FunctionBuilder::new("consumer");
        let x = b.var_i64("x");
        let saw = b.var_i64("saw_ctrl");
        b.deq(x, qin);
        b.assign(saw, Expr::is_ctrl(Expr::var(x)));
        let f = b.build();
        let prog = compile(&f, &[]).unwrap();
        let mut world = FunctionalWorld::new(MemState::new(), 1, 8, 2);
        world.try_enq(Tid(1), qin, Value::Ctrl(3), 0).unwrap();
        let mut interp = FlatInterp::new(&prog, Tid(0), &[]);
        while !matches!(interp.step(&mut world).unwrap(), StepResult::Finished) {}
        assert_eq!(interp.var(saw), Value::I64(1));
    }
}
