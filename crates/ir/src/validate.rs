//! Whole-pipeline validation: queue protocol, control-value discipline,
//! reference-accelerator liveness, placement budgets, and backward-slice
//! closure.
//!
//! [`Function::validate`](crate::Function::validate) checks one stage
//! program in isolation; this module checks the *pipeline* — the
//! invariants that Phloem's slicing passes must preserve but that no
//! single stage can see:
//!
//! * every referenced queue has exactly one consumer stage and (except
//!   across a `#pragma distribute` boundary, where routing enqueues and
//!   broadcast control values are fan-in by design) exactly one producer;
//! * enqueued and dequeued value kinds agree per queue;
//! * every queue on which a control value can arrive (computed by tag
//!   propagation through RA forwarding and handler re-enqueues) reaches
//!   a consumer that can react to it — a registered
//!   [`CtrlHandler`](crate::CtrlHandler) on that queue, or an inline
//!   `is_control` check when handlers are ablated — so a CV is never
//!   silently delivered into a data register;
//! * reference accelerators sit on live queues (a fed input, a drained
//!   output), so RA chains cannot silently stall;
//! * the per-core architectural queue budget holds after replication
//!   (queues reside with their consumer's core);
//! * backward-slice closure: no stage reads a register it neither
//!   defines, dequeues, nor receives as a parameter — the signature of a
//!   slicing pass that forgot to communicate a value.
//!
//! The validator runs after every compiler pass (and before simulation);
//! violations carry the name of the pass that introduced them, so a
//! miscompile bisects to a pass automatically.

use crate::expr::{Expr, QueueId, VarId};
use crate::pipeline::{Pipeline, RaMode, Stage, StageKind};
use crate::stmt::{HandlerEnd, Stmt};
use crate::value::{Ty, UnOp, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Hardware limits the validator checks placement against.
#[derive(Clone, Copy, Debug)]
pub struct ValidateLimits {
    /// Architectural queues available per core ("16 queues max").
    pub queues_per_core: u16,
}

impl Default for ValidateLimits {
    fn default() -> Self {
        ValidateLimits {
            queues_per_core: 16,
        }
    }
}

/// A pipeline-level invariant violation.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// A queue id at or beyond the pipeline's declared `num_queues`.
    QueueOutOfRange {
        /// The offending queue.
        queue: QueueId,
        /// Declared queue count.
        num_queues: u16,
    },
    /// A queue some stage enqueues into but no stage dequeues from.
    NoConsumer {
        /// The dangling queue.
        queue: QueueId,
        /// A stage that enqueues into it.
        producer: String,
    },
    /// A queue some stage dequeues from but no stage feeds.
    NoProducer {
        /// The starved queue.
        queue: QueueId,
        /// A stage that dequeues from it.
        consumer: String,
    },
    /// More than one stage dequeues from the same queue.
    MultipleConsumers {
        /// The shared queue.
        queue: QueueId,
        /// Names of all consuming stages.
        stages: Vec<String>,
    },
    /// More than one stage enqueues plain data into the same queue
    /// (fan-in is only legal for distribute-routing `EnqSel` and
    /// broadcast control values).
    MultipleProducers {
        /// The shared queue.
        queue: QueueId,
        /// Names of all producing stages.
        stages: Vec<String>,
    },
    /// Enqueue and dequeue ends of a queue disagree on the value kind.
    KindMismatch {
        /// The queue.
        queue: QueueId,
        /// Kind on the enqueue side.
        enq: Ty,
        /// Kind expected by the dequeue side.
        deq: Ty,
    },
    /// A control-value tag can arrive at a stage that neither registers
    /// a handler for it nor checks `is_control` inline.
    UnhandledCtrl {
        /// The consuming stage.
        stage: String,
        /// Queue the tag arrives on.
        queue: QueueId,
        /// The unhandled tag.
        tag: u32,
    },
    /// A reference accelerator whose input queue no stage feeds.
    RaDeadInput {
        /// The RA stage.
        stage: String,
        /// Its input queue.
        queue: QueueId,
    },
    /// A reference accelerator whose output queue no stage drains.
    RaDeadOutput {
        /// The RA stage.
        stage: String,
        /// Its output queue.
        queue: QueueId,
    },
    /// A core's resident queues exceed the architectural budget.
    QueueBudget {
        /// The oversubscribed core.
        core: usize,
        /// Queues resident on it.
        used: usize,
        /// The per-core budget.
        budget: u16,
    },
    /// A stage reads a register it neither defines, dequeues, nor
    /// receives as a parameter.
    UnboundRead {
        /// The reading stage.
        stage: String,
        /// The unbound register's name.
        var: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::QueueOutOfRange { queue, num_queues } => {
                write!(f, "q{} out of range (num_queues = {num_queues})", queue.0)
            }
            Violation::NoConsumer { queue, producer } => {
                write!(f, "q{} has no consumer (fed by `{producer}`)", queue.0)
            }
            Violation::NoProducer { queue, consumer } => {
                write!(f, "q{} has no producer (drained by `{consumer}`)", queue.0)
            }
            Violation::MultipleConsumers { queue, stages } => {
                write!(
                    f,
                    "q{} has {} consumers: {}",
                    queue.0,
                    stages.len(),
                    stages.join(", ")
                )
            }
            Violation::MultipleProducers { queue, stages } => {
                write!(
                    f,
                    "q{} has {} plain-enqueue producers (only EnqSel/ctrl fan-in is legal): {}",
                    queue.0,
                    stages.len(),
                    stages.join(", ")
                )
            }
            Violation::KindMismatch { queue, enq, deq } => {
                write!(f, "q{} carries {enq:?} but is dequeued as {deq:?}", queue.0)
            }
            Violation::UnhandledCtrl { stage, queue, tag } => {
                write!(
                    f,
                    "stage `{stage}` can receive ctrl tag {tag} on q{} but has no handler \
                     for it and no inline is_control check",
                    queue.0
                )
            }
            Violation::RaDeadInput { stage, queue } => {
                write!(f, "RA `{stage}`: input q{} is fed by no stage", queue.0)
            }
            Violation::RaDeadOutput { stage, queue } => {
                write!(
                    f,
                    "RA `{stage}`: output q{} is drained by no stage",
                    queue.0
                )
            }
            Violation::QueueBudget { core, used, budget } => {
                write!(f, "core {core} hosts {used} queues, budget is {budget}")
            }
            Violation::UnboundRead { stage, var } => {
                write!(
                    f,
                    "stage `{stage}` reads `{var}` but neither defines nor dequeues it"
                )
            }
        }
    }
}

/// A validation failure, tagged with the compiler pass (or tool phase)
/// that produced the pipeline.
#[derive(Clone, Debug, PartialEq)]
pub struct PipelineError {
    /// Name of the pass after which the violation was detected.
    pub pass: String,
    /// The invariant that does not hold.
    pub violation: Violation,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[after pass `{}`] {}", self.pass, self.violation)
    }
}

impl std::error::Error for PipelineError {}

/// Per-stage queue usage summary.
#[derive(Default)]
struct StageIo {
    /// Queues this stage enqueues plain data into (`Enq`).
    enq_plain: BTreeSet<QueueId>,
    /// Queues this stage enqueues into via any op (`Enq`/`EnqSel`/`EnqCtrl`).
    enq_any: BTreeSet<QueueId>,
    /// Data kind enqueued per queue, where statically known.
    enq_ty: BTreeMap<QueueId, Ty>,
    /// Queues dequeued (body `Deq` or a registered handler).
    deq: BTreeSet<QueueId>,
    /// Data kind dequeued into per queue (from the `Deq` target's decl).
    deq_ty: BTreeMap<QueueId, Ty>,
    /// Control tags enqueued per queue (`EnqCtrl`).
    ctrl_out: BTreeMap<QueueId, BTreeSet<u32>>,
    /// Whether the stage tests `is_control` inline anywhere.
    inline_ctrl_check: bool,
    /// Registers read / written (body + handlers).
    reads: BTreeSet<VarId>,
    writes: BTreeSet<VarId>,
}

fn expr_ty(stage: &Stage, e: &Expr) -> Option<Ty> {
    let func = &stage.program.func;
    match e {
        Expr::Const(Value::I64(_)) => Some(Ty::I64),
        Expr::Const(Value::F64(_)) => Some(Ty::F64),
        Expr::Const(Value::Ctrl(_)) => None,
        Expr::Var(v) => func.vars.get(v.0 as usize).map(|d| d.ty),
        Expr::Unary(op, a) => match op {
            UnOp::Neg => expr_ty(stage, a),
            UnOp::Not | UnOp::BitNot | UnOp::IsCtrl | UnOp::CtrlTag | UnOp::F2I => Some(Ty::I64),
            UnOp::I2F => Some(Ty::F64),
        },
        Expr::Binary(op, a, b) => {
            use crate::value::BinOp::*;
            match op {
                Lt | Le | Gt | Ge | Eq | Ne => Some(Ty::I64),
                _ => match (expr_ty(stage, a), expr_ty(stage, b)) {
                    (Some(Ty::F64), _) | (_, Some(Ty::F64)) => Some(Ty::F64),
                    (Some(Ty::I64), Some(Ty::I64)) => Some(Ty::I64),
                    _ => None,
                },
            }
        }
        Expr::Load { array, .. } => func.arrays.get(array.0 as usize).map(|d| d.ty),
    }
}

fn expr_reads(e: &Expr, out: &mut BTreeSet<VarId>, inline_ctrl: &mut bool) {
    match e {
        Expr::Const(_) => {}
        Expr::Var(v) => {
            out.insert(*v);
        }
        Expr::Unary(op, a) => {
            if *op == UnOp::IsCtrl {
                *inline_ctrl = true;
            }
            expr_reads(a, out, inline_ctrl);
        }
        Expr::Binary(_, a, b) => {
            expr_reads(a, out, inline_ctrl);
            expr_reads(b, out, inline_ctrl);
        }
        Expr::Load { index, .. } => expr_reads(index, out, inline_ctrl),
    }
}

fn scan_stmts(stage: &Stage, stmts: &[Stmt], io: &mut StageIo) {
    for s in stmts {
        s.for_each(&mut |s| {
            for r in s.header_reads() {
                io.reads.insert(r);
            }
            if let Some(w) = s.write() {
                io.writes.insert(w);
            }
            // `header_reads` already covers every expression position;
            // re-walk the same expressions only for the `is_control` scan.
            let mut scan_expr = |e: &Expr| {
                let mut sink = BTreeSet::new();
                expr_reads(e, &mut sink, &mut io.inline_ctrl_check);
            };
            match s {
                Stmt::Assign { expr, .. } => scan_expr(expr),
                Stmt::Store { index, value, .. } | Stmt::AtomicRmw { index, value, .. } => {
                    scan_expr(index);
                    scan_expr(value);
                }
                Stmt::If { cond, .. } | Stmt::While { cond, .. } => scan_expr(cond),
                Stmt::For { start, end, .. } => {
                    scan_expr(start);
                    scan_expr(end);
                }
                Stmt::Enq { queue, value } => {
                    io.enq_plain.insert(*queue);
                    io.enq_any.insert(*queue);
                    if let Some(ty) = expr_ty(stage, value) {
                        io.enq_ty.entry(*queue).or_insert(ty);
                    }
                    scan_expr(value);
                }
                Stmt::EnqSel {
                    queues,
                    select,
                    value,
                } => {
                    for q in queues {
                        io.enq_any.insert(*q);
                        if let Some(ty) = expr_ty(stage, value) {
                            io.enq_ty.entry(*q).or_insert(ty);
                        }
                    }
                    scan_expr(select);
                    scan_expr(value);
                }
                Stmt::EnqCtrl { queue, ctrl } => {
                    io.enq_any.insert(*queue);
                    io.ctrl_out.entry(*queue).or_default().insert(*ctrl);
                }
                Stmt::Deq { var, queue } => {
                    io.deq.insert(*queue);
                    if let Some(d) = stage.program.func.vars.get(var.0 as usize) {
                        io.deq_ty.entry(*queue).or_insert(d.ty);
                    }
                }
                Stmt::Break { .. } => {}
            }
        });
    }
}

fn stage_io(stage: &Stage) -> StageIo {
    let mut io = StageIo::default();
    scan_stmts(stage, &stage.program.func.body, &mut io);
    for h in &stage.program.handlers {
        io.deq.insert(h.queue);
        if let Some(b) = h.bind {
            io.writes.insert(b);
        }
        scan_stmts(stage, &h.body, &mut io);
        match h.end {
            HandlerEnd::FinishWhen(v, _) | HandlerEnd::BreakWhen(v, _, _) => {
                io.reads.insert(v);
            }
            _ => {}
        }
    }
    io
}

/// Static endpoints of one hardware queue: the stages that enqueue into
/// it and the single stage that dequeues from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueEndpoints {
    /// The queue these endpoints describe.
    pub queue: QueueId,
    /// Stage indices that enqueue via any op (`Enq`/`EnqSel`/`EnqCtrl`),
    /// in stage order. Validated pipelines have at least one.
    pub producers: Vec<usize>,
    /// The consuming stage index. Validated pipelines have exactly one
    /// consumer per queue; `None` only on unvalidated input.
    pub consumer: Option<usize>,
}

impl QueueEndpoints {
    /// Whether a single stage feeds this queue — the lock-free SPSC
    /// channel case. Fan-in queues (EnqSel distribute boundaries,
    /// broadcast control) return `false` and need a guarded send path.
    #[must_use]
    pub fn single_producer(&self) -> bool {
        self.producers.len() == 1
    }
}

/// Computes the producer/consumer endpoints of every queue referenced by
/// `pipeline`, in queue-id order, using the same static scan as the
/// validator. This is the channel-lowering map a physical backend keys
/// on: [`QueueEndpoints::single_producer`] queues lower to SPSC rings,
/// fan-in queues to a guarded multi-producer path, and `consumer` names
/// the one stage allowed to hold the receiving endpoint.
#[must_use]
pub fn queue_topology(pipeline: &Pipeline) -> Vec<QueueEndpoints> {
    let mut producers: BTreeMap<QueueId, Vec<usize>> = BTreeMap::new();
    let mut consumers: BTreeMap<QueueId, Vec<usize>> = BTreeMap::new();
    for (i, stage) in pipeline.stages.iter().enumerate() {
        let io = stage_io(stage);
        for &q in &io.enq_any {
            producers.entry(q).or_default().push(i);
        }
        for &q in &io.deq {
            consumers.entry(q).or_default().push(i);
        }
    }
    let ids: BTreeSet<QueueId> = producers.keys().chain(consumers.keys()).copied().collect();
    ids.into_iter()
        .map(|q| QueueEndpoints {
            queue: q,
            producers: producers.remove(&q).unwrap_or_default(),
            consumer: consumers.get(&q).and_then(|cs| cs.first().copied()),
        })
        .collect()
}

/// Validates pipeline-level invariants (see the module docs); `pass`
/// names the compiler pass (or tool phase) whose output is checked and
/// is reported in any [`PipelineError`].
///
/// # Errors
/// Returns the first violation found.
pub fn validate_pipeline(
    pipeline: &Pipeline,
    limits: &ValidateLimits,
    pass: &str,
) -> Result<(), PipelineError> {
    let err = |violation: Violation| PipelineError {
        pass: pass.to_string(),
        violation,
    };
    let name = |i: usize| pipeline.stages[i].program.func.name.clone();
    let ios: Vec<StageIo> = pipeline.stages.iter().map(stage_io).collect();

    // -- Queue discipline: range, one consumer, fan-in rules. ---------
    let mut producers: BTreeMap<QueueId, Vec<usize>> = BTreeMap::new();
    let mut plain_producers: BTreeMap<QueueId, Vec<usize>> = BTreeMap::new();
    let mut consumers: BTreeMap<QueueId, Vec<usize>> = BTreeMap::new();
    for (i, io) in ios.iter().enumerate() {
        for &q in io.enq_any.iter().chain(&io.deq) {
            if q.0 >= pipeline.num_queues {
                return Err(err(Violation::QueueOutOfRange {
                    queue: q,
                    num_queues: pipeline.num_queues,
                }));
            }
        }
        for &q in &io.enq_any {
            producers.entry(q).or_default().push(i);
        }
        for &q in &io.enq_plain {
            plain_producers.entry(q).or_default().push(i);
        }
        for &q in &io.deq {
            consumers.entry(q).or_default().push(i);
        }
    }
    for (&q, ps) in &producers {
        match consumers.get(&q).map(Vec::as_slice) {
            None | Some([]) => {
                return Err(err(Violation::NoConsumer {
                    queue: q,
                    producer: name(ps[0]),
                }));
            }
            Some([_]) => {}
            Some(cs) => {
                return Err(err(Violation::MultipleConsumers {
                    queue: q,
                    stages: cs.iter().map(|&i| name(i)).collect(),
                }));
            }
        }
    }
    for (&q, cs) in &consumers {
        if !producers.contains_key(&q) {
            return Err(err(Violation::NoProducer {
                queue: q,
                consumer: name(cs[0]),
            }));
        }
    }
    for (&q, ps) in &plain_producers {
        if ps.len() > 1 {
            return Err(err(Violation::MultipleProducers {
                queue: q,
                stages: ps.iter().map(|&i| name(i)).collect(),
            }));
        }
        // A plain enqueuer combined with other (EnqSel/ctrl) producers is
        // fine — that is exactly the distribute-boundary shape.
    }

    // -- Value-kind agreement per queue. ------------------------------
    for (&q, ps) in &producers {
        let mut enq_ty: Option<Ty> = None;
        for &p in ps {
            if let Some(&t) = ios[p].enq_ty.get(&q) {
                match enq_ty {
                    None => enq_ty = Some(t),
                    Some(prev) if prev != t => {
                        return Err(err(Violation::KindMismatch {
                            queue: q,
                            enq: prev,
                            deq: t,
                        }));
                    }
                    Some(_) => {}
                }
            }
        }
        if let (Some(et), Some(cs)) = (enq_ty, consumers.get(&q)) {
            for &c in cs {
                if let Some(&dt) = ios[c].deq_ty.get(&q) {
                    if dt != et {
                        return Err(err(Violation::KindMismatch {
                            queue: q,
                            enq: et,
                            deq: dt,
                        }));
                    }
                }
            }
        }
    }

    // -- Control-value tag propagation and handler coverage. ----------
    // Seed: explicit EnqCtrl sites, plus Scan RAs' end-of-range tag.
    let mut tags: BTreeMap<QueueId, BTreeSet<u32>> = BTreeMap::new();
    for (i, io) in ios.iter().enumerate() {
        for (&q, ts) in &io.ctrl_out {
            tags.entry(q).or_default().extend(ts);
        }
        if let StageKind::Ra(cfg) = &pipeline.stages[i].kind {
            if cfg.mode == RaMode::Scan {
                if let Some(t) = cfg.scan_end_ctrl {
                    tags.entry(cfg.out_queue).or_default().insert(t);
                }
            }
        }
    }
    // Fixpoint: RAs with `forward_ctrl` copy input tags to the output;
    // handlers whose body re-enqueues the bound CV forward the tags they
    // match (exact handlers their own tag, wildcards everything no exact
    // handler on the same stage+queue claims).
    loop {
        let mut changed = false;
        let mut add = |tags: &mut BTreeMap<QueueId, BTreeSet<u32>>, q: QueueId, t: u32| {
            if tags.entry(q).or_default().insert(t) {
                changed = true;
            }
        };
        for stage in &pipeline.stages {
            if let StageKind::Ra(cfg) = &stage.kind {
                if cfg.forward_ctrl {
                    let arriving: Vec<u32> = tags
                        .get(&cfg.in_queue)
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default();
                    for t in arriving {
                        add(&mut tags, cfg.out_queue, t);
                    }
                }
            }
            let exact: BTreeSet<(QueueId, u32)> = stage
                .program
                .handlers
                .iter()
                .filter_map(|h| h.ctrl.map(|t| (h.queue, t)))
                .collect();
            for h in &stage.program.handlers {
                let Some(bind) = h.bind else { continue };
                let forwards: Vec<QueueId> = h
                    .body
                    .iter()
                    .filter_map(|s| match s {
                        Stmt::Enq {
                            queue,
                            value: Expr::Var(v),
                        } if *v == bind => Some(*queue),
                        _ => None,
                    })
                    .collect();
                if forwards.is_empty() {
                    continue;
                }
                let arriving: Vec<u32> = tags
                    .get(&h.queue)
                    .map(|s| s.iter().copied().collect())
                    .unwrap_or_default();
                for t in arriving {
                    let matched = match h.ctrl {
                        Some(ht) => ht == t,
                        None => !exact.contains(&(h.queue, t)),
                    };
                    if matched {
                        for &q in &forwards {
                            add(&mut tags, q, t);
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    for (&q, ts) in &tags {
        let Some(cs) = consumers.get(&q) else {
            continue; // already reported as NoConsumer if enqueued
        };
        for &c in cs {
            let stage = &pipeline.stages[c];
            if ios[c].inline_ctrl_check {
                continue; // handler-ablated codegen checks is_control inline
            }
            // A CV arriving at a queue with *no* registered handler is
            // delivered straight into the dequeue's data register — the
            // silent-corruption case this check exists for. Queues with
            // at least one handler are exempt from tag-exact coverage:
            // Phloem's codegen deliberately leaves a trailing DONE
            // unconsumed when a stage terminates via another queue's
            // carrier, and whether an unmatched tag is ever dequeued is
            // a dynamic property (the differential harness covers it).
            let has_handler = stage.program.handlers.iter().any(|h| h.queue == q);
            if !has_handler {
                return Err(err(Violation::UnhandledCtrl {
                    stage: name(c),
                    queue: q,
                    tag: *ts.iter().next().expect("nonempty tag set"),
                }));
            }
        }
    }

    // -- RA chains reference live queues. ------------------------------
    for (i, stage) in pipeline.stages.iter().enumerate() {
        if let StageKind::Ra(cfg) = &stage.kind {
            if !producers
                .get(&cfg.in_queue)
                .is_some_and(|ps| ps.iter().any(|&p| p != i))
            {
                return Err(err(Violation::RaDeadInput {
                    stage: name(i),
                    queue: cfg.in_queue,
                }));
            }
            if !consumers
                .get(&cfg.out_queue)
                .is_some_and(|cs| cs.iter().any(|&c| c != i))
            {
                return Err(err(Violation::RaDeadOutput {
                    stage: name(i),
                    queue: cfg.out_queue,
                }));
            }
        }
    }

    // -- Per-core queue budget (queues reside with their consumer). ----
    let mut resident: BTreeMap<usize, BTreeSet<QueueId>> = BTreeMap::new();
    for (&q, cs) in &consumers {
        for &c in cs {
            resident
                .entry(pipeline.stages[c].core)
                .or_default()
                .insert(q);
        }
    }
    for (&core, qs) in &resident {
        if qs.len() > limits.queues_per_core as usize {
            return Err(err(Violation::QueueBudget {
                core,
                used: qs.len(),
                budget: limits.queues_per_core,
            }));
        }
    }

    // -- Backward-slice closure. ---------------------------------------
    for (i, io) in ios.iter().enumerate() {
        let func = &pipeline.stages[i].program.func;
        let params: BTreeSet<VarId> = func.params.iter().copied().collect();
        for &r in &io.reads {
            if !io.writes.contains(&r) && !params.contains(&r) {
                return Err(err(Violation::UnboundRead {
                    stage: name(i),
                    var: func
                        .vars
                        .get(r.0 as usize)
                        .map(|d| d.name.clone())
                        .unwrap_or_else(|| format!("{r:?}")),
                }));
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::pipeline::StageProgram;

    fn producer(q: QueueId) -> StageProgram {
        let mut b = FunctionBuilder::new("prod");
        let i = b.var_i64("i");
        b.for_loop(i, Expr::i64(0), Expr::i64(4), |b| {
            b.enq(q, Expr::var(i));
        });
        StageProgram::plain(b.build())
    }

    fn consumer(q: QueueId) -> StageProgram {
        let mut b = FunctionBuilder::new("cons");
        let i = b.var_i64("i");
        let x = b.var_i64("x");
        b.for_loop(i, Expr::i64(0), Expr::i64(4), |b| {
            b.deq(x, q);
        });
        StageProgram::plain(b.build())
    }

    #[test]
    fn accepts_a_simple_two_stage_pipeline() {
        let mut p = Pipeline::new("t");
        p.add_stage(producer(QueueId(0)), 0);
        p.add_stage(consumer(QueueId(0)), 0);
        assert!(validate_pipeline(&p, &ValidateLimits::default(), "test").is_ok());
    }

    #[test]
    fn rejects_dangling_queue() {
        let mut p = Pipeline::new("t");
        p.add_stage(producer(QueueId(0)), 0);
        let e = validate_pipeline(&p, &ValidateLimits::default(), "emit").unwrap_err();
        assert_eq!(e.pass, "emit");
        assert!(matches!(e.violation, Violation::NoConsumer { .. }), "{e}");
    }

    #[test]
    fn rejects_unbound_read() {
        let mut b = FunctionBuilder::new("bad");
        let x = b.var_i64("x");
        let ghost = b.var_i64("ghost");
        b.assign(x, Expr::var(ghost));
        let mut p = Pipeline::new("t");
        p.add_stage(StageProgram::plain(b.build()), 0);
        let e = validate_pipeline(&p, &ValidateLimits::default(), "emit").unwrap_err();
        // `x` is written; `ghost` is not.
        assert!(
            matches!(&e.violation, Violation::UnboundRead { var, .. } if var == "ghost"),
            "{e}"
        );
    }
}
