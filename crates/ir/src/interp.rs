//! Functional execution: the correctness oracle.
//!
//! [`run_serial`] executes a single function; [`run_pipeline`] executes a
//! whole pipeline with cooperative round-robin scheduling over bounded
//! queues. Both are purely functional (no timing) and return dynamic
//! operation counts.

use crate::mem::MemState;
use crate::pipeline::{Pipeline, StageKind};
use crate::step::{bind_params, StageSpec, StepInterp};
use crate::value::{Trap, Value};
use crate::world::{FunctionalWorld, OpCounts, StepResult, Tid};
use crate::Function;

/// Default per-thread step budget for functional runs.
pub const DEFAULT_BUDGET: u64 = 2_000_000_000;

/// Result of a functional run.
#[derive(Clone, Debug)]
pub struct FunctionalRun {
    /// Final memory.
    pub mem: MemState,
    /// Per-thread op counts.
    pub counts: Vec<OpCounts>,
}

impl FunctionalRun {
    /// Total op counts across threads.
    pub fn total(&self) -> OpCounts {
        let mut t = OpCounts::default();
        for c in &self.counts {
            t.uops += c.uops;
            t.branches += c.branches;
            t.loads += c.loads;
            t.stores += c.stores;
            t.atomics += c.atomics;
            t.enqs += c.enqs;
            t.deqs += c.deqs;
        }
        t
    }
}

/// Runs a serial function to completion.
///
/// # Errors
/// Propagates traps (out-of-bounds, budget exhaustion, or blocking on a
/// queue, which a serial function must not do).
pub fn run_serial(
    func: &Function,
    mem: MemState,
    params: &[(&str, Value)],
) -> Result<FunctionalRun, Trap> {
    func.validate()
        .map_err(|e| Trap::Malformed(e.to_string()))?;
    let mut world = FunctionalWorld::new(mem, 0, 0, 1);
    let bound = bind_params(func, params);
    let mut interp = StepInterp::new(
        StageSpec {
            func,
            handlers: &[],
        },
        Tid(0),
        &bound,
    )
    .with_budget(DEFAULT_BUDGET);
    loop {
        match interp.step(&mut world)? {
            StepResult::Progress => {}
            StepResult::Finished => break,
            StepResult::Blocked(b) => {
                return Err(Trap::Deadlock(format!("serial function blocked on {b:?}")))
            }
        }
    }
    let counts = world.counts.clone();
    Ok(FunctionalRun {
        mem: world.into_mem(),
        counts,
    })
}

/// Runs a pipeline functionally with round-robin scheduling.
///
/// Execution finishes when every *compute* stage has terminated; RAs are
/// allowed to remain blocked on their (drained) input queues, matching
/// the hardware, where RA engines idle once the pipeline ends.
///
/// # Errors
/// Traps on deadlock (all unfinished stages blocked with no compute
/// progress possible), runtime errors, or budget exhaustion.
pub fn run_pipeline(
    pipeline: &Pipeline,
    mem: MemState,
    params: &[(&str, Value)],
    queue_capacity: usize,
) -> Result<FunctionalRun, Trap> {
    run_pipeline_budgeted(pipeline, mem, params, queue_capacity, DEFAULT_BUDGET)
}

/// [`run_pipeline`] with an explicit per-stage step budget, for callers
/// that need a tighter runaway bound than [`DEFAULT_BUDGET`] (e.g. the
/// fuzzing oracle, or profiling candidates that may diverge).
///
/// # Errors
/// See [`run_pipeline`]; additionally traps with
/// [`Trap::OpBudgetExceeded`] once any stage exceeds `budget` atoms.
pub fn run_pipeline_budgeted(
    pipeline: &Pipeline,
    mem: MemState,
    params: &[(&str, Value)],
    queue_capacity: usize,
    budget: u64,
) -> Result<FunctionalRun, Trap> {
    let n = pipeline.stages.len();
    let mut world = FunctionalWorld::new(mem, pipeline.num_queues as usize, queue_capacity, n);
    let mut interps: Vec<StepInterp<'_>> = pipeline
        .stages
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let bound = bind_params(&s.program.func, params);
            StepInterp::new(
                StageSpec {
                    func: &s.program.func,
                    handlers: &s.program.handlers,
                },
                Tid(i as u32),
                &bound,
            )
            .with_budget(budget)
        })
        .collect();
    let is_compute: Vec<bool> = pipeline
        .stages
        .iter()
        .map(|s| matches!(s.kind, StageKind::Compute))
        .collect();
    const SLICE: u32 = 256;
    loop {
        let mut progressed = false;
        let mut compute_live = false;
        for (i, interp) in interps.iter_mut().enumerate() {
            if interp.is_finished() {
                continue;
            }
            if is_compute[i] {
                compute_live = true;
            }
            let mut slice = 0;
            loop {
                match interp.step(&mut world)? {
                    StepResult::Progress => {
                        progressed = true;
                        slice += 1;
                        if slice >= SLICE {
                            break;
                        }
                    }
                    StepResult::Blocked(_) => break,
                    StepResult::Finished => {
                        progressed = true;
                        break;
                    }
                }
            }
        }
        if !compute_live {
            break;
        }
        if !progressed {
            let blocked: Vec<String> = interps
                .iter()
                .filter(|it| !it.is_finished())
                .map(|it| it.name().to_string())
                .collect();
            return Err(Trap::Deadlock(format!(
                "stages blocked with no progress: {blocked:?}"
            )));
        }
    }
    let counts = world.counts.clone();
    Ok(FunctionalRun {
        mem: world.into_mem(),
        counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::expr::{Expr, QueueId};
    use crate::func::ArrayDecl;
    use crate::pipeline::StageProgram;
    use crate::value::BinOp;

    #[test]
    fn serial_store_loop() {
        let mut b = FunctionBuilder::new("fill");
        let n = b.param_i64("n");
        let a = b.array_i64("a");
        let i = b.var_i64("i");
        b.for_loop(i, Expr::i64(0), Expr::var(n), |b| {
            b.store(a, Expr::var(i), Expr::mul(Expr::var(i), Expr::var(i)));
        });
        let f = b.build();
        let mut mem = MemState::new();
        let a_id = mem.alloc(ArrayDecl::i64("a"), 5);
        let run = run_serial(&f, mem, &[("n", Value::I64(5))]).unwrap();
        assert_eq!(run.mem.i64_vec(a_id), vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn two_stage_pipeline_matches_serial() {
        // Producer: for i in 0..n { enq(0, a[i]) }
        // Consumer: for i in 0..n { x = deq(0); b[i] = x*2 }
        let q = QueueId(0);
        let mut pb = FunctionBuilder::new("producer");
        let n1 = pb.param_i64("n");
        let a1 = pb.array_i64("a");
        let _b1 = pb.array_i64("b");
        let i1 = pb.var_i64("i");
        pb.for_loop(i1, Expr::i64(0), Expr::var(n1), |b| {
            let l = b.load(a1, Expr::var(i1));
            b.enq(q, l);
        });
        let mut cb = FunctionBuilder::new("consumer");
        let n2 = cb.param_i64("n");
        let _a2 = cb.array_i64("a");
        let b2 = cb.array_i64("b");
        let i2 = cb.var_i64("i");
        let x2 = cb.var_i64("x");
        cb.for_loop(i2, Expr::i64(0), Expr::var(n2), |b| {
            b.deq(x2, q);
            b.store(b2, Expr::var(i2), Expr::mul(Expr::var(x2), Expr::i64(2)));
        });
        let mut p = Pipeline::new("double");
        p.add_stage(StageProgram::plain(pb.build()), 0);
        p.add_stage(StageProgram::plain(cb.build()), 0);

        let mut mem = MemState::new();
        let _a = mem.alloc_i64(ArrayDecl::i64("a"), [3, 1, 4, 1, 5]);
        let bid = mem.alloc(ArrayDecl::i64("b"), 5);
        let run = run_pipeline(&p, mem, &[("n", Value::I64(5))], 4).unwrap();
        assert_eq!(run.mem.i64_vec(bid), vec![6, 2, 8, 2, 10]);
        let t = run.total();
        assert_eq!(t.enqs, 5);
        assert_eq!(t.deqs, 5);
    }

    #[test]
    fn deadlock_is_detected() {
        // A single consumer stage dequeues from a queue nobody fills.
        let q = QueueId(0);
        let mut cb = FunctionBuilder::new("starved");
        let x = cb.var_i64("x");
        cb.deq(x, q);
        let mut p = Pipeline::new("dead");
        p.add_stage(StageProgram::plain(cb.build()), 0);
        // num_queues stays 1 via usage scan.
        let err = run_pipeline(&p, MemState::new(), &[], 4).unwrap_err();
        assert!(matches!(err, Trap::Deadlock(_)));
    }

    #[test]
    fn atomic_pipeline_updates() {
        // Two "data-parallel" stages atomically add into the same cell.
        let mut p = Pipeline::new("atomics");
        for s in 0..2 {
            let mut b = FunctionBuilder::new(format!("w{s}"));
            let a = b.array_i64("acc");
            let i = b.var_i64("i");
            b.for_loop(i, Expr::i64(0), Expr::i64(10), |b| {
                b.atomic_rmw(BinOp::Add, a, Expr::i64(0), Expr::i64(1), None);
            });
            p.add_stage(StageProgram::plain(b.build()), 0);
        }
        let mut mem = MemState::new();
        let acc = mem.alloc(ArrayDecl::i64("acc"), 1);
        let run = run_pipeline(&p, mem, &[], 4).unwrap();
        assert_eq!(run.mem.i64_vec(acc), vec![20]);
    }
}
