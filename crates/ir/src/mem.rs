//! Functional memory state: named arrays in a flat address space.
//!
//! Each array receives a 64-byte-aligned base address from a bump
//! allocator, so the cache model in `pipette-sim` sees realistic line and
//! set behaviour. Element sizes of 4 bytes (graph ids, CSR offsets) and
//! 8 bytes (doubles) are supported; values are held as [`Value`]s
//! regardless of element width.

use crate::expr::ArrayId;
use crate::func::ArrayDecl;
use crate::value::{Trap, Ty, Value};

const BASE_ADDR: u64 = 0x1_0000;
const LINE: u64 = 64;

/// One allocated array.
#[derive(Clone, Debug)]
pub struct ArrayStore {
    /// Declaration (name, type, element width).
    pub decl: ArrayDecl,
    /// Base address in the simulated flat address space.
    pub base: u64,
    data: Vec<Value>,
}

impl ArrayStore {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// The full memory state of one simulation.
#[derive(Clone, Debug, Default)]
pub struct MemState {
    arrays: Vec<ArrayStore>,
    next_base: u64,
}

impl MemState {
    /// Creates an empty memory state.
    pub fn new() -> MemState {
        MemState {
            arrays: Vec::new(),
            next_base: BASE_ADDR,
        }
    }

    /// Allocates a zero-initialized array. Arrays must be allocated in
    /// [`ArrayId`] order matching the function's declarations.
    pub fn alloc(&mut self, decl: ArrayDecl, len: usize) -> ArrayId {
        let fill = decl.ty.zero();
        self.alloc_init(decl, vec![fill; len])
    }

    /// Allocates an array with the given initial contents.
    pub fn alloc_init(&mut self, decl: ArrayDecl, data: Vec<Value>) -> ArrayId {
        let id = ArrayId(self.arrays.len() as u32);
        let bytes = data.len() as u64 * decl.elem_bytes as u64;
        let base = self.next_base;
        // Leave a one-line gap between arrays so unrelated arrays never
        // share a cache line.
        self.next_base = (base + bytes + LINE).next_multiple_of(LINE);
        self.arrays.push(ArrayStore { decl, base, data });
        id
    }

    /// Allocates an integer array from an iterator of `i64`.
    pub fn alloc_i64(&mut self, decl: ArrayDecl, data: impl IntoIterator<Item = i64>) -> ArrayId {
        debug_assert_eq!(decl.ty, Ty::I64);
        let vals: Vec<Value> = data.into_iter().map(Value::I64).collect();
        self.alloc_init(decl, vals)
    }

    /// Allocates a float array from an iterator of `f64`.
    pub fn alloc_f64(&mut self, decl: ArrayDecl, data: impl IntoIterator<Item = f64>) -> ArrayId {
        debug_assert_eq!(decl.ty, Ty::F64);
        let vals: Vec<Value> = data.into_iter().map(Value::F64).collect();
        self.alloc_init(decl, vals)
    }

    /// Number of arrays allocated.
    pub fn array_count(&self) -> usize {
        self.arrays.len()
    }

    /// Metadata and contents of one array.
    ///
    /// # Panics
    /// Panics if `a` was never allocated.
    pub fn array(&self, a: ArrayId) -> &ArrayStore {
        &self.arrays[a.0 as usize]
    }

    fn store_ref(&self, a: ArrayId) -> Result<&ArrayStore, Trap> {
        self.arrays
            .get(a.0 as usize)
            .ok_or_else(|| Trap::BadId(format!("array {}", a.0)))
    }

    /// Reads `a[idx]`.
    ///
    /// # Errors
    /// Traps on a bad array id or out-of-bounds index.
    pub fn load(&self, a: ArrayId, idx: i64) -> Result<Value, Trap> {
        let s = self.store_ref(a)?;
        if idx < 0 || idx as usize >= s.data.len() {
            return Err(Trap::OutOfBounds(s.decl.name.clone(), idx, s.data.len()));
        }
        Ok(s.data[idx as usize])
    }

    /// Writes `a[idx] = v`.
    ///
    /// # Errors
    /// Traps on a bad array id, out-of-bounds index, or storing a control
    /// value to memory.
    pub fn store(&mut self, a: ArrayId, idx: i64, v: Value) -> Result<(), Trap> {
        if let Value::Ctrl(c) = v {
            return Err(Trap::CtrlAsData(c));
        }
        let s = self
            .arrays
            .get_mut(a.0 as usize)
            .ok_or_else(|| Trap::BadId(format!("array {}", a.0)))?;
        if idx < 0 || idx as usize >= s.data.len() {
            return Err(Trap::OutOfBounds(s.decl.name.clone(), idx, s.data.len()));
        }
        s.data[idx as usize] = v;
        Ok(())
    }

    /// Byte address of `a[idx]` (for the cache model).
    ///
    /// # Errors
    /// Traps on a bad array id or out-of-bounds index.
    pub fn addr(&self, a: ArrayId, idx: i64) -> Result<u64, Trap> {
        let s = self.store_ref(a)?;
        if idx < 0 || idx as usize >= s.data.len() {
            return Err(Trap::OutOfBounds(s.decl.name.clone(), idx, s.data.len()));
        }
        Ok(s.base + idx as u64 * s.decl.elem_bytes as u64)
    }

    /// Reads `a[idx]` and returns its byte address in one array lookup —
    /// the hot timed-load path needs both, and the separate
    /// [`Self::load`] + [`Self::addr`] pair pays the id/bounds checks
    /// twice.
    ///
    /// # Errors
    /// Traps on a bad array id or out-of-bounds index.
    #[inline]
    pub fn load_with_addr(&self, a: ArrayId, idx: i64) -> Result<(Value, u64), Trap> {
        let s = self.store_ref(a)?;
        if idx < 0 || idx as usize >= s.data.len() {
            return Err(Trap::OutOfBounds(s.decl.name.clone(), idx, s.data.len()));
        }
        let addr = s.base + idx as u64 * s.decl.elem_bytes as u64;
        Ok((s.data[idx as usize], addr))
    }

    /// Writes `a[idx] = v` and returns the byte address in one array
    /// lookup (hot timed-store path; see [`Self::load_with_addr`]).
    ///
    /// # Errors
    /// Traps on a bad array id, out-of-bounds index, or storing a
    /// control value to memory.
    #[inline]
    pub fn store_with_addr(&mut self, a: ArrayId, idx: i64, v: Value) -> Result<u64, Trap> {
        if let Value::Ctrl(c) = v {
            return Err(Trap::CtrlAsData(c));
        }
        let s = self
            .arrays
            .get_mut(a.0 as usize)
            .ok_or_else(|| Trap::BadId(format!("array {}", a.0)))?;
        if idx < 0 || idx as usize >= s.data.len() {
            return Err(Trap::OutOfBounds(s.decl.name.clone(), idx, s.data.len()));
        }
        s.data[idx as usize] = v;
        Ok(s.base + idx as u64 * s.decl.elem_bytes as u64)
    }

    /// Contents of an integer array as `i64`s (for result checking).
    ///
    /// # Panics
    /// Panics if the array holds non-integer values.
    pub fn i64_vec(&self, a: ArrayId) -> Vec<i64> {
        self.array(a)
            .data
            .iter()
            .map(|v| v.as_i64().expect("i64 array"))
            .collect()
    }

    /// Contents of a float array as `f64`s.
    ///
    /// # Panics
    /// Panics if the array holds control values.
    pub fn f64_vec(&self, a: ArrayId) -> Vec<f64> {
        self.array(a)
            .data
            .iter()
            .map(|v| v.as_f64().expect("f64 array"))
            .collect()
    }

    /// Raw values of an array.
    pub fn values(&self, a: ArrayId) -> &[Value] {
        &self.array(a).data
    }

    /// Overwrites the full contents of an array (length must match).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn set_values(&mut self, a: ArrayId, vals: Vec<Value>) {
        let s = &mut self.arrays[a.0 as usize];
        assert_eq!(s.data.len(), vals.len(), "array length mismatch");
        s.data = vals;
    }

    /// True if the observable contents of two memories are equal
    /// (used to compare pipeline output against the serial oracle).
    pub fn same_contents(&self, other: &MemState) -> bool {
        self.arrays.len() == other.arrays.len()
            && self
                .arrays
                .iter()
                .zip(&other.arrays)
                .all(|(a, b)| a.data == b.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_access() {
        let mut m = MemState::new();
        let a = m.alloc_i64(ArrayDecl::i32("a"), [1, 2, 3]);
        assert_eq!(m.load(a, 1).unwrap(), Value::I64(2));
        m.store(a, 1, Value::I64(9)).unwrap();
        assert_eq!(m.i64_vec(a), vec![1, 9, 3]);
    }

    #[test]
    fn out_of_bounds_traps() {
        let mut m = MemState::new();
        let a = m.alloc(ArrayDecl::i64("a"), 2);
        assert!(matches!(m.load(a, 2), Err(Trap::OutOfBounds(_, 2, 2))));
        assert!(matches!(m.load(a, -1), Err(Trap::OutOfBounds(_, -1, 2))));
    }

    #[test]
    fn addresses_are_line_aligned_and_disjoint() {
        let mut m = MemState::new();
        let a = m.alloc(ArrayDecl::i32("a"), 100);
        let b = m.alloc(ArrayDecl::f64("b"), 100);
        let a_base = m.addr(a, 0).unwrap();
        let a_end = m.addr(a, 99).unwrap() + 4;
        let b_base = m.addr(b, 0).unwrap();
        assert_eq!(a_base % 64, 0);
        assert_eq!(b_base % 64, 0);
        assert!(b_base >= a_end + 64, "arrays must not share a line");
        // 4-byte elements: consecutive indices 4 bytes apart.
        assert_eq!(m.addr(a, 1).unwrap(), a_base + 4);
    }

    #[test]
    fn ctrl_values_cannot_be_stored() {
        let mut m = MemState::new();
        let a = m.alloc(ArrayDecl::i64("a"), 1);
        assert!(m.store(a, 0, Value::Ctrl(3)).is_err());
    }
}
