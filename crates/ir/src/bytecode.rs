//! Bytecode compilation for stage programs.
//!
//! [`compile`] lowers a [`Function`] body plus its registered
//! [`CtrlHandler`]s into a [`BytecodeProgram`]: one linear instruction
//! array with register-slot operands, pre-resolved branch and loop-back
//! targets, and expression trees flattened into three-address micro-ops.
//! [`crate::flat::FlatInterp`] executes it with a program counter
//! instead of the [`crate::step::StepInterp`] frame stack, making the
//! same sequence of [`crate::World`] calls — simulated timing is
//! bit-identical by construction; only host work changes.
//!
//! ## Atom boundaries
//!
//! The tree interpreter executes one *atom* per step: a simple statement
//! or one control-flow decision, with the expression micro-ops leading
//! up to it folded into the same step. The bytecode mirrors this by
//! splitting instructions into two classes:
//!
//! * **free** instructions ([`Instr::Un`], [`Instr::Bin`],
//!   [`Instr::Load`], [`Instr::Jump`], [`Instr::ForEnter`]) execute and
//!   fall through within the current step;
//! * **atom-ending** instructions (assignments, memory writes, queue
//!   ops, branches, loop tests, handler returns, [`Instr::Halt`]) end
//!   the step exactly where the tree interpreter would.
//!
//! ## Operand timing rules
//!
//! Each register slot carries a value *and* a readiness time. Reading an
//! operand reproduces the tree interpreter's rules exactly: a constant
//! is ready at the thread's control-flow time, a variable at
//! `max(write time, flow time)`, and a temporary (an intermediate
//! expression result) at its raw producer completion time.
//!
//! ## Queue operations
//!
//! `try_enq`/`try_deq` keep the block-before-mutate contract: a blocked
//! queue instruction leaves the program counter *on itself* and returns
//! [`crate::StepResult::Blocked`], so the scheduler can retry it later
//! without the expression micro-ops ever re-executing (their results
//! are still in the operand registers). A dequeued control value with a
//! matching handler jumps into the handler's code region; the handler's
//! terminating [`Instr::HandlerRet`] consults the *dispatching* dequeue
//! site for its pre-resolved break targets, because `break N` out of a
//! handler is defined relative to the loops enclosing the dequeue.

use crate::expr::{ArrayId, BranchId, Expr, QueueId, VarId};
use crate::func::Function;
use crate::stmt::{CtrlHandler, HandlerEnd, Stmt};
use crate::value::{BinOp, Trap, UnOp, Value};
use serde::{Deserialize, Serialize};

/// Which execution engine runs stage programs.
///
/// Both engines produce **bit-identical simulated cycles, statistics,
/// and memory state** (the flat engine makes the same [`crate::World`]
/// calls in the same order); they differ only in host throughput. The
/// tree-walking [`crate::StepInterp`] is kept as the differential
/// oracle, the same pattern the simulator uses for its polling
/// scheduler reference.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecEngine {
    /// Bytecode compilation + program-counter execution
    /// ([`crate::flat::FlatInterp`]); the fast default.
    #[default]
    Flat,
    /// The original tree-walking interpreter
    /// ([`crate::step::StepInterp`]); reference implementation.
    Tree,
}

/// An instruction operand: where a value (and its readiness time) comes
/// from. Immediates live in the program's constant pool
/// ([`BytecodeProgram::consts`]) so an operand is one word — the code
/// array stays dense and the dispatch loop reads fewer cache lines.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Opd {
    /// An immediate (constant-pool index); ready at the thread's flow
    /// time.
    Const(u32),
    /// A program variable slot; ready at `max(write time, flow time)`.
    Var(u32),
    /// A temporary slot; ready at its raw producer time.
    Tmp(u32),
}

/// One bytecode instruction. See the module docs for the free vs.
/// atom-ending split.
#[derive(Clone, Debug)]
pub(crate) enum Instr {
    // ----- free (fall through within the current atom) -----
    /// dst = op a.
    Un { op: UnOp, a: Opd, dst: u32 },
    /// dst = a op b.
    Bin { op: BinOp, a: Opd, b: Opd, dst: u32 },
    /// dst = array[index].
    Load {
        array: ArrayId,
        index: Opd,
        dst: u32,
    },
    /// Unconditional jump (loop back edges, if/else joins).
    Jump(u32),
    /// Latches a for-loop's start/limit into its loop slots.
    ForEnter {
        start: Opd,
        end: Opd,
        cur: u32,
        lim: u32,
    },
    // ----- atom-ending -----
    /// var = src.
    Assign { var: u32, src: Opd },
    /// var = op a, ending the atom (peephole-fused `Assign` of a unary
    /// expression result; saves a dispatch and a temp round trip).
    UnA { op: UnOp, a: Opd, var: u32 },
    /// var = a op b, ending the atom (fused `Assign`).
    BinA { op: BinOp, a: Opd, b: Opd, var: u32 },
    /// var = array[index], ending the atom (fused `Assign`).
    LoadA {
        array: ArrayId,
        index: Opd,
        var: u32,
    },
    /// array[index] = value.
    Store {
        array: ArrayId,
        index: Opd,
        value: Opd,
    },
    /// Atomic read-modify-write; `old` receives the previous value.
    AtomicRmw {
        op: BinOp,
        array: ArrayId,
        index: Opd,
        value: Opd,
        old: Option<u32>,
    },
    /// Blocking enqueue. Retries re-read `value` (pure; no micro-ops).
    Enq { queue: QueueId, value: Opd },
    /// Replica-distributing enqueue; the select micro-op issues once and
    /// the chosen queue is stashed across blocked retries.
    EnqSel {
        queues: Box<[QueueId]>,
        select: Opd,
        value: Opd,
    },
    /// Enqueue of a control value.
    EnqCtrl { queue: QueueId, ctrl: u32 },
    /// Blocking dequeue; dispatches control values to handlers.
    /// `breaks[k]` is the jump target for breaking `k + 1` loops
    /// enclosing this site (used by the dispatched handler's return).
    Deq {
        var: u32,
        queue: QueueId,
        breaks: Box<[u32]>,
    },
    /// `if` branch: taken falls through, not-taken jumps to `else_t`.
    IfBranch {
        id: BranchId,
        cond: Opd,
        else_t: u32,
    },
    /// Fused compare-and-`if`-branch (the compare micro-op still
    /// issues; only the dispatch and the temp round trip are saved).
    BinIf {
        op: BinOp,
        a: Opd,
        b: Opd,
        id: BranchId,
        else_t: u32,
    },
    /// `while` header test: taken falls through, else jumps to `exit`.
    WhileBranch { id: BranchId, cond: Opd, exit: u32 },
    /// Fused compare-and-`while`-test.
    BinWhile {
        op: BinOp,
        a: Opd,
        b: Opd,
        id: BranchId,
        exit: u32,
    },
    /// First for-loop test (no increment).
    ForTest {
        id: BranchId,
        var: u32,
        cur: u32,
        lim: u32,
        exit: u32,
    },
    /// For-loop back edge: increment, test, branch to `body` or `exit`.
    ForStep {
        id: BranchId,
        var: u32,
        cur: u32,
        lim: u32,
        body: u32,
        exit: u32,
    },
    /// `break N` resolved to the target loop's exit.
    BreakJump(u32),
    /// Handler return: pops the dispatch record and applies the end
    /// action relative to the dispatching dequeue site.
    HandlerRet(HandlerEnd),
    /// End of the stage program.
    Halt,
    /// A statically-detected runtime trap (e.g. a `break` crossing a
    /// handler boundary); traps when — and only when — executed, exactly
    /// like the tree interpreter.
    Fault(Box<str>),
}

/// A control-value handler's dispatch entry.
#[derive(Clone, Debug)]
pub(crate) struct HandlerEntry {
    pub(crate) queue: QueueId,
    pub(crate) ctrl: Option<u32>,
    pub(crate) bind: Option<u32>,
    pub(crate) entry: u32,
}

/// A compiled stage program: the executable form consumed by
/// [`crate::flat::FlatInterp`].
#[derive(Clone, Debug)]
pub struct BytecodeProgram {
    pub(crate) name: String,
    /// Program variables occupy slots `0..nvars`; temporaries and loop
    /// state the rest.
    pub(crate) nvars: u32,
    pub(crate) nslots: u32,
    pub(crate) body_empty: bool,
    pub(crate) code: Vec<Instr>,
    /// Constant pool referenced by [`Opd::Const`] operands.
    pub(crate) consts: Vec<Value>,
    /// Zero-initial values per variable slot (typed zeros).
    pub(crate) var_zero: Vec<Value>,
    pub(crate) handlers: Vec<HandlerEntry>,
}

impl BytecodeProgram {
    /// The compiled function's name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of instructions (diagnostics / tests).
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True when the instruction array is empty (never, in practice:
    /// compilation always emits at least [`Instr::Halt`]).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Handler lookup with the tree interpreter's precedence: an exact
    /// tag match wins over a wildcard, declaration order breaks ties.
    pub(crate) fn find_handler(&self, q: QueueId, tag: u32) -> Option<&HandlerEntry> {
        self.handlers
            .iter()
            .find(|h| h.queue == q && h.ctrl == Some(tag))
            .or_else(|| {
                self.handlers
                    .iter()
                    .find(|h| h.queue == q && h.ctrl.is_none())
            })
    }
}

/// Compiles a stage program (function body + registered control-value
/// handlers) to bytecode.
///
/// # Errors
/// Returns [`Trap::BadId`] for out-of-range variable ids (the tree
/// interpreter would trap or panic on first use at runtime; compilation
/// surfaces them eagerly). Run [`Function::validate`] first to rule
/// them out. Break statements that would cross a handler or function
/// boundary compile to [`Instr::Fault`] and trap only when executed,
/// matching tree semantics.
pub fn compile(func: &Function, handlers: &[CtrlHandler]) -> Result<BytecodeProgram, Trap> {
    let nvars = func.vars.len() as u32;
    let mut c = Compiler {
        code: Vec::new(),
        consts: Vec::new(),
        nvars,
        nslots: nvars,
        loops: Vec::new(),
    };
    c.emit_body(&func.body)?;
    c.code.push(Instr::Halt);
    debug_assert!(c.loops.is_empty());
    let mut htab = Vec::with_capacity(handlers.len());
    for h in handlers {
        let entry = c.code.len() as u32;
        let bind = match h.bind {
            Some(v) => Some(c.check_var(v)?),
            None => None,
        };
        if let HandlerEnd::FinishWhen(v, _) | HandlerEnd::BreakWhen(v, _, _) = h.end {
            c.check_var(v)?;
        }
        c.emit_body(&h.body)?;
        debug_assert!(c.loops.is_empty());
        c.code.push(Instr::HandlerRet(h.end));
        htab.push(HandlerEntry {
            queue: h.queue,
            ctrl: h.ctrl,
            bind,
            entry,
        });
    }
    Ok(BytecodeProgram {
        name: func.name.clone(),
        nvars,
        nslots: c.nslots,
        body_empty: func.body.is_empty(),
        code: c.code,
        consts: c.consts,
        var_zero: func.vars.iter().map(|d| d.ty.zero()).collect(),
        handlers: htab,
    })
}

/// A forward reference to be patched with a loop's exit pc.
enum Patch {
    /// Instruction whose exit/target field points past the loop.
    Exit(usize),
    /// `breaks[k]` of the [`Instr::Deq`] at the given index.
    DeqBreak(usize, usize),
}

/// One open loop during compilation (scoped to the current region: the
/// main body and each handler body have independent loop stacks,
/// because breaks cannot cross a handler boundary).
struct LoopScope {
    patches: Vec<Patch>,
}

struct Compiler {
    code: Vec<Instr>,
    consts: Vec<Value>,
    nvars: u32,
    nslots: u32,
    loops: Vec<LoopScope>,
}

impl Compiler {
    fn check_var(&self, v: VarId) -> Result<u32, Trap> {
        if v.0 >= self.nvars {
            return Err(Trap::BadId(format!("var {}", v.0)));
        }
        Ok(v.0)
    }

    /// Interns an immediate into the constant pool (programs are small;
    /// a linear dedup scan keeps the pool tiny without a map).
    fn intern(&mut self, v: Value) -> u32 {
        if let Some(i) = self.consts.iter().position(|c| *c == v) {
            return i as u32;
        }
        self.consts.push(v);
        (self.consts.len() - 1) as u32
    }

    /// If `cond` is the temporary produced by the immediately preceding
    /// compare micro-op, pops that micro-op and returns its fields for
    /// fusion into the consuming branch (see [`Instr::BinIf`]).
    fn take_cmp_tail(&mut self, cond: Opd) -> Option<(BinOp, Opd, Opd)> {
        if let Opd::Tmp(t) = cond {
            if let Some(Instr::Bin { op, a, b, dst }) = self.code.last() {
                if *dst == t {
                    let (op, a, b) = (*op, *a, *b);
                    self.code.pop();
                    return Some((op, a, b));
                }
            }
        }
        None
    }

    fn alloc_tmp(&mut self) -> u32 {
        let s = self.nslots;
        self.nslots += 1;
        s
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    /// Flattens an expression; emits its micro-ops and returns the
    /// operand holding the result. Micro-op order matches the tree
    /// interpreter's recursive evaluation exactly.
    fn emit_expr(&mut self, e: &Expr) -> Result<Opd, Trap> {
        match e {
            Expr::Const(v) => Ok(Opd::Const(self.intern(*v))),
            Expr::Var(v) => Ok(Opd::Var(self.check_var(*v)?)),
            Expr::Unary(op, a) => {
                let a = self.emit_expr(a)?;
                let dst = self.alloc_tmp();
                self.code.push(Instr::Un { op: *op, a, dst });
                Ok(Opd::Tmp(dst))
            }
            Expr::Binary(op, a, b) => {
                let a = self.emit_expr(a)?;
                let b = self.emit_expr(b)?;
                let dst = self.alloc_tmp();
                self.code.push(Instr::Bin { op: *op, a, b, dst });
                Ok(Opd::Tmp(dst))
            }
            Expr::Load { array, index, .. } => {
                let index = self.emit_expr(index)?;
                let dst = self.alloc_tmp();
                self.code.push(Instr::Load {
                    array: *array,
                    index,
                    dst,
                });
                Ok(Opd::Tmp(dst))
            }
        }
    }

    fn emit_body(&mut self, stmts: &[Stmt]) -> Result<(), Trap> {
        for s in stmts {
            self.emit_stmt(s)?;
        }
        Ok(())
    }

    fn patch(&mut self, p: &Patch, target: u32) {
        match *p {
            Patch::Exit(i) => match &mut self.code[i] {
                Instr::Jump(t) | Instr::BreakJump(t) => *t = target,
                Instr::IfBranch { else_t, .. } | Instr::BinIf { else_t, .. } => *else_t = target,
                Instr::WhileBranch { exit, .. }
                | Instr::BinWhile { exit, .. }
                | Instr::ForTest { exit, .. }
                | Instr::ForStep { exit, .. } => *exit = target,
                other => unreachable!("patching non-branch {other:?}"),
            },
            Patch::DeqBreak(i, k) => match &mut self.code[i] {
                Instr::Deq { breaks, .. } => breaks[k] = target,
                other => unreachable!("patching non-deq {other:?}"),
            },
        }
    }

    fn close_loop(&mut self) {
        let scope = self.loops.pop().expect("loop scope");
        let exit = self.here();
        for p in scope.patches {
            self.patch(&p, exit);
        }
    }

    fn emit_stmt(&mut self, s: &Stmt) -> Result<(), Trap> {
        match s {
            Stmt::Assign { var, expr } => {
                let src = self.emit_expr(expr)?;
                let var = self.check_var(*var)?;
                // Peephole: when the expression's last micro-op produced
                // the assigned temporary, rewrite it into the fused
                // atom-ending form that writes the variable slot
                // directly. Temporaries are single-use by construction
                // and no branch target can point between an
                // expression's micro-ops and its consuming statement,
                // so the rewrite is invisible except to the host clock.
                if let Opd::Tmp(t) = src {
                    let fused = match self.code.last() {
                        Some(Instr::Un { op, a, dst }) if *dst == t => Some(Instr::UnA {
                            op: *op,
                            a: *a,
                            var,
                        }),
                        Some(Instr::Bin { op, a, b, dst }) if *dst == t => Some(Instr::BinA {
                            op: *op,
                            a: *a,
                            b: *b,
                            var,
                        }),
                        Some(Instr::Load { array, index, dst }) if *dst == t => {
                            Some(Instr::LoadA {
                                array: *array,
                                index: *index,
                                var,
                            })
                        }
                        _ => None,
                    };
                    if let Some(f) = fused {
                        *self.code.last_mut().expect("fusable tail") = f;
                        return Ok(());
                    }
                }
                self.code.push(Instr::Assign { var, src });
            }
            Stmt::Store {
                array,
                index,
                value,
            } => {
                let index = self.emit_expr(index)?;
                let value = self.emit_expr(value)?;
                self.code.push(Instr::Store {
                    array: *array,
                    index,
                    value,
                });
            }
            Stmt::AtomicRmw {
                op,
                array,
                index,
                value,
                old,
            } => {
                let index = self.emit_expr(index)?;
                let value = self.emit_expr(value)?;
                let old = match old {
                    Some(o) => Some(self.check_var(*o)?),
                    None => None,
                };
                self.code.push(Instr::AtomicRmw {
                    op: *op,
                    array: *array,
                    index,
                    value,
                    old,
                });
            }
            Stmt::If {
                id,
                cond,
                then_body,
                else_body,
            } => {
                let cond = self.emit_expr(cond)?;
                let fused = self.take_cmp_tail(cond);
                let br = self.code.len();
                match fused {
                    Some((op, a, b)) => self.code.push(Instr::BinIf {
                        op,
                        a,
                        b,
                        id: *id,
                        else_t: u32::MAX,
                    }),
                    None => self.code.push(Instr::IfBranch {
                        id: *id,
                        cond,
                        else_t: u32::MAX,
                    }),
                }
                self.emit_body(then_body)?;
                if else_body.is_empty() {
                    let join = self.here();
                    self.patch(&Patch::Exit(br), join);
                } else {
                    let skip = self.code.len();
                    self.code.push(Instr::Jump(u32::MAX));
                    let else_t = self.here();
                    self.patch(&Patch::Exit(br), else_t);
                    self.emit_body(else_body)?;
                    let join = self.here();
                    self.patch(&Patch::Exit(skip), join);
                }
            }
            Stmt::While { id, cond, body } => {
                let test = self.here();
                let cond = self.emit_expr(cond)?;
                let fused = self.take_cmp_tail(cond);
                let br = self.code.len();
                match fused {
                    Some((op, a, b)) => self.code.push(Instr::BinWhile {
                        op,
                        a,
                        b,
                        id: *id,
                        exit: u32::MAX,
                    }),
                    None => self.code.push(Instr::WhileBranch {
                        id: *id,
                        cond,
                        exit: u32::MAX,
                    }),
                }
                self.loops.push(LoopScope {
                    patches: vec![Patch::Exit(br)],
                });
                self.emit_body(body)?;
                self.code.push(Instr::Jump(test));
                self.close_loop();
            }
            Stmt::For {
                id,
                var,
                start,
                end,
                body,
            } => {
                let start = self.emit_expr(start)?;
                let end = self.emit_expr(end)?;
                let var = self.check_var(*var)?;
                let cur = self.alloc_tmp();
                let lim = self.alloc_tmp();
                self.code.push(Instr::ForEnter {
                    start,
                    end,
                    cur,
                    lim,
                });
                let test = self.code.len();
                self.code.push(Instr::ForTest {
                    id: *id,
                    var,
                    cur,
                    lim,
                    exit: u32::MAX,
                });
                self.loops.push(LoopScope {
                    patches: vec![Patch::Exit(test)],
                });
                self.emit_body(body)?;
                let step = self.code.len();
                self.code.push(Instr::ForStep {
                    id: *id,
                    var,
                    cur,
                    lim,
                    body: test as u32 + 1,
                    exit: u32::MAX,
                });
                // `close_loop` pops the scope we pushed above, which also
                // patches ForStep's exit via the registration below.
                self.loops
                    .last_mut()
                    .expect("for scope")
                    .patches
                    .push(Patch::Exit(step));
                self.close_loop();
            }
            Stmt::Break { levels } => {
                let n = *levels as usize;
                if n == 0 {
                    // The tree interpreter re-executes a `break 0`
                    // forever (it pops nothing and never advances);
                    // reproduce that exactly with a self-loop.
                    let here = self.here();
                    self.code.push(Instr::BreakJump(here));
                } else if n > self.loops.len() {
                    self.code.push(Instr::Fault(
                        format!("break {levels} crosses a handler or function boundary")
                            .into_boxed_str(),
                    ));
                } else {
                    let idx = self.code.len();
                    self.code.push(Instr::BreakJump(u32::MAX));
                    let depth = self.loops.len();
                    self.loops[depth - n].patches.push(Patch::Exit(idx));
                }
            }
            Stmt::Enq { queue, value } => {
                let value = self.emit_expr(value)?;
                self.code.push(Instr::Enq {
                    queue: *queue,
                    value,
                });
            }
            Stmt::EnqSel {
                queues,
                select,
                value,
            } => {
                let select = self.emit_expr(select)?;
                let value = self.emit_expr(value)?;
                self.code.push(Instr::EnqSel {
                    queues: queues.clone().into_boxed_slice(),
                    select,
                    value,
                });
            }
            Stmt::EnqCtrl { queue, ctrl } => {
                self.code.push(Instr::EnqCtrl {
                    queue: *queue,
                    ctrl: *ctrl,
                });
            }
            Stmt::Deq { var, queue } => {
                let var = self.check_var(*var)?;
                let depth = self.loops.len();
                let idx = self.code.len();
                self.code.push(Instr::Deq {
                    var,
                    queue: *queue,
                    breaks: vec![u32::MAX; depth].into_boxed_slice(),
                });
                for k in 0..depth {
                    self.loops[depth - 1 - k]
                        .patches
                        .push(Patch::DeqBreak(idx, k));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    #[test]
    fn compiles_nested_control_flow() {
        let mut b = FunctionBuilder::new("t");
        let n = b.param_i64("n");
        let i = b.var_i64("i");
        let x = b.var_i64("x");
        b.for_loop(i, Expr::i64(0), Expr::var(n), |b| {
            b.if_then(Expr::lt(Expr::var(i), Expr::i64(3)), |b| {
                b.assign(x, Expr::add(Expr::var(x), Expr::var(i)));
            });
        });
        let f = b.build();
        let p = compile(&f, &[]).unwrap();
        assert!(!p.is_empty());
        assert!(matches!(p.code.last(), Some(Instr::Halt)));
        // No unpatched targets may remain.
        for ins in &p.code {
            match ins {
                Instr::Jump(t) | Instr::BreakJump(t) => assert_ne!(*t, u32::MAX),
                Instr::IfBranch { else_t, .. } => assert_ne!(*else_t, u32::MAX),
                Instr::WhileBranch { exit, .. }
                | Instr::ForTest { exit, .. }
                | Instr::ForStep { exit, .. } => assert_ne!(*exit, u32::MAX),
                Instr::Deq { breaks, .. } => {
                    assert!(breaks.iter().all(|t| *t != u32::MAX));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn break_too_deep_compiles_to_fault() {
        let mut b = FunctionBuilder::new("t");
        let i = b.var_i64("i");
        b.for_loop(i, Expr::i64(0), Expr::i64(2), |b| {
            b.break_out(5);
        });
        let f = b.build();
        let p = compile(&f, &[]).unwrap();
        assert!(p.code.iter().any(|i| matches!(i, Instr::Fault(_))));
    }

    #[test]
    fn bad_var_id_is_rejected_at_compile_time() {
        let mut b = FunctionBuilder::new("t");
        let x = b.var_i64("x");
        b.assign(x, Expr::var(VarId(99)));
        let f = b.build();
        assert!(matches!(compile(&f, &[]), Err(Trap::BadId(_))));
    }
}
