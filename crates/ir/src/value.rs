//! Runtime values and scalar types for the Phloem IR.
//!
//! Queue words in Pipette are 64-bit values that are either *data* or
//! in-band *control values* (CVs). We mirror that with [`Value`]: data is
//! either a 64-bit integer or a 64-bit float, and control values carry a
//! small tag. Arithmetic on control values is a trap, matching the paper's
//! statement that CVs "cannot be interpreted as data".

use serde::{Deserialize, Serialize};
use std::fmt;

/// Scalar type of a variable or array element.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ty {
    /// 64-bit signed integer (also used for booleans and indices).
    I64,
    /// 64-bit IEEE float.
    F64,
}

impl Ty {
    /// Zero value of this type.
    pub fn zero(self) -> Value {
        match self {
            Ty::I64 => Value::I64(0),
            Ty::F64 => Value::F64(0.0),
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::I64 => write!(f, "i64"),
            Ty::F64 => write!(f, "f64"),
        }
    }
}

/// A 64-bit machine word: integer or float data, or an in-band control value.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Integer data.
    I64(i64),
    /// Floating-point data.
    F64(f64),
    /// A control value with a small application-defined tag
    /// (e.g. `NEXT`, `DONE`).
    Ctrl(u32),
}

impl Value {
    /// True if this word is a control value (the paper's `is_control`).
    pub fn is_ctrl(self) -> bool {
        matches!(self, Value::Ctrl(_))
    }

    /// Integer view of the value.
    ///
    /// # Errors
    /// Returns [`Trap::CtrlAsData`] for control values.
    pub fn as_i64(self) -> Result<i64, Trap> {
        match self {
            Value::I64(v) => Ok(v),
            Value::F64(v) => Ok(v as i64),
            Value::Ctrl(c) => Err(Trap::CtrlAsData(c)),
        }
    }

    /// Floating-point view of the value.
    ///
    /// # Errors
    /// Returns [`Trap::CtrlAsData`] for control values.
    pub fn as_f64(self) -> Result<f64, Trap> {
        match self {
            Value::I64(v) => Ok(v as f64),
            Value::F64(v) => Ok(v),
            Value::Ctrl(c) => Err(Trap::CtrlAsData(c)),
        }
    }

    /// Truthiness: nonzero data is true. Control values trap.
    pub fn as_bool(self) -> Result<bool, Trap> {
        match self {
            Value::I64(v) => Ok(v != 0),
            Value::F64(v) => Ok(v != 0.0),
            Value::Ctrl(c) => Err(Trap::CtrlAsData(c)),
        }
    }

    /// True if both operands are (or coerce to) floats.
    fn is_float(self) -> bool {
        matches!(self, Value::F64(_))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::I64(v as i64)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Ctrl(c) => write!(f, "CV({c})"),
        }
    }
}

/// Binary operators of the IR.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // operator names are self-describing
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    Min,
    Max,
}

impl BinOp {
    /// True for comparison operators (results are 0/1 integers).
    pub fn is_compare(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Min => "min",
            BinOp::Max => "max",
        };
        write!(f, "{s}")
    }
}

/// Unary operators of the IR.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (0 -> 1, nonzero -> 0).
    Not,
    /// Bitwise complement (integers only).
    BitNot,
    /// Pipette's `is_control(v)` test; never traps.
    IsCtrl,
    /// Extracts the tag of a control value (traps on data words).
    CtrlTag,
    /// Integer to float conversion.
    I2F,
    /// Float to integer conversion (truncating).
    F2I,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::BitNot => "~",
            UnOp::IsCtrl => "is_control",
            UnOp::CtrlTag => "ctrl_tag",
            UnOp::I2F => "(f64)",
            UnOp::F2I => "(i64)",
        };
        write!(f, "{s}")
    }
}

/// Runtime traps raised by the interpreter or simulator.
#[derive(Clone, Debug, PartialEq)]
pub enum Trap {
    /// Arithmetic attempted on a control value.
    CtrlAsData(u32),
    /// Out-of-bounds array access: `(array name, index, len)`.
    OutOfBounds(String, i64, usize),
    /// Division or remainder by zero.
    DivByZero,
    /// Use of an undeclared variable/array/queue id.
    BadId(String),
    /// All live threads are blocked on queues.
    Deadlock(String),
    /// Program exceeded the configured dynamic-operation budget.
    OpBudgetExceeded(u64),
    /// Malformed program detected at runtime (e.g. `break` outside a loop).
    Malformed(String),
    /// Watchdog: simulated time kept advancing with no queue activity
    /// and no stage completion for longer than the configured window.
    Livelock {
        /// Simulated cycle at which the watchdog fired.
        cycle: u64,
        /// Diagnostics snapshot (per-thread state, queue occupancies).
        detail: String,
    },
    /// Watchdog: simulated time exceeded the configured cycle cap.
    CycleLimit {
        /// Simulated cycle at which the watchdog fired.
        cycle: u64,
        /// Diagnostics snapshot (per-thread state, queue occupancies).
        detail: String,
    },
    /// A fault-injected thread kill ended the run. A run with a killed
    /// thread never reports success, even if the surviving stages drain.
    ThreadKilled {
        /// Simulated cycle at which the run was stopped.
        cycle: u64,
        /// Diagnostics snapshot (per-thread state, queue occupancies).
        detail: String,
    },
    /// The host cancelled the run cooperatively: a wall-clock deadline
    /// expired or the owner (e.g. a draining service) asked it to stop.
    /// Raised at a watchdog window boundary, so the simulated state at
    /// `cycle` is exactly what an uncancelled run would have had there —
    /// cancellation never perturbs a simulated cycle, it only decides
    /// not to simulate the next one.
    Cancelled {
        /// Simulated cycle at which the run was stopped.
        cycle: u64,
        /// Why the run was cancelled plus the diagnostics snapshot.
        detail: String,
    },
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::CtrlAsData(c) => write!(f, "control value CV({c}) used as data"),
            Trap::OutOfBounds(a, i, n) => {
                write!(f, "index {i} out of bounds for array `{a}` of length {n}")
            }
            Trap::DivByZero => write!(f, "division by zero"),
            Trap::BadId(s) => write!(f, "unknown id: {s}"),
            Trap::Deadlock(s) => write!(f, "deadlock: {s}"),
            Trap::OpBudgetExceeded(n) => write!(f, "dynamic op budget of {n} exceeded"),
            Trap::Malformed(s) => write!(f, "malformed program: {s}"),
            Trap::Livelock { cycle, detail } => {
                write!(
                    f,
                    "livelock: no forward progress by cycle {cycle}; {detail}"
                )
            }
            Trap::CycleLimit { cycle, detail } => {
                write!(f, "cycle cap exceeded at cycle {cycle}; {detail}")
            }
            Trap::ThreadKilled { cycle, detail } => {
                write!(
                    f,
                    "thread killed by fault injection; run stopped at cycle {cycle}; {detail}"
                )
            }
            Trap::Cancelled { cycle, detail } => {
                write!(f, "cancelled at cycle {cycle}; {detail}")
            }
        }
    }
}

impl std::error::Error for Trap {}

/// Evaluates a binary operation, with int/float coercion.
///
/// Comparisons yield `I64(0)`/`I64(1)`. Mixed int/float operands are
/// coerced to float. Bitwise and shift operators require integers.
///
/// # Errors
/// Traps on control-value operands, division by zero, and float operands
/// to integer-only operators.
#[inline]
pub fn eval_binop(op: BinOp, a: Value, b: Value) -> Result<Value, Trap> {
    use BinOp::*;
    if a.is_float() || b.is_float() {
        let x = a.as_f64()?;
        let y = b.as_f64()?;
        let v = match op {
            Add => Value::F64(x + y),
            Sub => Value::F64(x - y),
            Mul => Value::F64(x * y),
            Div => {
                if y == 0.0 {
                    return Err(Trap::DivByZero);
                }
                Value::F64(x / y)
            }
            Rem => {
                if y == 0.0 {
                    return Err(Trap::DivByZero);
                }
                Value::F64(x % y)
            }
            Min => Value::F64(x.min(y)),
            Max => Value::F64(x.max(y)),
            Lt => Value::from(x < y),
            Le => Value::from(x <= y),
            Gt => Value::from(x > y),
            Ge => Value::from(x >= y),
            Eq => Value::from(x == y),
            Ne => Value::from(x != y),
            And | Or | Xor | Shl | Shr => {
                return Err(Trap::Malformed(format!("float operand to {op}")))
            }
        };
        Ok(v)
    } else {
        let x = a.as_i64()?;
        let y = b.as_i64()?;
        let v = match op {
            Add => Value::I64(x.wrapping_add(y)),
            Sub => Value::I64(x.wrapping_sub(y)),
            Mul => Value::I64(x.wrapping_mul(y)),
            Div => {
                if y == 0 {
                    return Err(Trap::DivByZero);
                }
                Value::I64(x.wrapping_div(y))
            }
            Rem => {
                if y == 0 {
                    return Err(Trap::DivByZero);
                }
                Value::I64(x.wrapping_rem(y))
            }
            And => Value::I64(x & y),
            Or => Value::I64(x | y),
            Xor => Value::I64(x ^ y),
            Shl => Value::I64(x.wrapping_shl(y as u32)),
            Shr => Value::I64(x.wrapping_shr(y as u32)),
            Min => Value::I64(x.min(y)),
            Max => Value::I64(x.max(y)),
            Lt => Value::from(x < y),
            Le => Value::from(x <= y),
            Gt => Value::from(x > y),
            Ge => Value::from(x >= y),
            Eq => Value::from(x == y),
            Ne => Value::from(x != y),
        };
        Ok(v)
    }
}

/// Evaluates a unary operation.
///
/// # Errors
/// Traps on control-value operands (except [`UnOp::IsCtrl`]).
#[inline]
pub fn eval_unop(op: UnOp, a: Value) -> Result<Value, Trap> {
    let v = match op {
        UnOp::IsCtrl => Value::from(a.is_ctrl()),
        UnOp::CtrlTag => match a {
            Value::Ctrl(c) => Value::I64(c as i64),
            _ => return Err(Trap::Malformed("ctrl_tag of a data word".into())),
        },
        UnOp::Neg => match a {
            Value::I64(v) => Value::I64(v.wrapping_neg()),
            Value::F64(v) => Value::F64(-v),
            Value::Ctrl(c) => return Err(Trap::CtrlAsData(c)),
        },
        UnOp::Not => Value::from(!a.as_bool()?),
        UnOp::BitNot => Value::I64(!a.as_i64()?),
        UnOp::I2F => Value::F64(a.as_i64()? as f64),
        UnOp::F2I => Value::I64(a.as_f64()? as i64),
    };
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_arithmetic() {
        assert_eq!(
            eval_binop(BinOp::Add, Value::I64(2), Value::I64(3)).unwrap(),
            Value::I64(5)
        );
        assert_eq!(
            eval_binop(BinOp::Min, Value::I64(2), Value::I64(3)).unwrap(),
            Value::I64(2)
        );
        assert_eq!(
            eval_binop(BinOp::Lt, Value::I64(2), Value::I64(3)).unwrap(),
            Value::I64(1)
        );
    }

    #[test]
    fn float_coercion() {
        assert_eq!(
            eval_binop(BinOp::Mul, Value::I64(2), Value::F64(1.5)).unwrap(),
            Value::F64(3.0)
        );
    }

    #[test]
    fn ctrl_values_trap_as_data() {
        assert!(matches!(
            eval_binop(BinOp::Add, Value::Ctrl(1), Value::I64(0)),
            Err(Trap::CtrlAsData(1))
        ));
        assert_eq!(
            eval_unop(UnOp::IsCtrl, Value::Ctrl(7)).unwrap(),
            Value::I64(1)
        );
        assert_eq!(
            eval_unop(UnOp::IsCtrl, Value::I64(7)).unwrap(),
            Value::I64(0)
        );
    }

    #[test]
    fn division_by_zero_traps() {
        assert!(matches!(
            eval_binop(BinOp::Div, Value::I64(1), Value::I64(0)),
            Err(Trap::DivByZero)
        ));
        assert!(matches!(
            eval_binop(BinOp::Rem, Value::F64(1.0), Value::F64(0.0)),
            Err(Trap::DivByZero)
        ));
    }

    #[test]
    fn shifts_and_bitops_are_integer_only() {
        assert!(eval_binop(BinOp::Shl, Value::F64(1.0), Value::I64(1)).is_err());
        assert_eq!(
            eval_binop(BinOp::Shr, Value::I64(8), Value::I64(2)).unwrap(),
            Value::I64(2)
        );
    }
}
