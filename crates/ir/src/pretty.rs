//! Pretty-printing of IR functions and pipelines (for diagnostics,
//! examples, and the experiment harnesses).

use crate::expr::Expr;
use crate::func::Function;
use crate::pipeline::{Pipeline, StageKind};
use crate::stmt::{CtrlHandler, HandlerEnd, Stmt};
use std::fmt::Write as _;

/// Renders an expression as a C-like string.
pub fn expr_to_string(f: &Function, e: &Expr) -> String {
    match e {
        Expr::Const(v) => format!("{v}"),
        Expr::Var(v) => f
            .vars
            .get(v.0 as usize)
            .map(|d| d.name.clone())
            .unwrap_or_else(|| format!("v{}", v.0)),
        Expr::Unary(op, a) => format!("{op}({})", expr_to_string(f, a)),
        Expr::Binary(op, a, b) => {
            format!("({} {op} {})", expr_to_string(f, a), expr_to_string(f, b))
        }
        Expr::Load { array, index, .. } => {
            let name = f
                .arrays
                .get(array.0 as usize)
                .map(|d| d.name.clone())
                .unwrap_or_else(|| format!("arr{}", array.0));
            format!("{name}[{}]", expr_to_string(f, index))
        }
    }
}

fn stmt_lines(f: &Function, s: &Stmt, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match s {
        Stmt::Assign { var, expr } => {
            let name = &f.vars[var.0 as usize].name;
            let _ = writeln!(out, "{pad}{name} = {};", expr_to_string(f, expr));
        }
        Stmt::Store {
            array,
            index,
            value,
        } => {
            let name = &f.arrays[array.0 as usize].name;
            let _ = writeln!(
                out,
                "{pad}{name}[{}] = {};",
                expr_to_string(f, index),
                expr_to_string(f, value)
            );
        }
        Stmt::AtomicRmw {
            op,
            array,
            index,
            value,
            old,
        } => {
            let name = &f.arrays[array.0 as usize].name;
            let prefix = old
                .map(|o| format!("{} = ", f.vars[o.0 as usize].name))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "{pad}{prefix}atomic_{op}(&{name}[{}], {});",
                expr_to_string(f, index),
                expr_to_string(f, value)
            );
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => {
            let _ = writeln!(out, "{pad}if ({}) {{", expr_to_string(f, cond));
            for st in then_body {
                stmt_lines(f, st, indent + 1, out);
            }
            if !else_body.is_empty() {
                let _ = writeln!(out, "{pad}}} else {{");
                for st in else_body {
                    stmt_lines(f, st, indent + 1, out);
                }
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::For {
            var,
            start,
            end,
            body,
            ..
        } => {
            let name = &f.vars[var.0 as usize].name;
            let _ = writeln!(
                out,
                "{pad}for ({name} = {}; {name} < {}; {name}++) {{",
                expr_to_string(f, start),
                expr_to_string(f, end)
            );
            for st in body {
                stmt_lines(f, st, indent + 1, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::While { cond, body, .. } => {
            let _ = writeln!(out, "{pad}while ({}) {{", expr_to_string(f, cond));
            for st in body {
                stmt_lines(f, st, indent + 1, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::Break { levels } => {
            if *levels == 1 {
                let _ = writeln!(out, "{pad}break;");
            } else {
                let _ = writeln!(out, "{pad}break({levels});");
            }
        }
        Stmt::Enq { queue, value } => {
            let _ = writeln!(out, "{pad}enq({}, {});", queue.0, expr_to_string(f, value));
        }
        Stmt::EnqSel {
            queues,
            select,
            value,
        } => {
            let ids: Vec<String> = queues.iter().map(|q| q.0.to_string()).collect();
            let _ = writeln!(
                out,
                "{pad}enq_sel([{}], {}, {});",
                ids.join(","),
                expr_to_string(f, select),
                expr_to_string(f, value)
            );
        }
        Stmt::EnqCtrl { queue, ctrl } => {
            let _ = writeln!(out, "{pad}enq_ctrl({}, CV({ctrl}));", queue.0);
        }
        Stmt::Deq { var, queue } => {
            let name = &f.vars[var.0 as usize].name;
            let _ = writeln!(out, "{pad}{name} = deq({});", queue.0);
        }
    }
}

/// Renders a function as C-like pseudocode.
pub fn function_to_string(f: &Function) -> String {
    let mut out = String::new();
    let params: Vec<&str> = f
        .params
        .iter()
        .map(|p| f.vars[p.0 as usize].name.as_str())
        .collect();
    let _ = writeln!(out, "void {}({}) {{", f.name, params.join(", "));
    for s in &f.body {
        stmt_lines(f, s, 1, &mut out);
    }
    let _ = writeln!(out, "}}");
    out
}

fn handler_to_string(f: &Function, h: &CtrlHandler) -> String {
    let mut out = String::new();
    let tag = h
        .ctrl
        .map(|c| format!("CV({c})"))
        .unwrap_or_else(|| "*".to_string());
    let end = match h.end {
        HandlerEnd::BreakLoops(n) => format!("break({n})"),
        HandlerEnd::FinishStage => "finish".to_string(),
        HandlerEnd::Resume => "resume".to_string(),
        HandlerEnd::FinishWhen(v, t) => {
            format!("finish_when({} >= {t})", f.vars[v.0 as usize].name)
        }
        HandlerEnd::BreakWhen(v, t, n) => {
            format!("break_when({} >= {t}, {n})", f.vars[v.0 as usize].name)
        }
    };
    let _ = writeln!(out, "  on_ctrl(q{}, {tag}) -> {end} {{", h.queue.0);
    for s in &h.body {
        stmt_lines(f, s, 2, &mut out);
    }
    let _ = writeln!(out, "  }}");
    out
}

/// Renders a full pipeline: stages, their placements, handlers, and RAs.
pub fn pipeline_to_string(p: &Pipeline) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "pipeline {} ({} compute stages, {} RAs, {} queues):",
        p.name,
        p.compute_stages(),
        p.ra_stages(),
        p.num_queues
    );
    for (i, s) in p.stages.iter().enumerate() {
        match &s.kind {
            StageKind::Compute => {
                let _ = writeln!(out, "-- stage {i} (core {}):", s.core);
                out.push_str(&function_to_string(&s.program.func));
                for h in &s.program.handlers {
                    out.push_str(&handler_to_string(&s.program.func, h));
                }
            }
            StageKind::Ra(cfg) => {
                let base = s
                    .program
                    .func
                    .arrays
                    .get(cfg.base.0 as usize)
                    .map(|d| d.name.as_str())
                    .unwrap_or("?");
                let _ = writeln!(
                    out,
                    "-- stage {i} (core {}): RA {:?} over {base}, q{} -> q{}{}",
                    s.core,
                    cfg.mode,
                    cfg.in_queue.0,
                    cfg.out_queue.0,
                    cfg.scan_end_ctrl
                        .map(|c| format!(", scan_end=CV({c})"))
                        .unwrap_or_default()
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::expr::{Expr, QueueId};

    #[test]
    fn printing_roundtrips_structure() {
        let mut b = FunctionBuilder::new("demo");
        let n = b.param_i64("n");
        let a = b.array_i32("a");
        let i = b.var_i64("i");
        let x = b.var_i64("x");
        b.for_loop(i, Expr::i64(0), Expr::var(n), |b| {
            let l = b.load(a, Expr::var(i));
            b.assign(x, l);
            b.if_then(Expr::lt(Expr::var(x), Expr::i64(0)), |b| {
                b.enq(QueueId(0), Expr::var(x));
            });
        });
        let f = b.build();
        let s = function_to_string(&f);
        assert!(s.contains("void demo(n)"));
        assert!(s.contains("for (i = 0; i < n; i++)"));
        assert!(s.contains("a[i]"));
        assert!(s.contains("enq(0, x);"));
    }
}
