//! Ergonomic construction of [`Function`]s.
//!
//! The builder allocates fresh [`LoadId`]s and [`BranchId`]s and keeps a
//! stack of statement lists so nested control flow is written with
//! closures:
//!
//! ```
//! use phloem_ir::{Expr, FunctionBuilder};
//!
//! let mut b = FunctionBuilder::new("saxpy_like");
//! let n = b.param_i64("n");
//! let a = b.array_f64("a");
//! let y = b.array_f64("y");
//! let i = b.var_i64("i");
//! let v = b.var_f64("v");
//! b.for_loop(i, Expr::i64(0), Expr::var(n), |b| {
//!     let av = b.load(a, Expr::var(i));
//!     b.assign(v, Expr::mul(av, Expr::f64(2.0)));
//!     b.store(y, Expr::var(i), Expr::var(v));
//! });
//! let f = b.build();
//! assert!(f.validate().is_ok());
//! ```

use crate::expr::{ArrayId, BranchId, Expr, LoadId, QueueId, VarId};
use crate::func::{ArrayDecl, Function, VarDecl};
use crate::stmt::Stmt;
use crate::value::{BinOp, Ty};

/// Builder for [`Function`]s; see the module docs for an example.
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    next_load: u32,
    next_branch: u32,
    stack: Vec<Vec<Stmt>>,
}

impl FunctionBuilder {
    /// Starts building a function with the given name.
    pub fn new(name: impl Into<String>) -> FunctionBuilder {
        FunctionBuilder {
            func: Function::new(name),
            next_load: 0,
            next_branch: 0,
            stack: vec![Vec::new()],
        }
    }

    /// Declares a scalar variable.
    pub fn var(&mut self, name: impl Into<String>, ty: Ty) -> VarId {
        let id = VarId(self.func.vars.len() as u32);
        self.func.vars.push(VarDecl {
            name: name.into(),
            ty,
        });
        id
    }

    /// Declares an `i64` variable.
    pub fn var_i64(&mut self, name: impl Into<String>) -> VarId {
        self.var(name, Ty::I64)
    }

    /// Declares an `f64` variable.
    pub fn var_f64(&mut self, name: impl Into<String>) -> VarId {
        self.var(name, Ty::F64)
    }

    /// Declares an `i64` parameter (bound by the host at launch).
    pub fn param_i64(&mut self, name: impl Into<String>) -> VarId {
        let v = self.var(name, Ty::I64);
        self.func.params.push(v);
        v
    }

    /// Declares an `f64` parameter.
    pub fn param_f64(&mut self, name: impl Into<String>) -> VarId {
        let v = self.var(name, Ty::F64);
        self.func.params.push(v);
        v
    }

    /// Declares an array. Arrays must be declared in the same order the
    /// host allocates them in [`crate::MemState`].
    pub fn array(&mut self, decl: ArrayDecl) -> ArrayId {
        let id = ArrayId(self.func.arrays.len() as u32);
        self.func.arrays.push(decl);
        id
    }

    /// Declares a 4-byte integer array.
    pub fn array_i32(&mut self, name: impl Into<String>) -> ArrayId {
        self.array(ArrayDecl::i32(name))
    }

    /// Declares an 8-byte integer array.
    pub fn array_i64(&mut self, name: impl Into<String>) -> ArrayId {
        self.array(ArrayDecl::i64(name))
    }

    /// Declares an 8-byte float array.
    pub fn array_f64(&mut self, name: impl Into<String>) -> ArrayId {
        self.array(ArrayDecl::f64(name))
    }

    /// The id the next [`FunctionBuilder::load`] call will use (lets
    /// frontends attach pragmas to upcoming load sites).
    pub fn peek_next_load_id(&self) -> LoadId {
        LoadId(self.next_load)
    }

    /// A load expression `array[index]` with a fresh load-site id.
    pub fn load(&mut self, array: ArrayId, index: Expr) -> Expr {
        let id = LoadId(self.next_load);
        self.next_load += 1;
        Expr::Load {
            id,
            array,
            index: Box::new(index),
        }
    }

    fn push(&mut self, s: Stmt) {
        self.stack.last_mut().expect("builder scope").push(s);
    }

    fn fresh_branch(&mut self) -> BranchId {
        let id = BranchId(self.next_branch);
        self.next_branch += 1;
        id
    }

    /// Allocates a fresh branch-site id (for frontends assembling
    /// statements manually with [`FunctionBuilder::stmt`]).
    pub fn new_branch(&mut self) -> BranchId {
        self.fresh_branch()
    }

    /// Opens a statement scope; subsequent emissions accumulate in it
    /// until [`FunctionBuilder::pop_scope`]. The closure-based helpers
    /// (`if_then`, `for_loop`, ...) are usually more convenient; this
    /// low-level pair exists for recursive-descent frontends.
    pub fn push_scope(&mut self) {
        self.stack.push(Vec::new());
    }

    /// Closes the innermost scope and returns its statements.
    ///
    /// # Panics
    /// Panics when no scope is open.
    pub fn pop_scope(&mut self) -> Vec<Stmt> {
        assert!(self.stack.len() > 1, "pop_scope without push_scope");
        self.stack.pop().expect("scope")
    }

    /// Emits `var = expr`.
    pub fn assign(&mut self, var: VarId, expr: Expr) {
        self.push(Stmt::Assign { var, expr });
    }

    /// Emits `array[index] = value`.
    pub fn store(&mut self, array: ArrayId, index: Expr, value: Expr) {
        self.push(Stmt::Store {
            array,
            index,
            value,
        });
    }

    /// Emits an atomic read-modify-write.
    pub fn atomic_rmw(
        &mut self,
        op: BinOp,
        array: ArrayId,
        index: Expr,
        value: Expr,
        old: Option<VarId>,
    ) {
        self.push(Stmt::AtomicRmw {
            op,
            array,
            index,
            value,
            old,
        });
    }

    /// Emits `if (cond) { ... }`.
    pub fn if_then(&mut self, cond: Expr, f: impl FnOnce(&mut Self)) {
        let id = self.fresh_branch();
        self.stack.push(Vec::new());
        f(self);
        let then_body = self.stack.pop().expect("scope");
        self.push(Stmt::If {
            id,
            cond,
            then_body,
            else_body: Vec::new(),
        });
    }

    /// Emits `if (cond) { ... } else { ... }`.
    pub fn if_else(&mut self, cond: Expr, t: impl FnOnce(&mut Self), e: impl FnOnce(&mut Self)) {
        let id = self.fresh_branch();
        self.stack.push(Vec::new());
        t(self);
        let then_body = self.stack.pop().expect("scope");
        self.stack.push(Vec::new());
        e(self);
        let else_body = self.stack.pop().expect("scope");
        self.push(Stmt::If {
            id,
            cond,
            then_body,
            else_body,
        });
    }

    /// Emits `for (var = start; var < end; var++) { ... }`.
    pub fn for_loop(&mut self, var: VarId, start: Expr, end: Expr, f: impl FnOnce(&mut Self)) {
        let id = self.fresh_branch();
        self.stack.push(Vec::new());
        f(self);
        let body = self.stack.pop().expect("scope");
        self.push(Stmt::For {
            id,
            var,
            start,
            end,
            body,
        });
    }

    /// Emits `while (cond) { ... }`.
    pub fn while_loop(&mut self, cond: Expr, f: impl FnOnce(&mut Self)) {
        let id = self.fresh_branch();
        self.stack.push(Vec::new());
        f(self);
        let body = self.stack.pop().expect("scope");
        self.push(Stmt::While { id, cond, body });
    }

    /// Emits `while (true) { ... }` (the shape control values produce).
    pub fn while_true(&mut self, f: impl FnOnce(&mut Self)) {
        self.while_loop(Expr::i64(1), f);
    }

    /// Emits `break` out of `levels` loops.
    pub fn break_out(&mut self, levels: u32) {
        self.push(Stmt::Break { levels });
    }

    /// Emits `enq(q, value)`.
    pub fn enq(&mut self, queue: QueueId, value: Expr) {
        self.push(Stmt::Enq { queue, value });
    }

    /// Emits `enq_ctrl(q, cv)`.
    pub fn enq_ctrl(&mut self, queue: QueueId, ctrl: u32) {
        self.push(Stmt::EnqCtrl { queue, ctrl });
    }

    /// Emits a replica-distributing enqueue (`#pragma distribute`):
    /// `enq(queues[select % queues.len()], value)`.
    pub fn enq_sel(&mut self, queues: Vec<QueueId>, select: Expr, value: Expr) {
        self.push(Stmt::EnqSel {
            queues,
            select,
            value,
        });
    }

    /// Emits `var = deq(q)`.
    pub fn deq(&mut self, var: VarId, queue: QueueId) {
        self.push(Stmt::Deq { var, queue });
    }

    /// Appends a pre-built statement (used by compiler passes).
    pub fn stmt(&mut self, s: Stmt) {
        self.push(s);
    }

    /// Finishes the function.
    ///
    /// # Panics
    /// Panics if control-flow scopes are unbalanced (a builder bug).
    pub fn build(mut self) -> Function {
        assert_eq!(self.stack.len(), 1, "unbalanced builder scopes");
        self.func.body = self.stack.pop().unwrap();
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_functions() {
        let mut b = FunctionBuilder::new("t");
        let n = b.param_i64("n");
        let a = b.array_i32("a");
        let i = b.var_i64("i");
        let x = b.var_i64("x");
        b.for_loop(i, Expr::i64(0), Expr::var(n), |b| {
            let l = b.load(a, Expr::var(i));
            b.assign(x, l);
            b.if_then(Expr::lt(Expr::var(x), Expr::i64(0)), |b| b.break_out(1));
        });
        let f = b.build();
        assert!(f.validate().is_ok());
        assert_eq!(f.params, vec![n]);
        assert_eq!(f.next_load_id().0, 1);
        assert_eq!(f.next_branch_id().0, 2);
    }

    #[test]
    fn load_ids_are_unique() {
        let mut b = FunctionBuilder::new("t");
        let a = b.array_i64("a");
        let e1 = b.load(a, Expr::i64(0));
        let e2 = b.load(a, Expr::i64(1));
        let (Expr::Load { id: i1, .. }, Expr::Load { id: i2, .. }) = (e1, e2) else {
            panic!("loads expected");
        };
        assert_ne!(i1, i2);
    }
}
