//! Differential tests: the flat bytecode engine ([`FlatInterp`]) must be
//! indistinguishable from the tree-walking oracle ([`StepInterp`]) at
//! the [`World`] boundary.
//!
//! A [`RecordingWorld`] logs every call (operation kind, thread,
//! arguments, dependence time, and result) and advances a private clock
//! on each one so returned times are non-trivial — any divergence in
//! call order, micro-op class, or time plumbing shows up as a log
//! mismatch. Both engines run the same program in lockstep; every
//! [`StepResult`] (including `Blocked` reasons), the full call log, the
//! final memory, and all variable values must agree exactly.

use std::collections::VecDeque;

use phloem_ir::bytecode::compile;
use phloem_ir::{
    ArrayDecl, ArrayId, BinOp, BlockReason, BranchId, CtrlHandler, Expr, FlatInterp, Function,
    FunctionBuilder, HandlerEnd, MemState, QueueId, StageSpec, StepInterp, StepResult, Stmt, Tid,
    Time, Trap, UopClass, Value, VarId, World,
};
use proptest::prelude::*;

/// One logged [`World`] call: kind, inputs, and result.
#[derive(Clone, Debug, PartialEq)]
enum Call {
    Uop(Tid, UopClass, Time, Time),
    Branch(Tid, BranchId, bool, Time, Time),
    Load(Tid, ArrayId, i64, Time, Value, Time),
    Store(Tid, ArrayId, i64, Value, Time, Time),
    Rmw(Tid, BinOp, ArrayId, i64, Value, Time, Value, Time),
    Enq(Tid, QueueId, Value, Time, Option<Time>),
    Deq(Tid, QueueId, Time, Option<(Value, Time)>),
}

/// A functional world with bounded queues that records every call and
/// returns a strictly increasing clock as each op's completion time.
struct RecordingWorld {
    mem: MemState,
    queues: Vec<VecDeque<Value>>,
    capacity: usize,
    clock: Time,
    log: Vec<Call>,
}

impl RecordingWorld {
    fn new(mem: MemState, nqueues: usize, capacity: usize) -> Self {
        RecordingWorld {
            mem,
            queues: (0..nqueues).map(|_| VecDeque::new()).collect(),
            capacity,
            clock: 0,
            log: Vec::new(),
        }
    }

    fn tick(&mut self) -> Time {
        self.clock += 1;
        self.clock
    }
}

impl World for RecordingWorld {
    fn uop(&mut self, t: Tid, class: UopClass, dep: Time) -> Time {
        let done = self.tick().max(dep + 1);
        self.log.push(Call::Uop(t, class, dep, done));
        done
    }

    fn branch(&mut self, t: Tid, site: BranchId, taken: bool, cond_ready: Time) -> Time {
        let done = self.tick().max(cond_ready + 1);
        self.log
            .push(Call::Branch(t, site, taken, cond_ready, done));
        done
    }

    fn load(
        &mut self,
        t: Tid,
        array: ArrayId,
        index: i64,
        dep: Time,
    ) -> Result<(Value, Time), Trap> {
        let v = self.mem.load(array, index)?;
        let done = self.tick().max(dep + 2);
        self.log.push(Call::Load(t, array, index, dep, v, done));
        Ok((v, done))
    }

    fn store(
        &mut self,
        t: Tid,
        array: ArrayId,
        index: i64,
        value: Value,
        dep: Time,
    ) -> Result<Time, Trap> {
        self.mem.store(array, index, value)?;
        let done = self.tick().max(dep + 2);
        self.log
            .push(Call::Store(t, array, index, value, dep, done));
        Ok(done)
    }

    fn atomic_rmw(
        &mut self,
        t: Tid,
        op: BinOp,
        array: ArrayId,
        index: i64,
        value: Value,
        dep: Time,
    ) -> Result<(Value, Time), Trap> {
        let old = self.mem.load(array, index)?;
        let new = phloem_ir::eval_binop(op, old, value)?;
        self.mem.store(array, index, new)?;
        let done = self.tick().max(dep + 3);
        self.log
            .push(Call::Rmw(t, op, array, index, value, dep, old, done));
        Ok((old, done))
    }

    fn try_enq(&mut self, t: Tid, q: QueueId, w: Value, dep: Time) -> Result<Option<Time>, Trap> {
        let cap = self.capacity;
        let queue = self
            .queues
            .get_mut(q.0 as usize)
            .ok_or_else(|| Trap::BadId(format!("queue {}", q.0)))?;
        let res = if queue.len() >= cap {
            None
        } else {
            queue.push_back(w);
            self.clock += 1;
            Some(self.clock.max(dep + 1))
        };
        self.log.push(Call::Enq(t, q, w, dep, res));
        Ok(res)
    }

    fn try_deq(&mut self, t: Tid, q: QueueId, dep: Time) -> Result<Option<(Value, Time)>, Trap> {
        let queue = self
            .queues
            .get_mut(q.0 as usize)
            .ok_or_else(|| Trap::BadId(format!("queue {}", q.0)))?;
        let res = match queue.pop_front() {
            Some(w) => {
                self.clock += 1;
                Some((w, self.clock.max(dep + 1)))
            }
            None => None,
        };
        self.log.push(Call::Deq(t, q, dep, res));
        Ok(res)
    }

    fn mem(&self) -> &MemState {
        &self.mem
    }

    fn mem_mut(&mut self) -> &mut MemState {
        &mut self.mem
    }
}

const BUDGET: u64 = 200_000;

/// What the external driver does when a single-stage program blocks.
#[derive(Clone, Copy)]
enum Unblock {
    /// Feed `Value::I64(counter)` on empty, drain on full.
    Data,
    /// Like `Data`, but every 3rd fed value is `Value::Ctrl(7)`.
    CtrlEvery3,
}

/// Runs one program under both engines in lockstep and asserts full
/// observational equality: per-step results, world call logs, final
/// memory, and every variable.
fn assert_engines_agree(
    f: &Function,
    handlers: &[CtrlHandler],
    mem: MemState,
    nqueues: usize,
    capacity: usize,
    unblock: Unblock,
) {
    f.validate().expect("test kernel must validate");
    let prog = compile(f, handlers).expect("compile");
    let mut wt = RecordingWorld::new(mem.clone(), nqueues, capacity);
    let mut wf = RecordingWorld::new(mem, nqueues, capacity);
    let spec = StageSpec { func: f, handlers };
    let mut tree = StepInterp::new(spec, Tid(0), &[]).with_budget(BUDGET);
    let mut flat = FlatInterp::new(&prog, Tid(0), &[]).with_budget(BUDGET);
    let mut fed = 0i64;
    let mut step = 0u64;
    loop {
        step += 1;
        let rt = tree.step(&mut wt);
        let rf = flat.step(&mut wf);
        assert_eq!(rt, rf, "engines diverged at step {step}");
        match rt {
            Err(_) => break,
            Ok(StepResult::Finished) => break,
            Ok(StepResult::Blocked(BlockReason::QueueFull(q))) => {
                // Drain one element from both worlds identically.
                for w in [&mut wt, &mut wf] {
                    w.queues[q.0 as usize].pop_front().expect("full queue");
                }
            }
            Ok(StepResult::Blocked(BlockReason::QueueEmpty(q))) => {
                fed += 1;
                let v = match unblock {
                    Unblock::CtrlEvery3 if fed % 3 == 0 => Value::Ctrl(7),
                    _ => Value::I64(fed),
                };
                for w in [&mut wt, &mut wf] {
                    w.queues[q.0 as usize].push_back(v);
                }
            }
            Ok(_) => {}
        }
        assert!(step < 4 * BUDGET, "lockstep driver did not terminate");
    }
    assert_eq!(wt.log, wf.log, "world call logs diverged");
    assert!(wt.mem.same_contents(&wf.mem), "final memory diverged");
    for v in 0..f.vars.len() as u32 {
        assert_eq!(
            tree.var(VarId(v)),
            flat.var(VarId(v)),
            "variable {v} diverged"
        );
    }
    assert_eq!(tree.steps(), flat.steps(), "step counts diverged");
    assert_eq!(tree.flow_time(), flat.flow_time(), "flow times diverged");
}

/// Runs a two-stage producer/consumer pipeline under both engines,
/// round-robin, and asserts observational equality.
fn assert_engines_agree_pipeline(
    stages: &[(&Function, &[CtrlHandler])],
    mem: MemState,
    nqueues: usize,
    capacity: usize,
) {
    let progs: Vec<_> = stages
        .iter()
        .map(|(f, h)| compile(f, h).expect("compile"))
        .collect();
    let mut wt = RecordingWorld::new(mem.clone(), nqueues, capacity);
    let mut wf = RecordingWorld::new(mem, nqueues, capacity);
    let mut tree: Vec<_> = stages
        .iter()
        .enumerate()
        .map(|(i, (f, h))| {
            StepInterp::new(
                StageSpec {
                    func: f,
                    handlers: h,
                },
                Tid(i as u32),
                &[],
            )
            .with_budget(BUDGET)
        })
        .collect();
    let mut flat: Vec<_> = progs
        .iter()
        .enumerate()
        .map(|(i, p)| FlatInterp::new(p, Tid(i as u32), &[]).with_budget(BUDGET))
        .collect();
    let mut rounds = 0u64;
    loop {
        rounds += 1;
        let mut all_done = true;
        for i in 0..stages.len() {
            if tree[i].is_finished() {
                assert!(flat[i].is_finished(), "finish state diverged on stage {i}");
                continue;
            }
            let rt = tree[i].step(&mut wt);
            let rf = flat[i].step(&mut wf);
            assert_eq!(rt, rf, "stage {i} diverged in round {rounds}");
            if !matches!(rt, Ok(StepResult::Finished)) {
                all_done = false;
            }
        }
        if all_done {
            break;
        }
        assert!(rounds < 4 * BUDGET, "pipeline did not terminate");
    }
    assert_eq!(wt.log, wf.log, "world call logs diverged");
    assert!(wt.mem.same_contents(&wf.mem), "final memory diverged");
}

// ---------------------------------------------------------------------
// Handcrafted scenarios: queues, control values, handlers, blocking.
// ---------------------------------------------------------------------

/// Producer enqueues 0..n then a control value; consumer accumulates
/// into memory until its handler breaks the loop. Tiny queue capacity
/// forces QueueFull and QueueEmpty blocks on both sides.
#[test]
fn producer_consumer_with_ctrl_handler() {
    let q = QueueId(0);
    let mut mem = MemState::new();
    mem.alloc_i64(ArrayDecl::i64("out"), [0]);

    let mut pb = FunctionBuilder::new("producer");
    let i = pb.var_i64("i");
    pb.for_loop(i, Expr::i64(0), Expr::i64(13), |b| {
        b.enq(q, Expr::var(i));
    });
    pb.enq_ctrl(q, 7);
    let producer = pb.build();

    let mut cb = FunctionBuilder::new("consumer");
    let out = cb.array_i64("out");
    let x = cb.var_i64("x");
    cb.while_loop(Expr::i64(1), |b| {
        b.deq(x, q);
        b.atomic_rmw(BinOp::Add, out, Expr::i64(0), Expr::var(x), None);
    });
    let consumer = cb.build();
    let handlers = vec![CtrlHandler {
        queue: q,
        ctrl: Some(7),
        bind: None,
        body: vec![],
        end: HandlerEnd::BreakLoops(1),
    }];

    assert_engines_agree_pipeline(&[(&producer, &[]), (&consumer, &handlers)], mem, 1, 2);
}

/// A handler with a non-empty body, a bound control value, and
/// FinishWhen termination; the dequeue sits inside nested loops so the
/// handler's break targets cross loop levels.
#[test]
fn handler_body_bind_and_finish_when() {
    let q = QueueId(0);
    let mut b = FunctionBuilder::new("consumer");
    let x = b.var_i64("x");
    let seen = b.var_i64("seen");
    let cv = b.var_i64("cv");
    let i = b.var_i64("i");
    b.for_loop(i, Expr::i64(0), Expr::i64(1000), |b| {
        b.while_loop(Expr::i64(1), |b| {
            b.deq(x, q);
            b.assign(seen, Expr::add(Expr::var(seen), Expr::var(x)));
        });
    });
    let f = b.build();
    let handlers = vec![
        CtrlHandler {
            queue: q,
            ctrl: Some(7),
            bind: Some(cv),
            body: vec![],
            end: HandlerEnd::FinishWhen(seen, 40),
        },
        CtrlHandler {
            queue: q,
            ctrl: None,
            bind: None,
            body: vec![],
            end: HandlerEnd::BreakLoops(2),
        },
    ];
    assert_engines_agree(&f, &handlers, MemState::new(), 1, 4, Unblock::CtrlEvery3);
}

/// A wildcard handler whose end is BreakWhen, exercised alongside an
/// exact-tag handler that resumes (exact match must win).
#[test]
fn handler_precedence_and_break_when() {
    let q = QueueId(0);
    let mut b = FunctionBuilder::new("consumer");
    let x = b.var_i64("x");
    let seen = b.var_i64("seen");
    b.while_loop(Expr::i64(1), |b| {
        b.deq(x, q);
        b.assign(seen, Expr::add(Expr::var(seen), Expr::i64(1)));
    });
    let f = b.build();
    let handlers = vec![
        CtrlHandler {
            queue: q,
            ctrl: Some(9),
            bind: None,
            body: vec![],
            end: HandlerEnd::Resume,
        },
        CtrlHandler {
            queue: q,
            ctrl: None,
            bind: None,
            body: vec![Stmt::Assign {
                var: seen,
                expr: Expr::add(Expr::var(seen), Expr::i64(100)),
            }],
            end: HandlerEnd::BreakWhen(seen, 101, 1),
        },
    ];
    assert_engines_agree(&f, &handlers, MemState::new(), 1, 4, Unblock::CtrlEvery3);
}

/// EnqSel distributes across replicas; a full target queue blocks and
/// the retry must not re-issue the select micro-op.
#[test]
fn enq_sel_blocks_without_reissuing_select() {
    let qs = [QueueId(0), QueueId(1)];
    let mut b = FunctionBuilder::new("distributor");
    let i = b.var_i64("i");
    b.for_loop(i, Expr::i64(0), Expr::i64(9), |b| {
        b.enq_sel(
            qs.to_vec(),
            Expr::var(i),
            Expr::mul(Expr::var(i), Expr::i64(3)),
        );
    });
    let f = b.build();
    assert_engines_agree(&f, &[], MemState::new(), 2, 2, Unblock::Data);
}

/// Loads, stores, atomics, nested loops, and both if arms, all with
/// non-trivial dependence times.
#[test]
fn memory_and_control_kernel() {
    let mut mem = MemState::new();
    mem.alloc_i64(ArrayDecl::i64("a"), (0..16).map(|v| v * 3 % 7));
    mem.alloc_i64(ArrayDecl::i64("out"), vec![0; 16]);

    let mut b = FunctionBuilder::new("kernel");
    let a = b.array_i64("a");
    let out = b.array_i64("out");
    let i = b.var_i64("i");
    let j = b.var_i64("j");
    let x = b.var_i64("x");
    let old = b.var_i64("old");
    b.for_loop(i, Expr::i64(0), Expr::i64(16), |b| {
        let l = b.load(a, Expr::var(i));
        b.assign(x, l);
        b.if_else(
            Expr::lt(Expr::var(x), Expr::i64(3)),
            |b| {
                b.for_loop(j, Expr::i64(0), Expr::var(x), |b| {
                    b.atomic_rmw(BinOp::Add, out, Expr::var(j), Expr::i64(1), Some(old));
                });
            },
            |b| {
                b.store(out, Expr::var(i), Expr::mul(Expr::var(x), Expr::var(x)));
            },
        );
    });
    let f = b.build();
    assert_engines_agree(&f, &[], mem, 0, 0, Unblock::Data);
}

// ---------------------------------------------------------------------
// Randomized kernels.
// ---------------------------------------------------------------------

const ARR_LEN: i64 = 8;

/// Builds a random structured kernel from a flat opcode list. Loops and
/// ifs nest one level via a fixed inner pattern parameterized by the
/// operand byte, which is enough to exercise every instruction form.
fn build_random_kernel(ops: &[(u8, u8)]) -> (Function, MemState) {
    let mut mem = MemState::new();
    mem.alloc_i64(ArrayDecl::i64("a"), (0..ARR_LEN).map(|v| (v * 5 + 2) % 9));
    mem.alloc_i64(ArrayDecl::i64("out"), vec![0; ARR_LEN as usize]);
    let q = QueueId(0);

    let mut b = FunctionBuilder::new("rand_kernel");
    let a = b.array_i64("a");
    let out = b.array_i64("out");
    let x = b.var_i64("x");
    let y = b.var_i64("y");
    let i = b.var_i64("i");
    let old = b.var_i64("old");
    let idx = |e: Expr| Expr::bin(BinOp::Rem, e, Expr::i64(ARR_LEN));
    for &(op, arg) in ops {
        let k = i64::from(arg);
        match op % 10 {
            0 => b.assign(x, Expr::add(Expr::var(x), Expr::i64(k % 5))),
            1 => b.assign(
                y,
                Expr::add(Expr::mul(Expr::var(x), Expr::i64(3)), Expr::var(y)),
            ),
            2 => {
                let l = b.load(a, idx(Expr::var(x)));
                b.assign(x, l);
            }
            3 => b.store(out, idx(Expr::var(y)), Expr::var(x)),
            4 => b.atomic_rmw(BinOp::Max, out, idx(Expr::var(x)), Expr::var(y), Some(old)),
            5 => b.for_loop(i, Expr::i64(0), Expr::i64(k % 4 + 1), |b| {
                b.assign(x, Expr::add(Expr::var(x), Expr::var(i)));
                if k % 2 == 0 {
                    b.store(out, idx(Expr::var(i)), Expr::var(x));
                }
            }),
            6 => b.if_else(
                Expr::lt(Expr::var(x), Expr::i64(k % 20)),
                |b| b.assign(y, Expr::add(Expr::var(y), Expr::i64(1))),
                |b| b.assign(x, Expr::bin(BinOp::Rem, Expr::var(x), Expr::i64(17))),
            ),
            7 => {
                // Bounded while: strictly decreasing loop variable.
                b.assign(i, Expr::i64(k % 6));
                b.while_loop(Expr::bin(BinOp::Gt, Expr::var(i), Expr::i64(0)), |b| {
                    b.assign(i, Expr::bin(BinOp::Sub, Expr::var(i), Expr::i64(1)));
                    b.assign(y, Expr::add(Expr::var(y), Expr::var(i)));
                });
            }
            8 => b.enq(q, Expr::var(x)),
            _ => b.deq(y, q),
        }
    }
    (b.build(), mem)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Randomized kernels: both engines must agree on every step result,
    /// every world call (class, args, dependence and completion times),
    /// final memory, and all variables.
    #[test]
    fn engines_agree_on_random_kernels(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..24),
        cap in 1usize..4,
    ) {
        let (f, mem) = build_random_kernel(&ops);
        assert_engines_agree(&f, &[], mem, 1, cap, Unblock::Data);
    }

    /// Randomized kernels again, but fed control values (with a wildcard
    /// handler) so dispatch paths run under random surrounding code.
    #[test]
    fn engines_agree_on_random_kernels_with_ctrl(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..16),
    ) {
        let (f, mem) = build_random_kernel(&ops);
        let seen = VarId(1); // `y` in build_random_kernel
        let handlers = vec![CtrlHandler {
            queue: QueueId(0),
            ctrl: None,
            bind: None,
            body: vec![],
            end: HandlerEnd::FinishWhen(seen, i64::MAX),
        }];
        assert_engines_agree(&f, &handlers, mem, 1, 2, Unblock::CtrlEvery3);
    }
}
