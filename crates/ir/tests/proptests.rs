//! Property tests for IR fundamentals: queue FIFO semantics and
//! arithmetic evaluation invariants.

use proptest::prelude::*;

use phloem_ir::{eval_binop, BinOp, FunctionalWorld, MemState, QueueId, Tid, Value, World};

proptest! {
    /// Queues deliver exactly the enqueued values, in order, and respect
    /// capacity under arbitrary enq/deq interleavings.
    #[test]
    fn queues_are_fifo_under_random_interleavings(
        ops in proptest::collection::vec(any::<bool>(), 1..200),
        cap in 1usize..8,
    ) {
        let mut w = FunctionalWorld::new(MemState::new(), 1, cap, 2);
        let q = QueueId(0);
        let mut sent = 0i64;
        let mut received = 0i64;
        let mut in_flight = 0usize;
        for enq in ops {
            if enq {
                match w.try_enq(Tid(0), q, Value::I64(sent), 0).unwrap() {
                    Some(_) => {
                        sent += 1;
                        in_flight += 1;
                        prop_assert!(in_flight <= cap);
                    }
                    None => prop_assert_eq!(in_flight, cap),
                }
            } else {
                match w.try_deq(Tid(1), q, 0).unwrap() {
                    Some((v, _)) => {
                        prop_assert_eq!(v, Value::I64(received));
                        received += 1;
                        in_flight -= 1;
                    }
                    None => prop_assert_eq!(in_flight, 0),
                }
            }
        }
        prop_assert_eq!(sent - received, in_flight as i64);
    }

    /// Min/Max are commutative and idempotent; comparisons return 0/1.
    #[test]
    fn binop_algebra(a in any::<i32>(), b in any::<i32>()) {
        let (x, y) = (Value::I64(a as i64), Value::I64(b as i64));
        prop_assert_eq!(
            eval_binop(BinOp::Min, x, y).unwrap(),
            eval_binop(BinOp::Min, y, x).unwrap()
        );
        prop_assert_eq!(eval_binop(BinOp::Max, x, x).unwrap(), x);
        let lt = eval_binop(BinOp::Lt, x, y).unwrap().as_i64().unwrap();
        let ge = eval_binop(BinOp::Ge, x, y).unwrap().as_i64().unwrap();
        prop_assert_eq!(lt + ge, 1);
    }

    /// Control values survive queues untouched and are never confused
    /// with data.
    #[test]
    fn control_values_round_trip(tag in any::<u32>()) {
        let mut w = FunctionalWorld::new(MemState::new(), 1, 4, 1);
        w.try_enq(Tid(0), QueueId(0), Value::Ctrl(tag), 0).unwrap();
        let (v, _) = w.try_deq(Tid(0), QueueId(0), 0).unwrap().unwrap();
        prop_assert!(v.is_ctrl());
        prop_assert!(v.as_i64().is_err());
        prop_assert_eq!(v, Value::Ctrl(tag));
    }
}
