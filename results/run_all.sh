#!/bin/bash
cd /root/repo
export SCALE=small
cargo build -q --release -p phloem-bench
echo "=== validating benchsuite/PGO pipelines ==="
cargo run -q --release -p phloem-bench --bin fuzzdiff -- --validate-benchsuite
for f in tables fig6 fig12 fig13 fig9 fig14; do
  echo "=== running $f ($(date +%H:%M:%S)) ==="
  cargo run -q --release -p phloem-bench --bin $f > results/$f.txt 2> results/$f.log
  echo "=== $f done (exit $?) ==="
done
# Breakdown figures rerun the full matrix; tiny scale keeps the total
# runtime sane and the shapes are scale-insensitive.
for f in fig10 fig11; do
  echo "=== running $f at tiny scale ($(date +%H:%M:%S)) ==="
  SCALE=tiny cargo run -q --release -p phloem-bench --bin $f > results/$f.txt 2> results/$f.log
  echo "=== $f done (exit $?) ==="
done
echo ALL_HARNESSES_DONE
