#!/bin/bash
# Runs every figure/table harness. Resilient by design: a harness that
# traps or crashes is recorded in the final `FAILED:` summary instead of
# aborting the sweep, and the ALL_HARNESSES_DONE sentinel always prints
# when the loop itself completes.
set -o pipefail
cd /root/repo
export SCALE=small
# One host-parallelism knob for the whole sweep: every harness fans its
# per-candidate simulations over the phloem-pool work-stealing fleet.
# JOBS=<n> overrides; results are bit-identical at any worker count.
JOBS="${JOBS:-$(nproc)}"
export PHLOEM_WORKERS="$JOBS"
echo "=== host jobs: $JOBS ==="
FAILED=()

run_harness() {
  local name=$1; shift
  echo "=== running $name ($(date +%H:%M:%S)) ==="
  if "$@" > "results/$name.txt" 2> "results/$name.log"; then
    echo "=== $name done (exit 0) ==="
  else
    local rc=$?
    FAILED+=("$name")
    echo "=== $name FAILED (exit $rc); see results/$name.log ==="
    tail -n 3 "results/$name.log" | sed 's/^/    /'
  fi
}

cargo build -q --release -p phloem-bench || { echo "build failed"; exit 1; }

echo "=== validating benchsuite/PGO pipelines ==="
if ! cargo run -q --release -p phloem-bench --bin fuzzdiff -- --validate-benchsuite --jobs "$JOBS"; then
  FAILED+=(validate-benchsuite)
fi
echo "=== fault-injection smoke ==="
if ! cargo run -q --release -p phloem-bench --bin fuzzdiff -- --faults --smoke --jobs "$JOBS"; then
  FAILED+=(fuzzdiff-faults)
fi

for f in tables fig6 fig12 fig13 fig9 fig14; do
  run_harness "$f" cargo run -q --release -p phloem-bench --bin "$f" -- --jobs "$JOBS"
done
# Breakdown figures rerun the full matrix; tiny scale keeps the total
# runtime sane and the shapes are scale-insensitive.
for f in fig10 fig11; do
  run_harness "$f" env SCALE=tiny cargo run -q --release -p phloem-bench --bin "$f" -- --jobs "$JOBS"
done

if [ ${#FAILED[@]} -gt 0 ]; then
  echo "FAILED: ${FAILED[*]}"
else
  echo "FAILED: none"
fi
echo ALL_HARNESSES_DONE
[ ${#FAILED[@]} -eq 0 ]
